(** ASVM — the Advanced Shared Virtual Memory system (the paper's
    contribution).

    Design rules implemented (paper section 3.1):
    - {b Distributed manager}: every page has its own manager — the page
      {e owner}, the node that most recently had write access. Ownership
      migrates on write grants, reader hand-offs and internode pageout.
    - {b Limited memory}: a node holds owner state only for pages in its
      VM cache; ownership {e hints} live in bounded caches.
    - {b Asynchronous state transitions}: nothing ever blocks a thread;
      every operation is a message-driven state machine.
    - {b Specialized protocol on STS}: fixed 32-byte headers, page
      contents only in reply to a request (receive buffers prereserved).

    Request forwarding (section 3.4) stacks three mechanisms, each
    backing up the previous: {e dynamic} hint chains, the {e static}
    (hash-distributed) ownership manager with [fresh]/[paged] hints, and
    {e global} forwarding around the sharer ring. Dynamic and static can
    be disabled per object, degenerating into Li's fixed- or
    dynamic-distributed manager schemes.

    Internode paging (section 3.6) implements the four-step eviction
    algorithm; delayed copy (section 3.7) implements distributed
    push/pull with per-object/per-page version counters, push-scan
    requests for shared copy objects, and the push/pull retry race
    resolution. *)

module Vm = Asvm_machvm.Vm
module Prot = Asvm_machvm.Prot

type forwarding = { dynamic : bool; static : bool }

val all_forwarding : forwarding

type config = {
  sts : Asvm_sts.Sts.config;
  dynamic_cache_pages : int;  (** per-node dynamic hint cache capacity *)
  static_cache_pages : int;  (** per-node static manager table capacity *)
  forwarding : forwarding;  (** default; can be overridden per object *)
  internode_paging : bool;
      (** enable eviction step 3 (page transfer to a node with free
          memory); disabling it degrades eviction to the pager path,
          for the ablation benchmark *)
}

val default_config : config

type t

(** [metrics] receives the protocol's counter families —
    [asvm.msgs] (labels [class]/[group]/[contents]),
    [asvm.msgs.ownership_transfer], [asvm.forwarding] (label
    [mechanism]), [asvm.ownership_transfers] — and the [asvm.fault_ms]
    latency histogram; a private registry is created when omitted.
    [trace] receives one structured {!Asvm_obs.Trace.Msg} event per
    protocol message and an {!Asvm_obs.Trace.Ownership} event per
    ownership transition.  See [docs/OBSERVABILITY.md]. *)
val create :
  net:Asvm_mesh.Network.t ->
  config:config ->
  vms:Vm.t array ->
  words_per_page:int ->
  ?metrics:Asvm_obs.Metrics.Registry.t ->
  ?trace:Asvm_obs.Trace.t ->
  unit ->
  t

(** {1 Object registration} *)

(** Register a distributed memory object. Representations must already
    exist on every sharer's VM (same id, same size). [pagers] are the
    object's pager tasks — one for ordinary objects; several for striped
    files, served round-robin by page number (the paper's section 6
    proposal). [shadow] marks a copy object: [(source id, peer node)] —
    the node the copy was created on, where pulls walk the local shadow
    chain (figure 9). Installs the EMMI manager proxies. *)
val register_object :
  t ->
  obj:Asvm_machvm.Ids.obj_id ->
  size_pages:int ->
  sharers:int list ->
  pagers:Asvm_pager.Store_pager.t list ->
  ?forwarding:forwarding ->
  ?shadow:Asvm_machvm.Ids.obj_id * int ->
  unit ->
  unit

(** {1 Delayed copy orchestration} *)

(** Announce that a copy of [src] was made on [peer].
    [shared = Some copy_id] for a copy object that is itself distributed
    (pushed pages go through push-scan to the copy's peer);
    [shared = None] for a node-local copy (the peer's kernel copy chain
    receives pushes via [Lock_push_first]).

    Broadcasts the version bump to all sharers, which mark their
    resident pages of [src] read-only — the next write anywhere triggers
    the distributed push (paper 3.7). *)
val object_copied :
  t ->
  src:Asvm_machvm.Ids.obj_id ->
  peer:int ->
  shared:Asvm_machvm.Ids.obj_id option ->
  (unit -> unit) ->
  unit

(** Register [node] as owner of every page of [obj] currently resident
    in its VM cache. Used when a node-local object is promoted to a
    distributed one (remote fork of inherited memory): before promotion
    only the home node holds data, so claiming its residents preserves
    the owner-residency invariant. *)
val claim_residents : t -> node:int -> obj:Asvm_machvm.Ids.obj_id -> unit

(** Announce that the existing copy object [copy] (peer [peer]) of [src]
    has become shared across nodes: all sharers of [src] add it to their
    shared-copy lists so pushes go through push-scan rather than the
    peer's kernel copy chain (which the caller must unsplice). Does not
    bump the version — no new copy was made. *)
val copy_promoted :
  t ->
  src:Asvm_machvm.Ids.obj_id ->
  copy:Asvm_machvm.Ids.obj_id ->
  peer:int ->
  (unit -> unit) ->
  unit

(** {1 Range locking (paper section 6)} *)

(** Pin a page this node owns: remote access requests queue at the
    owner until {!release_page}. Returns [false] if the node is not
    currently the page's (idle) owner — acquire write access first.
    This is the primitive the paper proposes for guaranteeing atomicity
    of read/write operations in a striped filesystem. *)
val hold_page : t -> node:int -> obj:Asvm_machvm.Ids.obj_id -> page:int -> bool

(** Release a held page and serve the requests that queued meanwhile. *)
val release_page :
  t -> node:int -> obj:Asvm_machvm.Ids.obj_id -> page:int -> unit

(** {1 Crash and rejoin (see [docs/AVAILABILITY.md])} *)

(** Recover the shared protocol state from a whole-node crash.  The
    caller must already have marked the node down in the mesh registry
    ({!Asvm_mesh.Network.set_down}) and reset its kernel
    ({!Asvm_machvm.Vm.crash_reset}) — the cluster layer does both.

    In order: tears down the victim's transport state (credit pool,
    retransmission timers), replaces its protocol instances with empty
    ones whose static-manager table is conservatively marked ever-owned,
    purges the victim from survivors' reader lists and pager grant
    tables, re-elects an owner for every victim-owned page from its
    surviving readers (falling back to the pager image, or fresh), and
    re-drives requests that were parked at — or actively served by —
    the victim from their surviving origins.  Messages in flight around
    the crash arrive later at the transport dead-letter hook and are
    salvaged case by case.  Progress counters: [crash.reelections],
    [crash.redrives], [crash.salvaged], [crash.rescued_pages],
    [crash.stale_requests], [crash.stale_replies], and the documented
    loss cases [crash.lost_grants] / [crash.lost_pages]. *)
val crash_node : t -> node:int -> unit

(** Re-admit a node after {!crash_node}, once the mesh registry marks it
    up again.  The node returns with empty caches and no owned pages;
    kernel faults that survived the crash re-fault from scratch, each
    sampled into the [asvm.recovery_ms] histogram when it completes. *)
val rejoin_node : t -> node:int -> unit

(** {1 Introspection} *)

val sts_messages : t -> int
val sts_page_messages : t -> int

(** Messages retransmitted by the reliable-STS layer (0 unless
    [config.sts.reliability] is enabled). *)
val sts_retransmits : t -> int

(** Outstanding STS page receive buffers reserved at [node].  Zero on a
    quiescent system — every reservation is released when its reply is
    consumed — which the chaos invariant checker asserts. *)
val buffers_reserved : t -> node:int -> int

val counters : t -> Asvm_simcore.Stats.Counters.t

(** Owner-state entries currently held at [node] for [obj] — the
    "memory tied to resident pages" claim (section 3.1). *)
val owner_entries : t -> node:int -> obj:Asvm_machvm.Ids.obj_id -> int

(** Estimated non-pageable bytes this node devotes to [obj]: owner
    entries (tied to resident pages) plus the bounded hint caches.
    Contrast with {!Asvm_xmm.Xmm.state_bytes}, which grows with
    [pages x nodes] regardless of use — the paper's "limited memory
    requirements" design rule made measurable. *)
val state_bytes : t -> node:int -> obj:Asvm_machvm.Ids.obj_id -> int

(** Is [node] the current owner of (obj, page)? For invariant checks. *)
val is_owner : t -> node:int -> obj:Asvm_machvm.Ids.obj_id -> page:int -> bool

(** Nodes with read access registered at the owner, if an owner exists. *)
val readers : t -> obj:Asvm_machvm.Ids.obj_id -> page:int -> int list option

(** Audit the protocol's global invariants on a quiescent system (run
    the engine dry first). Returns human-readable violations; the empty
    list means:
    - at most one owner per page, and no owner-side operation stuck
      mid-flight;
    - every owner holds the page in its VM cache (owner residency);
    - every reader registered at an owner is a distinct sharer, not the
      owner itself;
    - kernel write access implies ownership (single writer);
    - no parked foreign requests or unanswered continuations remain. *)
val check_invariants : t -> string list
