module Engine = Asvm_simcore.Engine
module Stats = Asvm_simcore.Stats
module Network = Asvm_mesh.Network
module Sts = Asvm_sts.Sts
module Vm = Asvm_machvm.Vm
module Prot = Asvm_machvm.Prot
module Contents = Asvm_machvm.Contents
module Emmi = Asvm_machvm.Emmi
module Ids = Asvm_machvm.Ids
module Store_pager = Asvm_pager.Store_pager
module Metrics = Asvm_obs.Metrics
module Trace = Asvm_obs.Trace

type forwarding = { dynamic : bool; static : bool }

let all_forwarding = { dynamic = true; static = true }

type config = {
  sts : Sts.config;
  dynamic_cache_pages : int;
  static_cache_pages : int;
  forwarding : forwarding;
  internode_paging : bool;
}

let default_config =
  {
    sts = Sts.default_config;
    dynamic_cache_pages = 256;
    static_cache_pages = 4096;
    forwarding = all_forwarding;
    internode_paging = true;
  }

(* Static-manager hints (paper figure 6): besides a node reference, the
   cache can record that a page was never initialized (fresh) or has
   been paged out (paged). *)
type shint = S_at of int | S_fresh | S_paged

type rkind = K_fault | K_pull | K_push_scan

type request = {
  r_origin : int;  (** faulting node *)
  r_origin_obj : Ids.obj_id;  (** object the answer is supplied into *)
  mutable r_obj : Ids.obj_id;  (** object currently being searched *)
  r_page : int;
  r_want : Prot.t;
  r_upgrade : bool;
  r_scan_home : Ids.obj_id;  (** for push scans: source object waiting *)
  mutable r_hops : int;
  mutable r_ring : int;  (** -1 = not sweeping; else the sweep's start node *)
  r_kind : rkind;
  r_origin_inc : int;
      (** the origin's crash incarnation when the request was issued: a
          request outlives its origin's crash only as garbage, dropped
          at its next routing hop (see [docs/AVAILABILITY.md]) *)
  r_gen : int;
      (** fault generation at the origin, echoed back in the reply.  A
          crash-recovery re-drive bumps the generation so answers to the
          superseded request are discarded instead of double-consuming
          the origin's receive-buffer reservation.  [-1] = not
          generation-checked (push scans, local-upgrade requests and
          kernel retries, which never re-drive). *)
}

type msg =
  | A_request of request
  | A_pager_lookup of request
  | A_pull of request
  | A_reply of {
      origin_obj : Ids.obj_id;
      page : int;
      contents : Contents.t option;  (** [None] = zero fill *)
      grant : Prot.t;
      owner : bool;
      readers : int list;
      version : int;
      dirty : bool;
      from : int;
      updated : bool;
          (** the supplier already told the static manager the origin is
              the new owner, so the origin must not repeat the update —
              this is what keeps a remote ownership transfer at the
              paper's three messages *)
      gen : int;  (** echo of the request's [r_gen] *)
    }
  | A_grant of {
      obj : Ids.obj_id;
      page : int;
      version : int;
      from : int;
      gen : int;
    }
  | A_invalidate of { obj : Ids.obj_id; page : int; new_owner : int; from : int }
  | A_inval_ack of { obj : Ids.obj_id; page : int }
  | A_owner_update of { obj : Ids.obj_id; page : int; hint : shint }
  | A_reader_query of {
      obj : Ids.obj_id;
      page : int;
      from : int;
      dirty : bool;
      rest : int list;
      version : int;
    }
  | A_reader_answer of { obj : Ids.obj_id; page : int; from : int; accepted : bool }
  | A_transfer_offer of { obj : Ids.obj_id; page : int; from : int }
  | A_transfer_answer of { obj : Ids.obj_id; page : int; from : int; accepted : bool }
  | A_transfer_page of {
      obj : Ids.obj_id;
      page : int;
      contents : Contents.t;
      dirty : bool;
      version : int;
    }
  | A_pager_offer of { obj : Ids.obj_id; page : int; from : int }
  | A_pager_grant of { obj : Ids.obj_id; page : int }
  | A_to_pager of { obj : Ids.obj_id; page : int; contents : Contents.t option }
  | A_copy_made of {
      obj : Ids.obj_id;
      peer : int;
      shared : Ids.obj_id option;
      new_version : int;
      from : int;
    }
  | A_copy_shared of {
      obj : Ids.obj_id;
      copy : Ids.obj_id;
      peer : int;
      from : int;
    }
  | A_copy_ack of { obj : Ids.obj_id }
  | A_push_lock of { obj : Ids.obj_id; page : int; from : int }
  | A_push_lock_done of {
      obj : Ids.obj_id;
      page : int;
      from : int;
      needs_contents : bool;
    }
  | A_push_contents of {
      obj : Ids.obj_id;
      page : int;
      contents : Contents.t;
      from : int;
    }
  | A_push_ack of { home : Ids.obj_id; page : int }
  | A_push_prepare of {
      copy : Ids.obj_id;
      home : Ids.obj_id;
      page : int;
      from : int;
    }
  | A_push_ready of { copy : Ids.obj_id; home : Ids.obj_id; page : int }
  | A_push_to_copy of {
      copy : Ids.obj_id;
      home : Ids.obj_id;
      page : int;
      contents : Contents.t;
      from : int;
    }
  | A_scan_answer of {
      home : Ids.obj_id;
      page : int;
      copy : Ids.obj_id;
      found : bool;
    }
  | A_retry of {
      origin_obj : Ids.obj_id;
      page : int;
      want : Prot.t;
      upgrade : bool;
    }

(* Owner-side state for one page. Its existence in [i_pages] means this
   node owns the page; state is created/destroyed with ownership, so the
   memory footprint is tied to residency (design rule 2). *)
type pstate = {
  mutable p_readers : int list;
  mutable p_version : int;  (** pushes complete up to this object version *)
  mutable p_busy : bool;
  mutable p_pushing : bool;
  mutable p_active : request option;
      (** the fault currently being served ([p_busy]); queued requests
          live in [p_queue], but the one in service is reachable nowhere
          else — crash recovery re-drives it from its origin *)
  p_queue : request Queue.t;
  p_retries : request Queue.t;  (** pulls held during a push (3.7.3) *)
  mutable p_acks : int;  (** outstanding invalidation acks *)
  mutable p_ack_k : unit -> unit;
}

type push_op = {
  mutable o_outstanding : int;
  mutable o_need_nodes : int list;
  mutable o_need_copies : (Ids.obj_id * int) list;  (** (copy, peer) *)
  mutable o_contents : Contents.t option;  (** frozen contents for phase 2 *)
  mutable o_k : unit -> unit;
}

type inst = {
  i_node : int;
  i_obj : Ids.obj_id;
  i_size : int;
  i_sharers : int array;
  i_fwd : forwarding;
  i_pagers : Store_pager.t array;
      (** the object's pager tasks; page p is served by pager (p mod n) —
          round-robin striping, the paper's section 6 proposal *)
  i_shadow : (Ids.obj_id * int) option;
  mutable i_version : int;
  mutable i_copies : (Ids.obj_id * int) list;
  i_pages : (int, pstate) Hashtbl.t;
  i_dyn : int Hint_cache.t;
  i_static : shint Hint_cache.t;
  i_seen : Bytes.t;  (** static-manager role: page ever had an owner *)
  mutable i_pageout_counter : int;
  mutable i_last_acceptor : int option;
  i_push_ops : (int, push_op) Hashtbl.t;
  (* continuations waiting for a boolean answer (reader query, transfer
     offer), keyed by page *)
  i_answers : (int, bool -> unit) Hashtbl.t;
  (* pages this node has its own fault request in flight for (value =
     time the fault fired, feeding the latency histogram, and the fault
     generation — bumped by crash-recovery re-drives); foreign requests
     arriving meanwhile park here until ownership lands *)
  i_outstanding : (int, float * int) Hashtbl.t;
  mutable i_next_gen : int;
  i_waiting_inbound : (int, request Queue.t) Hashtbl.t;
  (* answers this node owes for delivered-but-not-yet-answered messages
     (invalidations, push locks, pager offers: anything whose reply
     waits on an async kernel call or a buffer retry loop).  If the
     node crashes inside that window, recovery synthesizes each owed
     answer at its destination so the waiting peer is not stranded. *)
  mutable i_owed_acks : (int * msg) list;
  (* pager-node role: page -> node the pager last granted the page to;
     serializes simultaneous cold faults on one page (single-owner) *)
  i_granted : (int, int) Hashtbl.t;
  (* pager-node role: page -> evicting node whose dirty contents are
     still in flight (between [A_pager_grant] and [A_to_pager]).  A
     lookup for such a page must wait for the contents: supplying from
     the store inside the window would hand out the stale pre-eviction
     image — and the pageout's arrival would then wipe the grant-table
     entry, letting a later lookup mint a second owner. *)
  i_pageouts : (int, int) Hashtbl.t;
  mutable i_copy_acks : int;
  mutable i_copy_k : unit -> unit;
}

(* Metric handles (see docs/PERFORMANCE.md): the registry's string+label
   hashtable lookup is too slow for the per-message send path, so every
   series the protocol can bump is resolved to its Counter.t/Histogram.t
   handle ahead of the hot path.  Fixed-cardinality series resolve
   eagerly at [create]; the (class, group, contents) cross product of
   [asvm.msgs] resolves each cell on first use (so snapshots only carry
   series with actual traffic) and is an array load afterwards. *)
type handles = {
  hm_msgs : Metrics.Counter.t option array;
      (* asvm.msgs{class,group,contents}: row * 3 + contents index *)
  hm_ot : Metrics.Counter.t option array;
      (* asvm.msgs.ownership_transfer{msg,contents}, transfer rows only *)
  hm_ownership_transfers : Metrics.Counter.t;
  hm_fault_read : Metrics.Histogram.t;
  hm_fault_ownership : Metrics.Histogram.t;
  hm_forwarding : Metrics.Counter.t array;  (* per forwarding mechanism *)
  hm_recovery : Metrics.Histogram.t;  (* asvm.recovery_ms *)
}

type t = {
  sts : msg Sts.t;
  net : Network.t;
  vms : Vm.t array;
  wpp : int;
  config : config;
  insts : (int * Ids.obj_id, inst) Hashtbl.t;
  counters : Stats.Counters.t;
  metrics : Metrics.Registry.t;
  handles : handles;
  trace : Trace.t option;
  (* (node, obj, page) -> time a crash put this fault into recovery
     (dead-letter re-drive or rejoin re-drive); completion of the fresh
     fault samples the asvm.recovery_ms histogram *)
  recovering : (int * Ids.obj_id * int, float) Hashtbl.t;
}

let counters t = t.counters
let now t = Engine.now (Vm.engine t.vms.(0))

let sts_messages t = Sts.messages t.sts
let sts_page_messages t = Sts.page_messages t.sts
let sts_retransmits t = Sts.retransmits t.sts
let buffers_reserved t ~node = Sts.buffers_reserved t.sts ~node

let inst t node obj =
  match Hashtbl.find_opt t.insts (node, obj) with
  | Some i -> i
  | None ->
    failwith (Printf.sprintf "Asvm: no instance of obj#%d on node %d" obj node)

let debug_msgs = Sys.getenv_opt "ASVM_DEBUG" <> None

let debug_page =
  match Sys.getenv_opt "ASVM_DEBUG_PAGE" with
  | Some s -> int_of_string s
  | None -> -1

let page_of_msg = function
  | A_request r | A_pager_lookup r | A_pull r -> r.r_page
  | A_reply { page; _ } | A_grant { page; _ }
  | A_invalidate { page; _ } | A_inval_ack { page; _ }
  | A_owner_update { page; _ } | A_reader_query { page; _ }
  | A_reader_answer { page; _ } | A_transfer_offer { page; _ }
  | A_transfer_answer { page; _ } | A_transfer_page { page; _ }
  | A_pager_offer { page; _ } | A_pager_grant { page; _ }
  | A_to_pager { page; _ } | A_push_lock { page; _ }
  | A_push_lock_done { page; _ } | A_push_contents { page; _ }
  | A_push_ack { page; _ } | A_push_prepare { page; _ }
  | A_push_ready { page; _ } | A_push_to_copy { page; _ }
  | A_scan_answer { page; _ } | A_retry { page; _ } -> page
  | A_copy_made _ | A_copy_shared _ | A_copy_ack _ -> -1

let tag_of_msg = function
  | A_request _ -> "request"
  | A_pager_lookup _ -> "pager_lookup"
  | A_pull _ -> "pull"
  | A_reply { page; grant; owner; _ } ->
    Printf.sprintf "reply(page=%d grant=%s owner=%b)" page (Prot.to_string grant) owner
  | A_grant _ -> "grant"
  | A_invalidate _ -> "invalidate"
  | A_inval_ack _ -> "inval_ack"
  | A_owner_update _ -> "owner_update"
  | A_reader_query _ -> "reader_query"
  | A_reader_answer _ -> "reader_answer"
  | A_transfer_offer _ -> "transfer_offer"
  | A_transfer_answer _ -> "transfer_answer"
  | A_transfer_page _ -> "transfer_page"
  | A_pager_offer _ -> "pager_offer"
  | A_pager_grant _ -> "pager_grant"
  | A_to_pager _ -> "to_pager"
  | A_copy_made _ -> "copy_made"
  | A_copy_shared _ -> "copy_shared"
  | A_copy_ack _ -> "copy_ack"
  | A_push_lock _ -> "push_lock"
  | A_push_lock_done _ -> "push_lock_done"
  | A_push_contents _ -> "push_contents"
  | A_push_ack _ -> "push_ack"
  | A_push_prepare _ -> "push_prepare"
  | A_push_ready _ -> "push_ready"
  | A_push_to_copy _ -> "push_to_copy"
  | A_scan_answer _ -> "scan_answer"
  | A_retry _ -> "retry"

(* Message class for the metrics registry: like [tag_of_msg] but a
   stable label with no interpolated per-message detail.  Classes and
   accounting groups live in one fixed row table so the send path can
   resolve a message's metric series by integer index instead of
   rebuilding a label list per message. *)

(* Bucket each message class into the accounting groups the paper's
   message-count claims are stated in (Table 1 and section 3):
   - "transfer": the ownership/access-transfer core — request, reply,
     grant, and the owner-change notice to the static manager;
   - "invalidation": flushing read copies before a write grant;
   - "pager": backing-store traffic (lookups and page-out stores);
   - "pageout": the four-step eviction negotiation (3.6);
   - "copy": delayed-copy machinery — pushes, pulls, scans (3.7).
   A request's group follows its kind: a pull or push-scan walking the
   shadow chain is copy machinery, not an ownership transfer. *)
let msg_rows =
  [|
    ("request", "transfer");  (* 0: A_request, K_fault *)
    ("request", "copy");  (* 1: A_request, K_pull / K_push_scan *)
    ("pager_lookup", "pager");
    ("pull", "copy");
    ("reply", "transfer");
    ("grant", "transfer");
    ("invalidate", "invalidation");
    ("inval_ack", "invalidation");
    ("owner_update", "transfer");
    ("reader_query", "pageout");
    ("reader_answer", "pageout");
    ("transfer_offer", "pageout");
    ("transfer_answer", "pageout");
    ("transfer_page", "pageout");
    ("pager_offer", "pager");
    ("pager_grant", "pager");
    ("to_pager", "pager");
    ("copy_made", "copy");
    ("copy_shared", "copy");
    ("copy_ack", "copy");
    ("push_lock", "copy");
    ("push_lock_done", "copy");
    ("push_contents", "copy");
    ("push_ack", "copy");
    ("push_prepare", "copy");
    ("push_ready", "copy");
    ("push_to_copy", "copy");
    ("scan_answer", "copy");
    ("retry", "copy");
  |]

let row_of_msg = function
  | A_request { r_kind = K_fault; _ } -> 0
  | A_request _ -> 1
  | A_pager_lookup _ -> 2
  | A_pull _ -> 3
  | A_reply _ -> 4
  | A_grant _ -> 5
  | A_invalidate _ -> 6
  | A_inval_ack _ -> 7
  | A_owner_update _ -> 8
  | A_reader_query _ -> 9
  | A_reader_answer _ -> 10
  | A_transfer_offer _ -> 11
  | A_transfer_answer _ -> 12
  | A_transfer_page _ -> 13
  | A_pager_offer _ -> 14
  | A_pager_grant _ -> 15
  | A_to_pager _ -> 16
  | A_copy_made _ -> 17
  | A_copy_shared _ -> 18
  | A_copy_ack _ -> 19
  | A_push_lock _ -> 20
  | A_push_lock_done _ -> 21
  | A_push_contents _ -> 22
  | A_push_ack _ -> 23
  | A_push_prepare _ -> 24
  | A_push_ready _ -> 25
  | A_push_to_copy _ -> 26
  | A_scan_answer _ -> 27
  | A_retry _ -> 28

let row_is_transfer = Array.map (fun (_, g) -> g = "transfer") msg_rows

(* "contents" follows the paper's accounting: a message counts as
   carrying contents only when a page actually crosses the wire *)
let contents_labels = [| "none"; "local"; "wire" |]

let make_handles metrics =
  {
    hm_msgs = Array.make (Array.length msg_rows * 3) None;
    hm_ot = Array.make (Array.length msg_rows * 3) None;
    hm_ownership_transfers =
      Metrics.Registry.counter metrics "asvm.ownership_transfers";
    hm_fault_read =
      Metrics.Registry.histogram metrics "asvm.fault_ms"
        ~labels:[ ("kind", "read") ];
    hm_fault_ownership =
      Metrics.Registry.histogram metrics "asvm.fault_ms"
        ~labels:[ ("kind", "ownership") ];
    hm_forwarding =
      Array.map
        (fun mechanism ->
          Metrics.Registry.counter metrics "asvm.forwarding"
            ~labels:[ ("mechanism", mechanism) ])
        [|
          "loop_break"; "dynamic"; "to_static"; "static_hit"; "fresh_hint";
          "paged_hint"; "global_sweep";
        |];
    hm_recovery = Metrics.Registry.histogram metrics "asvm.recovery_ms";
  }

(* forwarding-mechanism indices into [hm_forwarding] *)
let fwd_loop_break = 0
let fwd_dynamic = 1
let fwd_to_static = 2
let fwd_static_hit = 3
let fwd_fresh_hint = 4
let fwd_paged_hint = 5
let fwd_global_sweep = 6

let msgs_counter t row ci =
  let idx = (row * 3) + ci in
  match t.handles.hm_msgs.(idx) with
  | Some c -> c
  | None ->
    let cls, group = msg_rows.(row) in
    let c =
      Metrics.Registry.counter t.metrics "asvm.msgs"
        ~labels:
          [ ("class", cls); ("group", group);
            ("contents", contents_labels.(ci)) ]
    in
    t.handles.hm_msgs.(idx) <- Some c;
    c

let ot_counter t row ci =
  let idx = (row * 3) + ci in
  match t.handles.hm_ot.(idx) with
  | Some c -> c
  | None ->
    let cls, _ = msg_rows.(row) in
    let c =
      Metrics.Registry.counter t.metrics "asvm.msgs.ownership_transfer"
        ~labels:[ ("msg", cls); ("contents", contents_labels.(ci)) ]
    in
    t.handles.hm_ot.(idx) <- Some c;
    c

let page_bytes = 8192

let send t ~src ~dst ?carries_page msg =
  if debug_msgs || (debug_page >= 0 && page_of_msg msg = debug_page) then
    Printf.eprintf "[asvm %8.3f] %d -> %d : %s%s\n%!" (now t) src dst (tag_of_msg msg)
      (if carries_page = Some true then " [page]" else "");
  let page = carries_page = Some true in
  let row = row_of_msg msg in
  let cls, group = msg_rows.(row) in
  let ci = if not page then 0 else if src = dst then 1 else 2 in
  Metrics.Counter.incr (msgs_counter t row ci);
  if row_is_transfer.(row) then Metrics.Counter.incr (ot_counter t row ci);
  Trace.emit t.trace ~time:(now t) ~node:src
    (Trace.Msg
       {
         proto = "asvm";
         cls;
         group;
         src;
         dst;
         carries_page = page;
         bytes = (t.config.sts.Sts.header_bytes + if page then page_bytes else 0);
       });
  Sts.send t.sts ~src ~dst ?carries_page msg

(* Per-forwarding-mechanism counters (dynamic hints, static manager,
   global sweep...), mirrored into the registry next to the legacy
   [Stats.Counters] names that tests and benches already consume. *)
let count_forward t mechanism =
  Metrics.Counter.incr t.handles.hm_forwarding.(mechanism)

let static_mgr i page = i.i_sharers.(page mod Array.length i.i_sharers)

(* the pager responsible for a page: round-robin across the object's
   pager tasks (one pager for ordinary objects; several for striped
   files, paper section 6) *)
let pager_of i page = i.i_pagers.(page mod Array.length i.i_pagers)

let sharer_index i node =
  let found = ref (-1) in
  Array.iteri (fun idx n -> if n = node then found := idx) i.i_sharers;
  !found

(* The global forwarding ring, made crash-aware: the walk from [node]
   skips nodes that are currently down (their owner state died with
   them) and reports [None] when it would pass [stop] — the sweep's
   starting point, which may itself have crashed meanwhile, so
   termination cannot rely on reaching it. *)
let ring_next t i ~node ~stop =
  let n = Array.length i.i_sharers in
  let idx = sharer_index i node in
  let start = if idx < 0 then 0 else (idx + 1) mod n in
  let stop_idx = sharer_index i stop in
  let rec pick k =
    if k >= n then None
    else
      let j = (start + k) mod n in
      if stop_idx >= 0 && j = stop_idx then None
      else
        let c = i.i_sharers.(j) in
        if Network.is_down t.net c || c = node then pick (k + 1) else Some c
  in
  pick 0

let zero t = Contents.zero ~words:t.wpp

let add_reader ps node =
  if not (List.mem node ps.p_readers) then ps.p_readers <- node :: ps.p_readers

let new_pstate ~version =
  {
    p_readers = [];
    p_version = version;
    p_busy = false;
    p_pushing = false;
    p_active = None;
    p_queue = Queue.create ();
    p_retries = Queue.create ();
    p_acks = 0;
    p_ack_k = ignore;
  }

(* ------------------------------------------------------------------ *)
(* Hint maintenance                                                   *)
(* ------------------------------------------------------------------ *)

let update_static t i ~page ~hint =
  (* record at the page's static ownership manager *)
  let sm = static_mgr i page in
  if sm = i.i_node then begin
    Hint_cache.put i.i_static ~page hint;
    Bytes.set i.i_seen page '\001'
  end
  else send t ~src:i.i_node ~dst:sm (A_owner_update { obj = i.i_obj; page; hint })

(* ------------------------------------------------------------------ *)
(* Request forwarding (the redirector, paper 3.3/3.4)                 *)
(* ------------------------------------------------------------------ *)

(* How long a foreign request may stay parked behind this node's own
   in-flight fault before it is converted to a global sweep (see
   [route_request]).  Generous against ordinary fault latency so the
   conversion only fires on genuine parking cycles, where the extra
   sweep traffic is the price of liveness. *)
let park_timeout_ms = 50.

(* Crash staleness: a request whose origin crashed answers a fault that
   died with the node — drop it wherever it is next routed.  A
   crash-recovery re-drive bumps the origin's fault generation, which
   equally invalidates the superseded request.  Consulting the origin's
   table from a remote hop is a simulator shortcut standing in for the
   cancellation round a real recovery protocol would run. *)
let request_stale t req =
  Network.is_down t.net req.r_origin
  || Network.incarnation t.net req.r_origin <> req.r_origin_inc
  || (req.r_kind = K_fault && req.r_gen >= 0
     &&
     match Hashtbl.find_opt t.insts (req.r_origin, req.r_origin_obj) with
     | None -> true
     | Some oi -> (
       match Hashtbl.find_opt oi.i_outstanding req.r_page with
       | Some (_, g) -> g <> req.r_gen
       | None -> true))

let rec route_request t node req =
  if request_stale t req then begin
    if debug_page >= 0 && req.r_page = debug_page then
      Printf.eprintf "[asvm %8.3f] node %d DROP-STALE req origin=%d gen=%d\n%!"
        (now t) node req.r_origin req.r_gen;
    Stats.Counters.incr t.counters "crash.stale_requests"
  end
  else
  let i = inst t node req.r_obj in
  match Hashtbl.find_opt i.i_pages req.r_page with
  | Some ps -> owner_handle t node i ps req
  | None ->
    if
      req.r_kind = K_fault
      && req.r_origin <> node
      && req.r_ring < 0
      && Hashtbl.mem i.i_outstanding req.r_page
    then begin
      (* this node's own fault for the page is in flight and will make
         it the owner: park the foreign request until then.  A sweeping
         request ([r_ring >= 0]) must NOT park: after the static
         manager's hint table died in a crash, every stuck faulter
         sweeps, and sweeps parking at each other's in-flight faults
         form a cycle nobody can drain.  The sweep instead runs to the
         pager, whose grant table serializes the claims. *)
      let q =
        match Hashtbl.find_opt i.i_waiting_inbound req.r_page with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add i.i_waiting_inbound req.r_page q;
          q
      in
      (if debug_page >= 0 && req.r_page = debug_page then
         Printf.eprintf "[asvm %8.3f] node %d PARK req origin=%d gen=%d\n%!"
           (now t) node req.r_origin req.r_gen);
      Queue.push req q;
      (* Parking assumes this node's fault will land and [drain_inbound]
         will re-route the queue.  Under memory pressure that assumption
         can fail transitively: the parker's own request may itself be
         parked at another faulting node (hints legitimately point at
         ex-owners that evicted the page and are faulting it back), and
         two such nodes holding each other's requests deadlock.  Bound
         the wait: a request still parked after [park_timeout_ms] is
         converted to a global sweep — sweeps never park, and the
         pager's grant table serializes the survivors, so at least one
         member of any cycle completes and drains the rest. *)
      Engine.schedule
        (Vm.engine t.vms.(node))
        ~delay:park_timeout_ms
        (fun () -> unpark_if_stuck t node i req)
    end
    else forward_request t node i req

and unpark_if_stuck t node i req =
  match Hashtbl.find_opt i.i_waiting_inbound req.r_page with
  | None -> ()
  | Some q ->
    let keep = Queue.create () in
    let found = ref false in
    Queue.iter (fun r -> if r == req then found := true else Queue.push r keep) q;
    if !found then begin
      Queue.clear q;
      Queue.transfer keep q;
      if Queue.is_empty q then Hashtbl.remove i.i_waiting_inbound req.r_page;
      if request_stale t req then
        Stats.Counters.incr t.counters "crash.stale_requests"
      else begin
        Stats.Counters.incr t.counters "forward.park_timeouts";
        if debug_page >= 0 && req.r_page = debug_page then
          Printf.eprintf "[asvm %8.3f] node %d UNPARK->sweep origin=%d gen=%d\n%!"
            (now t) node req.r_origin req.r_gen;
        start_sweep t node i req
      end
    end

and forward_request t node i req =
  req.r_hops <- req.r_hops + 1;
  if req.r_ring >= 0 then sweep_step t node i req
  else if req.r_hops > (2 * Array.length i.i_sharers) + 8 then begin
    (* stale hint loop: abandon hints, fall back to a global sweep *)
    Stats.Counters.incr t.counters "forward.loop_breaks";
    count_forward t fwd_loop_break;
    start_sweep t node i req
  end
  else begin
    let hint =
      if i.i_fwd.dynamic then Hint_cache.find i.i_dyn ~page:req.r_page else None
    in
    match hint with
    | Some target when target <> node && not (Network.is_down t.net target) ->
      Stats.Counters.incr t.counters "forward.dynamic";
      count_forward t fwd_dynamic;
      (* Note: Li's hint-chain collapse ("the originator becomes the
         next owner", paper 3.2) is deliberately NOT applied here at
         forwarding nodes. With concurrent writers, speculative hints to
         not-yet-owners can form cycles in which each requester parks
         the other's request. Hints are updated only by authoritative
         events — the granting owner, invalidations, replies and the
         serialized static-manager claims — which keeps the
         request-parking relation acyclic (see test_cluster soak). *)
      send t ~src:node ~dst:target (A_request req)
    | Some _ | None ->
      if i.i_fwd.static then begin
        let sm = static_mgr i req.r_page in
        if Network.is_down t.net sm then
          (* the page's static manager is down: its hint table is gone,
             only the ring sweep can find a surviving owner *)
          start_sweep t node i req
        else if sm <> node then begin
          Stats.Counters.incr t.counters "forward.to_static";
          count_forward t fwd_to_static;
          send t ~src:node ~dst:sm (A_request req)
        end
        else consult_static t node i req
      end
      else start_sweep t node i req
  end

and consult_static t node i req =
  (* When the request leaves for the pager (or is zero-granted), the
     origin is about to become the owner: record that now so that
     simultaneous requests for the same page chase the origin instead of
     each being granted an owner by the pager. *)
  let claim_for_origin () =
    if req.r_kind <> K_push_scan then begin
      Hint_cache.put i.i_static ~page:req.r_page (S_at req.r_origin);
      Bytes.set i.i_seen req.r_page '\001'
    end
  in
  match Hint_cache.find i.i_static ~page:req.r_page with
  | Some (S_at target) when target <> node && not (Network.is_down t.net target)
    ->
    Stats.Counters.incr t.counters "forward.static_hit";
    count_forward t fwd_static_hit;
    send t ~src:node ~dst:target (A_request req)
  | Some S_fresh ->
    Stats.Counters.incr t.counters "forward.fresh_hint";
    count_forward t fwd_fresh_hint;
    claim_for_origin ();
    conclude_fresh t node i req
  | Some S_paged ->
    Stats.Counters.incr t.counters "forward.paged_hint";
    count_forward t fwd_paged_hint;
    claim_for_origin ();
    to_pager_lookup t node i req
  | Some (S_at _) (* stale self-reference *) | None ->
    if Bytes.get i.i_seen req.r_page = '\000' then begin
      (* the page never had an owner: only the pager (or, for a copy
         object, the shadow chain behind it) can have data *)
      claim_for_origin ();
      to_pager_lookup t node i req
    end
    else start_sweep t node i req

and to_pager_lookup t node i req =
  let pnode = Store_pager.node (pager_of i req.r_page) in
  if pnode = node then pager_lookup t node i req
  else send t ~src:node ~dst:pnode (A_pager_lookup req)

and start_sweep t node i req =
  Stats.Counters.incr t.counters "forward.global_sweeps";
  count_forward t fwd_global_sweep;
  req.r_ring <- node;
  sweep_step t node i req

and sweep_step t node i req =
  match ring_next t i ~node ~stop:req.r_ring with
  | None -> end_of_search t node i req
  | Some next -> send t ~src:node ~dst:next (A_request req)

(* The sweep (or hint path) found no owner anywhere. *)
and end_of_search t node i req =
  req.r_ring <- -1;
  to_pager_lookup t node i req

(* Executed on the pager's node. *)
and pager_lookup t node i req =
  let awaiting_pageout =
    match Hashtbl.find_opt i.i_pageouts req.r_page with
    | Some evictor when not (Network.is_down t.net evictor) -> true
    | Some _ ->
      (* the evictor died inside the window; its contents either died
         with it or dead-letter into the store — stop waiting *)
      Hashtbl.remove i.i_pageouts req.r_page;
      false
    | None -> false
  in
  if awaiting_pageout then
    (* a dirty pageout of this page is in flight to the store: wait for
       it rather than supplying the stale pre-eviction image *)
    Engine.schedule (Network.engine t.net) ~delay:0.5 (fun () ->
        if not (request_stale t req) then pager_lookup t node i req)
  else
  let escalated = req.r_hops > 4 * (Array.length i.i_sharers + 2) in
  match Hashtbl.find_opt i.i_granted req.r_page with
  | Some holder
    when req.r_kind <> K_push_scan && holder <> req.r_origin && not escalated
         && not (Network.is_down t.net holder)
    ->
    (* the pager already handed this page to someone: chase the holder
       instead of creating a second owner.  Leave sweep mode — the
       chased request must be allowed to park behind the holder's
       in-flight fault rather than sweep past it forever. *)
    req.r_ring <- -1;
    send t ~src:node ~dst:holder (A_request req)
  | _ ->
  if Store_pager.has (pager_of i req.r_page) ~obj:req.r_obj ~page:req.r_page
  then begin
    match req.r_kind with
    | K_push_scan ->
      (* the copy object's page lives at the pager: push unnecessary *)
      send t ~src:node ~dst:req.r_origin
        (A_scan_answer
           { home = req.r_scan_home; page = req.r_page; copy = req.r_origin_obj; found = true })
    | K_fault | K_pull ->
      Stats.Counters.incr t.counters "pager.supplies";
      Hashtbl.replace i.i_granted req.r_page req.r_origin;
      Store_pager.request (pager_of i req.r_page) ~obj:req.r_obj ~page:req.r_page ~words:t.wpp
        (fun contents ->
          update_static t i ~page:req.r_page ~hint:(S_at req.r_origin);
          send t ~src:node ~dst:req.r_origin ~carries_page:true
            (A_reply
               {
                 origin_obj = req.r_origin_obj;
                 page = req.r_page;
                 contents = Some contents;
                 grant = req.r_want;
                 owner = true;
                 readers = [];
                 version = 0;
                 dirty = false;
                 from = node;
                 updated = true;
                 gen = req.r_gen;
               }))
  end
  else
    match req.r_kind with
    | K_push_scan ->
      send t ~src:node ~dst:req.r_origin
        (A_scan_answer
           { home = req.r_scan_home; page = req.r_page; copy = req.r_origin_obj; found = false })
    | K_fault | K_pull -> (
      match i.i_shadow with
      | Some (_src, peer) ->
        (* a copy object with no owner and nothing paged: walk the
           shadow chain on the peer node (figure 9); pulls continue
           stage by stage until the end of the chain *)
        Stats.Counters.incr t.counters "copy.pulls";
        send t ~src:node ~dst:peer (A_pull req)
      | None -> conclude_fresh t node i req)

(* The page was never written anywhere: grant a zero-filled page. *)
and conclude_fresh t node i req =
  match req.r_kind with
  | K_push_scan ->
    send t ~src:node ~dst:req.r_origin
      (A_scan_answer
         { home = req.r_scan_home; page = req.r_page; copy = req.r_origin_obj; found = false })
  | K_fault | K_pull ->
    Stats.Counters.incr t.counters "zero_grants";
    if node = Store_pager.node (pager_of i req.r_page) then
      Hashtbl.replace i.i_granted req.r_page req.r_origin;
    update_static t i ~page:req.r_page ~hint:(S_at req.r_origin);
    send t ~src:node ~dst:req.r_origin
      (A_reply
         {
           origin_obj = req.r_origin_obj;
           page = req.r_page;
           contents = None;
           grant = req.r_want;
           owner = true;
           readers = [];
           version = 0;
           dirty = false;
           from = node;
           updated = true;
           gen = req.r_gen;
         })

(* ------------------------------------------------------------------ *)
(* Owner-side state machine (paper 3.5, figure 7)                     *)
(* ------------------------------------------------------------------ *)

and owner_handle t node i ps req =
  match req.r_kind with
  | K_push_scan ->
    (* an owner exists in the copy object: the push can be cancelled *)
    send t ~src:node ~dst:req.r_origin
      (A_scan_answer
         { home = req.r_scan_home; page = req.r_page; copy = req.r_obj; found = true })
  | K_pull ->
    if ps.p_pushing then Queue.push req ps.p_retries
    else reply_pull t node i ps req
  | K_fault ->
    if ps.p_busy then Queue.push req ps.p_queue
    else begin
      ps.p_busy <- true;
      ps.p_active <- Some req;
      Vm.wire t.vms.(node) ~obj:req.r_obj ~page:req.r_page;
      if Prot.equal req.r_want Prot.Read_write then
        owner_write_grant t node i ps req
      else owner_read_grant t node i ps req
    end

(* A pull wants the frozen snapshot value: reply contents without
   registering a reader or moving ownership. *)
and reply_pull t node _i ps req =
  ignore ps;
  match Vm.frame_contents t.vms.(node) ~obj:req.r_obj ~page:req.r_page with
  | Some contents ->
    send t ~src:node ~dst:req.r_origin ~carries_page:true
      (A_reply
         {
           origin_obj = req.r_origin_obj;
           page = req.r_page;
           contents = Some contents;
           grant = req.r_want;
           owner = true;
           readers = [];
           version = 0;
           dirty = false;
           from = node;
           updated = false;
           gen = req.r_gen;
         })
  | None ->
    (* owner invariant violated only transiently; treat as not found *)
    forward_request t node (inst t node req.r_obj) req

(* Transition 5: the owner grants read access and enters the requester
   into its reader list. The owner's own write permission is revoked
   {e before} the contents are captured — single writer or multiple
   readers, never both. *)
and owner_read_grant t node i ps req =
  let vm = t.vms.(node) in
  Vm.lock_request vm ~obj:req.r_obj ~page:req.r_page
    ~op:{ Emmi.max_access = Prot.Read_only; clean = false; mode = Emmi.Lock_plain }
    ~reply:(fun _ ->
      match Vm.frame_contents vm ~obj:req.r_obj ~page:req.r_page with
      | None ->
        finish_owner_op t node i ps req.r_page ~moved_to:None;
        forward_request t node i req
      | Some contents ->
        add_reader ps req.r_origin;
        send t ~src:node ~dst:req.r_origin ~carries_page:true
          (A_reply
             {
               origin_obj = req.r_origin_obj;
               page = req.r_page;
               contents = Some contents;
               grant = Prot.Read_only;
               owner = false;
               readers = [];
               version = ps.p_version;
               dirty = false;
               from = node;
               updated = false;
               gen = req.r_gen;
             });
        finish_owner_op t node i ps req.r_page ~moved_to:(Some node))

(* Transitions 4/6/7: write access moves ownership to the requester,
   after pushing to copies and invalidating all read copies. *)
and owner_write_grant t node i ps req =
  let page = req.r_page in
  run_push_if_needed t node i ps page (fun () ->
      invalidate_readers t node i ps ~page ~except:req.r_origin (fun () ->
          let vm = t.vms.(node) in
          if req.r_origin = node then begin
            (* transition 7: local upgrade; ownership stays here. Every
               request holds a receive-buffer reservation at its origin
               in case it has to leave the node; a locally granted one
               never uses it. *)
            Sts.release_buffer t.sts ~node;
            Vm.lock_request vm ~obj:req.r_obj ~page
              ~op:
                {
                  Emmi.max_access = Prot.Read_write;
                  clean = false;
                  mode = Emmi.Lock_plain;
                }
              ~reply:(fun _ -> ());
            finish_owner_op t node i ps page ~moved_to:(Some node)
          end
          else
            (* revoke our own write permission before capturing the
               contents, so no local write slips past the transfer *)
            Vm.lock_request vm ~obj:req.r_obj ~page
              ~op:
                {
                  Emmi.max_access = Prot.Read_only;
                  clean = false;
                  mode = Emmi.Lock_plain;
                }
              ~reply:(fun _ ->
                Stats.Counters.incr t.counters "ownership_transfers";
                Metrics.Counter.incr t.handles.hm_ownership_transfers;
                let was_reader = List.mem req.r_origin ps.p_readers in
                if req.r_upgrade && was_reader then
                  send t ~src:node ~dst:req.r_origin
                    (A_grant
                       {
                         obj = req.r_obj;
                         page;
                         version = ps.p_version;
                         from = node;
                         gen = req.r_gen;
                       })
                else begin
                  let contents =
                    match Vm.frame_contents vm ~obj:req.r_obj ~page with
                    | Some c -> c
                    | None -> zero t
                  in
                  let dirty = Vm.frame_dirty vm ~obj:req.r_obj ~page in
                  send t ~src:node ~dst:req.r_origin ~carries_page:true
                    (A_reply
                       {
                         origin_obj = req.r_origin_obj;
                         page;
                         contents = Some contents;
                         grant = Prot.Read_write;
                         owner = true;
                         readers = [];
                         version = ps.p_version;
                         dirty;
                         from = node;
                         updated = true;
                         gen = req.r_gen;
                       })
                end;
                (* the old owner flushes its own copy: single writer *)
                Vm.unwire vm ~obj:req.r_obj ~page;
                Vm.lock_request vm ~obj:req.r_obj ~page
                  ~op:
                    {
                      Emmi.max_access = Prot.No_access;
                      clean = false;
                      mode = Emmi.Lock_plain;
                    }
                  ~reply:(fun _ -> ());
                Hint_cache.put i.i_dyn ~page req.r_origin;
                update_static t i ~page ~hint:(S_at req.r_origin);
                finish_owner_op t node i ps page ~moved_to:(Some req.r_origin))))

(* Transitions 6/7 prologue: flush every node in the reader list. *)
and invalidate_readers t node i ps ~page ~except k =
  let targets = List.filter (fun r -> r <> except && r <> node) ps.p_readers in
  ps.p_readers <- [];
  match targets with
  | [] -> k ()
  | _ ->
    Stats.Counters.incr ~by:(List.length targets) t.counters "invalidations";
    ps.p_acks <- List.length targets;
    ps.p_ack_k <- k;
    List.iter
      (fun r ->
        send t ~src:node ~dst:r
          (A_invalidate { obj = i.i_obj; page; new_owner = except; from = node }))
      targets

(* Close an owner-side operation: drain queued work to wherever the
   ownership now lives. *)
and finish_owner_op t node i ps page ~moved_to =
  let vm = t.vms.(node) in
  ps.p_active <- None;
  let still_here = moved_to = Some node in
  if still_here then begin
    ps.p_busy <- false;
    Vm.unwire vm ~obj:i.i_obj ~page;
    match Queue.take_opt ps.p_queue with
    | Some req -> route_request t node req
    | None -> ()
  end
  else begin
    Hashtbl.remove i.i_pages page;
    let forward req =
      match moved_to with
      | Some target -> send t ~src:node ~dst:target (A_request req)
      | None -> route_request t node req
    in
    Queue.iter forward ps.p_queue;
    Queue.clear ps.p_queue
  end;
  (* pulls held during a push: tell their origins to retry (3.7.3) *)
  Queue.iter
    (fun req ->
      send t ~src:node ~dst:req.r_origin
        (A_retry
           {
             origin_obj = req.r_origin_obj;
             page = req.r_page;
             want = req.r_want;
             upgrade = req.r_upgrade;
           }))
    ps.p_retries;
  Queue.clear ps.p_retries

(* ------------------------------------------------------------------ *)
(* Push operations (paper 3.7.2)                                      *)
(* ------------------------------------------------------------------ *)

and run_push_if_needed t node i ps page k =
  if ps.p_version >= i.i_version then k ()
  else begin
    Stats.Counters.incr t.counters "pushes";
    ps.p_pushing <- true;
    let vm = t.vms.(node) in
    let contents =
      match Vm.frame_contents vm ~obj:i.i_obj ~page with
      | Some c -> c
      | None -> zero t
    in
    let targets =
      Array.to_list i.i_sharers |> List.filter (fun n -> n <> node)
    in
    let op =
      {
        o_outstanding = List.length targets + List.length i.i_copies + 1;
        o_need_nodes = [];
        o_need_copies = [];
        o_contents = Some contents;
        o_k = ignore;
      }
    in
    op.o_k <-
      (fun () ->
        push_phase_two t node i ~page ~contents op (fun () ->
            ps.p_version <- i.i_version;
            ps.p_pushing <- false;
            k ()));
    Hashtbl.replace i.i_push_ops page op;
    (* our own node's local copy chain *)
    Vm.lock_request vm ~obj:i.i_obj ~page
      ~op:{ Emmi.max_access = Prot.Read_only; clean = false; mode = Emmi.Lock_push_first }
      ~reply:(fun _ -> push_op_done i ~page);
    (* remote sharers: push down their local copy chains *)
    List.iter
      (fun target ->
        send t ~src:node ~dst:target
          (A_push_lock { obj = i.i_obj; page; from = node }))
      targets;
    (* shared copy objects: push scan through their forwarding (3.7.2) *)
    List.iter
      (fun (copy, peer) ->
        Stats.Counters.incr t.counters "push_scans";
        let req =
          {
            r_origin = node;
            r_origin_obj = copy;
            r_obj = copy;
            r_page = page;
            r_want = Prot.Read_only;
            r_upgrade = false;
            r_scan_home = i.i_obj;
            r_hops = 0;
            r_ring = -1;
            r_kind = K_push_scan;
            r_origin_inc = Network.incarnation t.net node;
            r_gen = -1;
          }
        in
        send t ~src:node ~dst:peer (A_request req))
      i.i_copies
  end

and push_op_done i ~page =
  match Hashtbl.find_opt i.i_push_ops page with
  | None -> ()
  | Some op ->
    op.o_outstanding <- op.o_outstanding - 1;
    if op.o_outstanding <= 0 then begin
      Hashtbl.remove i.i_push_ops page;
      op.o_k ()
    end

(* Phase 2: deliver the frozen contents to every sharer whose local copy
   chain lacked the page, and to the peer of every shared copy object
   the scans found empty. Completion waits for all acks so write access
   is only granted once every copy holds the snapshot. *)
and push_phase_two t node i ~page ~contents op k =
  let sends = List.length op.o_need_nodes + List.length op.o_need_copies in
  if sends = 0 then k ()
  else begin
    let op2 =
      {
        o_outstanding = sends;
        o_need_nodes = [];
        o_need_copies = [];
        o_contents = Some contents;
        o_k = k;
      }
    in
    Hashtbl.replace i.i_push_ops page op2;
    List.iter
      (fun target ->
        send t ~src:node ~dst:target ~carries_page:true
          (A_push_contents { obj = i.i_obj; page; contents; from = node }))
      op.o_need_nodes;
    List.iter
      (fun (copy, peer) ->
        send t ~src:node ~dst:peer
          (A_push_prepare { copy; home = i.i_obj; page; from = node }))
      op.o_need_copies
  end

(* ------------------------------------------------------------------ *)
(* Internode paging (paper 3.6)                                       *)
(* ------------------------------------------------------------------ *)

(* The kernel evicted a page this node owns: find the state a new home
   following the four-step algorithm. *)
and handle_eviction t node i ps ~page ~contents ~dirty =
  ps.p_busy <- true;
  query_readers t node i ps ~page ~contents ~dirty ps.p_readers

(* Step 2: offer ownership to surviving readers, one after another. *)
and query_readers t node i ps ~page ~contents ~dirty readers =
  match readers with
  | r :: rest ->
    ps.p_readers <- rest;
    Hashtbl.replace i.i_answers page (fun accepted ->
        if accepted then begin
          Stats.Counters.incr t.counters "pageout.reader_handoffs";
          Hint_cache.put i.i_dyn ~page r;
          finish_owner_op t node i ps page ~moved_to:(Some r)
        end
        else query_readers t node i ps ~page ~contents ~dirty rest);
    send t ~src:node ~dst:r
      (A_reader_query
         { obj = i.i_obj; page; from = node; dirty; rest; version = ps.p_version })
  | [] -> offer_transfer t node i ps ~page ~contents ~dirty

(* Step 3: transfer the page to a node with free memory, chosen by the
   adaptive cycling counter. *)
and offer_transfer t node i ps ~page ~contents ~dirty =
  if not t.config.internode_paging then
    pageout_to_pager t node i ps ~page ~contents ~dirty
  else
  let n = Array.length i.i_sharers in
  let pick () =
    i.i_pageout_counter <- i.i_pageout_counter + 1;
    let c = i.i_sharers.(i.i_pageout_counter mod n) in
    if c = node then begin
      i.i_pageout_counter <- i.i_pageout_counter + 1;
      i.i_sharers.(i.i_pageout_counter mod n)
    end
    else c
  in
  let candidate = pick () in
  let try_candidate target ~fallback =
    if target = node then fallback ()
    else begin
      Hashtbl.replace i.i_answers page (fun accepted ->
          if accepted then begin
            Stats.Counters.incr t.counters "pageout.internode";
            i.i_last_acceptor <- Some target;
            Hint_cache.put i.i_dyn ~page target;
            send t ~src:node ~dst:target ~carries_page:true
              (A_transfer_page
                 { obj = i.i_obj; page; contents; dirty; version = ps.p_version });
            finish_owner_op t node i ps page ~moved_to:(Some target)
          end
          else fallback ());
      send t ~src:node ~dst:target (A_transfer_offer { obj = i.i_obj; page; from = node })
    end
  in
  let to_step4 () = pageout_to_pager t node i ps ~page ~contents ~dirty in
  match i.i_last_acceptor with
  | Some last when last <> candidate && last <> node ->
    try_candidate candidate ~fallback:(fun () ->
        try_candidate last ~fallback:to_step4)
  | _ -> try_candidate candidate ~fallback:to_step4

(* Step 4: return the page to the memory object's pager. A dirty page
   carries contents, so the pager node first reserves a receive buffer
   (pages only ever flow on behalf of their receiver). *)
and pageout_to_pager t node i ps ~page ~contents ~dirty =
  Stats.Counters.incr t.counters "pageout.to_pager";
  let pnode = Store_pager.node (pager_of i page) in
  let conclude () =
    update_static t i ~page ~hint:S_paged;
    finish_owner_op t node i ps page ~moved_to:None
  in
  if not dirty then begin
    send t ~src:node ~dst:pnode (A_to_pager { obj = i.i_obj; page; contents = None });
    conclude ()
  end
  else begin
    Hashtbl.replace i.i_answers page (fun _granted ->
        send t ~src:node ~dst:pnode ~carries_page:true
          (A_to_pager { obj = i.i_obj; page; contents = Some contents });
        conclude ());
    send t ~src:node ~dst:pnode (A_pager_offer { obj = i.i_obj; page; from = node })
  end

(* ------------------------------------------------------------------ *)
(* Message handling                                                   *)
(* ------------------------------------------------------------------ *)

(* Ship a dirty page to the object's pager from outside an owner op
   (fallback paths), honouring the buffer handshake. *)
let pager_store_handshake t node i ~page ~contents =
  Hashtbl.replace i.i_answers page (fun _granted ->
      send t ~src:node
        ~dst:(Store_pager.node (pager_of i page))
        ~carries_page:true
        (A_to_pager { obj = i.i_obj; page; contents = Some contents }));
  send t ~src:node
    ~dst:(Store_pager.node (pager_of i page))
    (A_pager_offer { obj = i.i_obj; page; from = node })

(* [static_updated]: the supplier already recorded this node as owner
   at the static manager (the [updated] flag of the reply), so sending
   a second [A_owner_update] would only repeat the same hint — the
   paper's three-message transfer relies on exactly one. *)
let install_owner t node i ~page ~readers ~version ~dirty ~static_updated =
  let ps = new_pstate ~version in
  ps.p_readers <- readers;
  Hashtbl.replace i.i_pages page ps;
  if dirty then Vm.set_frame_dirty t.vms.(node) ~obj:i.i_obj ~page;
  Hint_cache.remove i.i_dyn ~page;
  Trace.emit t.trace ~time:(now t) ~node
    (Trace.Ownership { obj = i.i_obj; page; owner = node });
  if not static_updated then update_static t i ~page ~hint:(S_at node)

(* Requests that parked here while our own fault was in flight are
   re-routed once ownership (and the frame) have landed. *)
let drain_inbound t node i page =
  match Hashtbl.find_opt i.i_waiting_inbound page with
  | None -> ()
  | Some q ->
    Hashtbl.remove i.i_waiting_inbound page;
    let vm = t.vms.(node) in
    let delay = 2. *. (Vm.config vm).Asvm_machvm.Vm_config.emmi_call_ms in
    Queue.iter
      (fun req -> Engine.schedule (Vm.engine vm) ~delay (fun () -> route_request t node req))
      q

(* A completed fault: sample its latency into the registry; when the
   fault was in crash recovery (re-driven after a dead letter or a
   rejoin), also sample the recovery-latency histogram. *)
let observe_fault_latency t i ~page ~ownership =
  (match Hashtbl.find_opt i.i_outstanding page with
  | None -> ()
  | Some (t0, _gen) ->
    Metrics.Histogram.observe
      (if ownership then t.handles.hm_fault_ownership
       else t.handles.hm_fault_read)
      (now t -. t0));
  match Hashtbl.find_opt t.recovering (i.i_node, i.i_obj, page) with
  | None -> ()
  | Some t0 ->
    Hashtbl.remove t.recovering (i.i_node, i.i_obj, page);
    Metrics.Histogram.observe t.handles.hm_recovery (now t -. t0)

let handle_reply t node
    (origin_obj, page, contents, grant, owner, readers, version, dirty, from,
     updated, gen) =
  let i = inst t node origin_obj in
  let stale =
    (* a generation-checked reply answering a superseded request: the
       re-driven fault still holds this node's receive-buffer
       reservation, so the stale answer must not consume it *)
    gen >= 0
    &&
    match Hashtbl.find_opt i.i_outstanding page with
    | Some (_, g) -> g <> gen
    | None -> true
  in
  if stale then Stats.Counters.incr t.counters "crash.stale_replies"
  else begin
  Sts.release_buffer t.sts ~node;
  observe_fault_latency t i ~page ~ownership:owner;
  Hashtbl.remove i.i_outstanding page;
  let vm = t.vms.(node) in
  let c = match contents with Some c -> c | None -> zero t in
  (* A write grant that did not come from a previous owner (pager
     supply, zero fill, pull through the shadow chain) has not been
     through the push machinery. If copies exist that the page has not
     been pushed to, grant read-only: the kernel's upgrade fault then
     re-enters the owner state machine here, which runs the push before
     write access is given (3.7.2). *)
  let effective_grant =
    if owner && Prot.equal grant Prot.Read_write && version < i.i_version then
      Prot.Read_only
    else grant
  in
  Vm.data_supply vm ~obj:origin_obj ~page ~contents:c ~lock:effective_grant
    ~mode:Emmi.Supply_normal;
  if owner then
    install_owner t node i ~page ~readers ~version ~dirty
      ~static_updated:updated
  else Hint_cache.put i.i_dyn ~page from;
  drain_inbound t node i page
  end

let reissue t node ~origin_obj ~page ~want ~upgrade =
  let req =
    {
      r_origin = node;
      r_origin_obj = origin_obj;
      r_obj = origin_obj;
      r_page = page;
      r_want = want;
      r_upgrade = upgrade;
      r_scan_home = origin_obj;
      r_hops = 0;
      r_ring = -1;
      r_kind = K_fault;
      r_origin_inc = Network.incarnation t.net node;
      r_gen = -1;
    }
  in
  route_request t node req


let rec handle t node msg =
  match msg with
  | A_request req -> route_request t node req
  | A_pull req -> handle_pull t node req
  | A_pager_lookup req ->
    let i = inst t node req.r_obj in
    pager_lookup t node i req
  | A_reply
      { origin_obj; page; contents; grant; owner; readers; version; dirty; from;
        updated; gen }
    ->
    handle_reply t node
      ( origin_obj, page, contents, grant, owner, readers, version, dirty, from,
        updated, gen )
  | A_grant { obj; page; version; from; gen } ->
    let i = inst t node obj in
    let stale =
      gen >= 0
      &&
      match Hashtbl.find_opt i.i_outstanding page with
      | Some (_, g) -> g <> gen
      | None -> true
    in
    if stale then Stats.Counters.incr t.counters "crash.stale_replies"
    else begin
      Sts.release_buffer t.sts ~node;
      observe_fault_latency t i ~page ~ownership:true;
      Hashtbl.remove i.i_outstanding page;
      if Vm.is_resident t.vms.(node) ~obj ~page then begin
        Vm.lock_request t.vms.(node) ~obj ~page
          ~op:{ Emmi.max_access = Prot.Read_write; clean = false; mode = Emmi.Lock_plain }
          ~reply:(fun _ -> ());
        (* the granting owner already updated the static manager *)
        install_owner t node i ~page ~readers:[] ~version ~dirty:false
          ~static_updated:true;
        ignore from;
        drain_inbound t node i page
      end
      else begin
        (* the read copy vanished while the grant was in flight *)
        let rec acquire () =
          if Network.is_down t.net node then ()
          else if Sts.reserve_buffer t.sts ~node then
            reissue t node ~origin_obj:obj ~page ~want:Prot.Read_write
              ~upgrade:false
          else Engine.schedule (Vm.engine t.vms.(node)) ~delay:0.5 acquire
        in
        acquire ()
      end
    end
  | A_invalidate { obj; page; new_owner; from } ->
    (* transition 8.  The ack waits on an async kernel call: record it
       as owed so a crash inside the window still acknowledges (the
       crashed node holds no copy either way). *)
    let i = inst t node obj in
    let owed = (from, A_inval_ack { obj; page }) in
    i.i_owed_acks <- owed :: i.i_owed_acks;
    let inc = Network.incarnation t.net node in
    Vm.lock_request t.vms.(node) ~obj ~page
      ~op:{ Emmi.max_access = Prot.No_access; clean = false; mode = Emmi.Lock_plain }
      ~reply:(fun _ ->
        if
          Network.incarnation t.net node = inc
          && not (Network.is_down t.net node)
        then begin
          i.i_owed_acks <- List.filter (fun o -> o != owed) i.i_owed_acks;
          Hint_cache.put i.i_dyn ~page new_owner;
          send t ~src:node ~dst:from (A_inval_ack { obj; page })
        end)
  | A_inval_ack { obj; page } -> (
    let i = inst t node obj in
    match Hashtbl.find_opt i.i_pages page with
    | Some ps ->
      ps.p_acks <- ps.p_acks - 1;
      if ps.p_acks <= 0 then begin
        let k = ps.p_ack_k in
        ps.p_ack_k <- ignore;
        k ()
      end
    | None -> ())
  | A_owner_update { obj; page; hint } ->
    let i = inst t node obj in
    Hint_cache.put i.i_static ~page hint;
    Bytes.set i.i_seen page '\001'
  | A_reader_query { obj; page; from; dirty; rest; version } ->
    let i = inst t node obj in
    let vm = t.vms.(node) in
    (* Decline the handoff while this node's own fault for the page is
       in flight.  Accepting would strand that fault: the node becomes
       owner without the fault machinery noticing, and if the page is
       evicted again before the wandering request finds its way home,
       the node parks foreign requests (on [i_outstanding]) it can no
       longer serve — two such nodes park each other's requests and the
       cluster deadlocks.  Declining is always legal in step 2; the
       fault then completes through the ordinary reply path.  The
       evicting owner drops a decliner from the reader list, so a
       resident decliner must also discard its read copy — otherwise it
       would hold a copy invalidations can no longer reach. *)
    if
      Vm.is_resident vm ~obj ~page
      && not (Hashtbl.mem i.i_outstanding page)
    then begin
      (* accept ownership without a page transfer (step 2) *)
      if dirty then Vm.set_frame_dirty vm ~obj ~page;
      let ps = new_pstate ~version in
      ps.p_readers <- List.filter (fun r -> r <> node) rest;
      Hashtbl.replace i.i_pages page ps;
      Hint_cache.remove i.i_dyn ~page;
      update_static t i ~page ~hint:(S_at node);
      send t ~src:node ~dst:from (A_reader_answer { obj; page; from = node; accepted = true })
    end
    else begin
      if Vm.is_resident vm ~obj ~page then
        Vm.lock_request vm ~obj ~page
          ~op:
            {
              Emmi.max_access = Prot.No_access;
              clean = false;
              mode = Emmi.Lock_plain;
            }
          ~reply:(fun _ -> ());
      send t ~src:node ~dst:from
        (A_reader_answer { obj; page; from = node; accepted = false })
    end
  | A_reader_answer { obj; page; from = _; accepted } -> (
    let i = inst t node obj in
    match Hashtbl.find_opt i.i_answers page with
    | Some k ->
      Hashtbl.remove i.i_answers page;
      k accepted
    | None -> ())
  | A_transfer_offer { obj; page; from } ->
    (* "a node with free memory" (§3.6 step 2) means free above the
       target's own pageout high watermark: accepting below it would
       refill exactly the headroom that node's daemon just created,
       and evicted pages would circulate between full nodes forever
       instead of converging on the pager.  With the daemon disabled
       (watermarks 0) this is the plain free_pages > 0 check. *)
    let vm = t.vms.(node) in
    let accepted =
      Vm.free_pages vm
      > (Vm.config vm).Asvm_machvm.Vm_config.pageout_high_pages
      && Sts.reserve_buffer t.sts ~node
    in
    send t ~src:node ~dst:from (A_transfer_answer { obj; page; from = node; accepted })
  | A_transfer_answer { obj; page; from = _; accepted } -> (
    let i = inst t node obj in
    match Hashtbl.find_opt i.i_answers page with
    | Some k ->
      Hashtbl.remove i.i_answers page;
      k accepted
    | None -> ())
  | A_transfer_page { obj; page; contents; dirty; version } ->
    let i = inst t node obj in
    Sts.release_buffer t.sts ~node;
    let vm = t.vms.(node) in
    if
      Vm.try_accept_page vm ~obj ~page ~contents ~dirty ~access:Prot.Read_only
    then begin
      let ps = new_pstate ~version in
      Hashtbl.replace i.i_pages page ps;
      Hint_cache.remove i.i_dyn ~page;
      update_static t i ~page ~hint:(S_at node)
    end
    else begin
      (* memory vanished since the offer: fall through to the pager *)
      if dirty then pager_store_handshake t node i ~page ~contents
      else
        send t ~src:node
          ~dst:(Store_pager.node (pager_of i page))
          (A_to_pager { obj; page; contents = None });
      update_static t i ~page ~hint:S_paged
    end
  | A_pager_offer { obj; page; from } ->
    (* the grant may wait in a buffer retry loop: owe it, so a crash
       mid-loop still answers — the contents then dead-letter into the
       store, which survives the crash *)
    let i = inst t node obj in
    let owed = (from, A_pager_grant { obj; page }) in
    i.i_owed_acks <- owed :: i.i_owed_acks;
    let rec acquire () =
      if Network.is_down t.net node then ()
      else if Sts.reserve_buffer t.sts ~node then begin
        i.i_owed_acks <- List.filter (fun o -> o != owed) i.i_owed_acks;
        Hashtbl.replace i.i_pageouts page from;
        send t ~src:node ~dst:from (A_pager_grant { obj; page })
      end
      else Engine.schedule (Vm.engine t.vms.(node)) ~delay:1.0 acquire
    in
    acquire ()
  | A_pager_grant { obj; page } -> (
    let i = inst t node obj in
    match Hashtbl.find_opt i.i_answers page with
    | Some k ->
      Hashtbl.remove i.i_answers page;
      k true
    | None -> ())
  | A_to_pager { obj; page; contents } -> (
    let i = inst t node obj in
    Hashtbl.remove i.i_granted page;
    Hashtbl.remove i.i_pageouts page;
    match contents with
    | Some c ->
      Sts.release_buffer t.sts ~node;
      Store_pager.store_async (pager_of i page) ~obj ~page ~contents:c
    | None ->
      if not (Store_pager.has (pager_of i page) ~obj ~page) then
        (* a clean page that was never stored reverts to fresh *)
        update_static t i ~page ~hint:S_fresh)
  | A_copy_made { obj; peer; shared; new_version; from } ->
    let i = inst t node obj in
    i.i_version <- new_version;
    (match shared with
    | Some copy -> i.i_copies <- (copy, peer) :: i.i_copies
    | None -> ());
    Vm.lock_object_readonly t.vms.(node) obj;
    send t ~src:node ~dst:from (A_copy_ack { obj })
  | A_copy_shared { obj; copy; peer; from } ->
    let i = inst t node obj in
    if not (List.mem_assoc copy i.i_copies) then
      i.i_copies <- (copy, peer) :: i.i_copies;
    send t ~src:node ~dst:from (A_copy_ack { obj })
  | A_copy_ack { obj } ->
    let i = inst t node obj in
    i.i_copy_acks <- i.i_copy_acks - 1;
    if i.i_copy_acks <= 0 then begin
      let k = i.i_copy_k in
      i.i_copy_k <- ignore;
      k ()
    end
  | A_push_lock { obj; page; from } ->
    let vm = t.vms.(node) in
    let i = inst t node obj in
    let owed =
      (from, A_push_lock_done { obj; page; from = node; needs_contents = false })
    in
    i.i_owed_acks <- owed :: i.i_owed_acks;
    let inc = Network.incarnation t.net node in
    Vm.lock_request vm ~obj ~page
      ~op:{ Emmi.max_access = Prot.Read_only; clean = false; mode = Emmi.Lock_push_first }
      ~reply:(fun result ->
        if
          Network.incarnation t.net node = inc
          && not (Network.is_down t.net node)
        then begin
          i.i_owed_acks <- List.filter (fun o -> o != owed) i.i_owed_acks;
          let needs_contents =
            match result with
            | Emmi.Lock_not_present -> Sts.reserve_buffer t.sts ~node
            | Emmi.Lock_done _ -> false
          in
          send t ~src:node ~dst:from
            (A_push_lock_done { obj; page; from = node; needs_contents })
        end)
  | A_push_lock_done { obj; page; from; needs_contents } -> (
    let i = inst t node obj in
    match Hashtbl.find_opt i.i_push_ops page with
    | Some op ->
      if needs_contents then op.o_need_nodes <- from :: op.o_need_nodes;
      op.o_outstanding <- op.o_outstanding - 1;
      if op.o_outstanding <= 0 then begin
        Hashtbl.remove i.i_push_ops page;
        op.o_k ()
      end
    | None -> ())
  | A_push_contents { obj; page; contents; from } ->
    Sts.release_buffer t.sts ~node;
    Vm.data_supply t.vms.(node) ~obj ~page ~contents ~lock:Prot.Read_only
      ~mode:Emmi.Supply_push;
    send t ~src:node ~dst:from (A_push_ack { home = obj; page })
  | A_push_ack { home; page } ->
    push_op_done (inst t node home) ~page
  | A_push_prepare { copy; home; page; from } ->
    (* reserve a buffer for the incoming pushed page of a shared copy;
       owe the pusher an ack in case this node crashes mid-retry *)
    let i = inst t node copy in
    let owed = (from, A_push_ack { home; page }) in
    i.i_owed_acks <- owed :: i.i_owed_acks;
    let rec acquire () =
      if Network.is_down t.net node then ()
      else if Sts.reserve_buffer t.sts ~node then begin
        i.i_owed_acks <- List.filter (fun o -> o != owed) i.i_owed_acks;
        send t ~src:node ~dst:from (A_push_ready { copy; home; page })
      end
      else Engine.schedule (Vm.engine t.vms.(node)) ~delay:1.0 acquire
    in
    acquire ()
  | A_push_ready { copy; home; page } -> (
    let i = inst t node home in
    match Hashtbl.find_opt i.i_push_ops page with
    | Some op -> (
      match op.o_contents with
      | Some contents ->
        let peer =
          match List.assoc_opt copy i.i_copies with Some p -> p | None -> node
        in
        send t ~src:node ~dst:peer ~carries_page:true
          (A_push_to_copy { copy; home; page; contents; from = node })
      | None -> push_op_done i ~page)
    | None -> ())
  | A_push_to_copy { copy; home; page; contents; from } ->
    let i = inst t node copy in
    Sts.release_buffer t.sts ~node;
    if
      (* read-only and version 0: the frozen page has never been pushed
         onward, so the copy's first write must fault back into the
         owner machine and run its own push (nested copy chains) *)
      Vm.try_accept_page t.vms.(node) ~obj:copy ~page ~contents ~dirty:true
        ~access:Prot.Read_only
    then begin
      let ps = new_pstate ~version:0 in
      Hashtbl.replace i.i_pages page ps;
      update_static t i ~page ~hint:(S_at node)
    end
    else
      (* no memory at the peer: the frozen page goes to the copy's pager *)
      pager_store_handshake t node i ~page ~contents;
    send t ~src:node ~dst:from (A_push_ack { home; page })
  | A_scan_answer { home; page; copy; found } -> (
    let i = inst t node home in
    match Hashtbl.find_opt i.i_push_ops page with
    | Some op ->
      if not found then begin
        let peer =
          match List.assoc_opt copy i.i_copies with Some p -> p | None -> node
        in
        op.o_need_copies <- (copy, peer) :: op.o_need_copies
      end;
      op.o_outstanding <- op.o_outstanding - 1;
      if op.o_outstanding <= 0 then begin
        Hashtbl.remove i.i_push_ops page;
        op.o_k ()
      end
    | None -> ())
  | A_retry { origin_obj; page; want; upgrade } ->
    Stats.Counters.incr t.counters "copy.retries";
    reissue t node ~origin_obj ~page ~want ~upgrade

and handle_pull t node req =
  (* Executed on the peer node of a copy object: walk the local shadow
     chain with the extended EMMI pull call (figure 9). *)
  let vm = t.vms.(node) in
  Vm.pull_request vm ~obj:req.r_obj ~page:req.r_page ~reply:(fun result ->
      match result with
      | Emmi.Pull_contents contents ->
        send t ~src:node ~dst:req.r_origin ~carries_page:true
          (A_reply
             {
               origin_obj = req.r_origin_obj;
               page = req.r_page;
               contents = Some contents;
               grant = req.r_want;
               owner = true;
               readers = [];
               version = 0;
               dirty = false;
               from = node;
               updated = false;
               gen = req.r_gen;
             })
      | Emmi.Pull_zero_fill ->
        send t ~src:node ~dst:req.r_origin
          (A_reply
             {
               origin_obj = req.r_origin_obj;
               page = req.r_page;
               contents = None;
               grant = req.r_want;
               owner = true;
               readers = [];
               version = 0;
               dirty = false;
               from = node;
               updated = false;
               gen = req.r_gen;
             })
      | Emmi.Pull_ask_shadow shadow_obj ->
        (* continue the search in the shadow object's SVM space *)
        req.r_obj <- shadow_obj;
        req.r_ring <- -1;
        let req = { req with r_kind = K_pull } in
        route_request t node req)

(* ------------------------------------------------------------------ *)
(* Node crash and rejoin (see docs/AVAILABILITY.md)                   *)
(* ------------------------------------------------------------------ *)

(* Apply a hint at the page's static manager without a message.  Crash
   recovery runs at simulator level — a send from the crashed node
   would silently vanish — standing in for the recovery coordinator a
   real implementation would run on a surviving node.

   Never write into a manager that is itself down: the hint would
   survive in its rebuilt table until rejoin, but claims made meanwhile
   bypass the dead manager (requests sweep to the pager instead), so
   nothing can correct it — a stale [S_fresh] resurfacing at rejoin
   would zero-grant a second owner.  The rebuilt table's conservative
   state (every page marked ever-owned, forcing a sweep whose endpoint
   is the pager's serializing grant table) is the safe answer. *)
let set_static_hint t i ~page ~hint =
  let sm = static_mgr i page in
  if not (Network.is_down t.net sm) then
    match Hashtbl.find_opt t.insts (sm, i.i_obj) with
    | None -> ()
    | Some mi ->
      Hint_cache.put mi.i_static ~page hint;
      Bytes.set mi.i_seen page '\001'

(* Forget that the pager last granted [page] to a node whose copy died
   with it, so the next cold fault is not chased into the crash site. *)
let purge_granted t i ~page =
  let pnode = Store_pager.node (pager_of i page) in
  match Hashtbl.find_opt t.insts (pnode, i.i_obj) with
  | Some pi -> Hashtbl.remove pi.i_granted page
  | None -> ()

(* Restart a fault whose request or answer was lost to a crash.  The
   re-drive bumps the origin's fault generation so any answer to the
   superseded request is dropped instead of double-consuming the
   origin's receive-buffer reservation; generation [-1] requests (which
   never race their own re-drive) restart as they were.  A fault whose
   outstanding entry is gone or superseded has already been answered —
   nothing to recover. *)
let redrive_fault t req =
  let origin = req.r_origin in
  if
    Network.is_down t.net origin
    || Network.incarnation t.net origin <> req.r_origin_inc
  then ()
  else
    match Hashtbl.find_opt t.insts (origin, req.r_origin_obj) with
    | None -> ()
    | Some oi -> (
      let gen =
        if req.r_gen < 0 then Some (-1)
        else
          match Hashtbl.find_opt oi.i_outstanding req.r_page with
          | Some (t0, g) when g = req.r_gen ->
            let g' = oi.i_next_gen in
            oi.i_next_gen <- g' + 1;
            Hashtbl.replace oi.i_outstanding req.r_page (t0, g');
            Some g'
          | Some _ | None -> None
      in
      match gen with
      | None -> ()
      | Some gen ->
        Stats.Counters.incr t.counters "crash.redrives";
        let key = (origin, req.r_origin_obj, req.r_page) in
        if not (Hashtbl.mem t.recovering key) then
          Hashtbl.replace t.recovering key (now t);
        route_request t origin
          {
            req with
            r_obj = req.r_origin_obj;
            r_hops = 0;
            r_ring = -1;
            r_kind = K_fault;
            r_gen = gen;
          })

(* Hand a synthesized message to a node as if it had been delivered. *)
let deliver_if_alive t node msg =
  if not (Network.is_down t.net node) then handle t node msg

(* The transports' dead-letter hook: every message that could not be
   delivered because an endpoint crashed lands here, as a fresh engine
   event.  When only the sender died the content is still valid — the
   staleness guards protect against resurrecting a dead fault — so it
   is applied at the receiver verbatim.  When the receiver died, each
   message kind gets the conservative synthesis that keeps the
   survivors' protocol machines moving (see docs/AVAILABILITY.md for
   the case-by-case rationale). *)
let salvage t ~src ~dst ~src_dead ~dst_dead msg =
  if not dst_dead then begin
    Stats.Counters.incr t.counters "crash.salvaged";
    match msg with
    | A_reply { owner = false; origin_obj; page; grant; gen; _ } when src_dead
      ->
      (* A read grant from an owner that died after sending it.  The
         crash re-elected a new owner whose reader list was rebuilt
         from the dead owner's registrations filtered to *resident*
         survivors — the origin, whose copy was still in flight, is not
         on it.  Installing the copy would leave an unregistered reader
         that later invalidation rounds cannot see, forking the page.
         Drop the contents and redrive the fault: the fresh request
         reaches the re-elected owner, which registers the origin
         properly. *)
      redrive_fault t
        {
          r_origin = dst;
          r_origin_obj = origin_obj;
          r_obj = origin_obj;
          r_page = page;
          r_want = grant;
          r_upgrade = false;
          r_scan_home = origin_obj;
          r_hops = 0;
          r_ring = -1;
          r_kind = K_fault;
          r_origin_inc = Network.incarnation t.net dst;
          r_gen = gen;
        }
    | msg -> handle t dst msg
  end
  else
    let inst_opt obj = Hashtbl.find_opt t.insts (dst, obj) in
    match msg with
    | A_request req | A_pager_lookup req | A_pull req ->
      if req.r_kind = K_push_scan then
        (* [found = false] is the safe answer: it costs at most one
           redundant push, where [true] could skip a needed one *)
        deliver_if_alive t req.r_origin
          (A_scan_answer
             {
               home = req.r_scan_home;
               page = req.r_page;
               copy = req.r_origin_obj;
               found = false;
             })
      else redrive_fault t req
    | A_reply { origin_obj; page; contents; owner; _ } -> (
      match inst_opt origin_obj with
      | None -> ()
      | Some i ->
        if owner then begin
          (match contents with
          | Some c ->
            (* ownership plus data died in flight to the crashed
               origin: write the page back to its pager — the store
               survives the crash (stable storage) *)
            Stats.Counters.incr t.counters "crash.rescued_pages";
            Store_pager.remember (pager_of i page) ~obj:origin_obj ~page
              ~contents:c;
            set_static_hint t i ~page ~hint:S_paged
          | None ->
            set_static_hint t i ~page
              ~hint:
                (if Store_pager.has (pager_of i page) ~obj:origin_obj ~page
                 then S_paged
                 else S_fresh));
          purge_granted t i ~page
        end)
    | A_grant { obj; page; _ } -> (
      (* upgrade grant to a crashed reader: its read copy died with it;
         fall back to the pager image when one exists — otherwise the
         page reverts to fresh (the documented loss window) *)
      match inst_opt obj with
      | None -> ()
      | Some i ->
        Stats.Counters.incr t.counters "crash.lost_grants";
        set_static_hint t i ~page
          ~hint:
            (if Store_pager.has (pager_of i page) ~obj ~page then S_paged
             else S_fresh);
        purge_granted t i ~page)
    | A_invalidate { obj; page; from; _ } ->
      (* a crashed reader holds no copy: acknowledge on its behalf *)
      deliver_if_alive t from (A_inval_ack { obj; page })
    | A_reader_query { obj; page; from; _ } ->
      deliver_if_alive t from
        (A_reader_answer { obj; page; from = dst; accepted = false })
    | A_transfer_offer { obj; page; from } ->
      deliver_if_alive t from
        (A_transfer_answer { obj; page; from = dst; accepted = false })
    | A_transfer_answer { accepted; _ } ->
      (* the offering owner died; the acceptor's reservation would leak *)
      if accepted && not (Network.is_down t.net src) then
        Sts.release_buffer t.sts ~node:src
    | A_transfer_page { obj; page; contents; _ } -> (
      match inst_opt obj with
      | None -> ()
      | Some i ->
        Stats.Counters.incr t.counters "crash.rescued_pages";
        Store_pager.remember (pager_of i page) ~obj ~page ~contents;
        set_static_hint t i ~page ~hint:S_paged;
        purge_granted t i ~page)
    | A_pager_offer { obj; page; from } ->
      (* the pager's node died; accept on its behalf — the contents
         then dead-letter into the store, which survives the crash *)
      deliver_if_alive t from (A_pager_grant { obj; page })
    | A_pager_grant { obj; page } ->
      (* the offering owner died; the pager-side reservation would leak,
         and lookups would wait forever on the pageout it announced *)
      if not (Network.is_down t.net src) then begin
        Sts.release_buffer t.sts ~node:src;
        match Hashtbl.find_opt t.insts (src, obj) with
        | Some pi -> Hashtbl.remove pi.i_pageouts page
        | None -> ()
      end
    | A_to_pager { obj; page; contents } -> (
      match inst_opt obj with
      | None -> ()
      | Some i -> (
        match contents with
        | Some c ->
          Stats.Counters.incr t.counters "crash.rescued_pages";
          Store_pager.remember (pager_of i page) ~obj ~page ~contents:c
        | None ->
          if not (Store_pager.has (pager_of i page) ~obj ~page) then
            set_static_hint t i ~page ~hint:S_fresh))
    | A_copy_made { obj; from; _ } | A_copy_shared { obj; from; _ } ->
      deliver_if_alive t from (A_copy_ack { obj })
    | A_push_lock { obj; page; from } ->
      deliver_if_alive t from
        (A_push_lock_done { obj; page; from = dst; needs_contents = false })
    | A_push_contents { obj; page; from; _ } ->
      deliver_if_alive t from (A_push_ack { home = obj; page })
    | A_push_prepare { home; page; from; _ } ->
      deliver_if_alive t from (A_push_ack { home; page })
    | A_push_ready _ ->
      (* the pushing owner died; the copy peer's reservation would leak *)
      if not (Network.is_down t.net src) then
        Sts.release_buffer t.sts ~node:src
    | A_push_to_copy { copy; home; page; contents; from } ->
      (match inst_opt copy with
      | None -> ()
      | Some i ->
        Stats.Counters.incr t.counters "crash.rescued_pages";
        Store_pager.remember (pager_of i page) ~obj:copy ~page ~contents;
        set_static_hint t i ~page ~hint:S_paged);
      deliver_if_alive t from (A_push_ack { home; page })
    | A_inval_ack _ | A_owner_update _ | A_reader_answer _
    | A_push_lock_done _ | A_push_ack _ | A_scan_answer _ | A_retry _
    | A_copy_ack _ ->
      (* the state these answer died with the node *)
      ()

(* ------------------------------------------------------------------ *)
(* Construction / registration                                        *)
(* ------------------------------------------------------------------ *)

let create ~net ~(config : config) ~vms ~words_per_page ?metrics ?trace () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.Registry.create ()
  in
  let sts = Sts.create ~metrics ?trace net config.sts in
  let t =
    {
      sts;
      net;
      vms;
      wpp = words_per_page;
      config;
      insts = Hashtbl.create 64;
      counters = Stats.Counters.create ();
      metrics;
      handles = make_handles metrics;
      trace;
      recovering = Hashtbl.create 16;
    }
  in
  Array.iteri (fun node _ -> Sts.register sts ~node (fun msg -> handle t node msg)) vms;
  Sts.set_on_dead_letter sts
    (Some
       (fun ~src ~dst ~src_dead ~dst_dead msg ->
         salvage t ~src ~dst ~src_dead ~dst_dead msg));
  t

let make_inst t ~node ~obj ~size_pages ~sharers ~pagers ~fwd ~shadow =
  {
    i_node = node;
    i_obj = obj;
    i_size = size_pages;
    i_sharers = Array.of_list sharers;
    i_fwd = fwd;
    i_pagers = pagers;
    i_shadow = shadow;
    i_version = 0;
    i_copies = [];
    i_pages = Hashtbl.create 32;
    i_dyn = Hint_cache.create ~capacity:t.config.dynamic_cache_pages;
    i_static = Hint_cache.create ~capacity:t.config.static_cache_pages;
    i_seen = Bytes.make size_pages '\000';
    i_pageout_counter = 0;
    i_last_acceptor = None;
    i_push_ops = Hashtbl.create 8;
    i_answers = Hashtbl.create 8;
    i_outstanding = Hashtbl.create 8;
    i_next_gen = 0;
    i_waiting_inbound = Hashtbl.create 8;
    i_owed_acks = [];
    i_granted = Hashtbl.create 8;
    i_pageouts = Hashtbl.create 8;
    i_copy_acks = 0;
    i_copy_k = ignore;
  }

let register_object t ~obj ~size_pages ~sharers ~pagers ?forwarding ?shadow ()
    =
  (match pagers with
  | [] -> invalid_arg "Asvm.register_object: at least one pager required"
  | _ -> ());
  let pagers = Array.of_list pagers in
  let fwd = Option.value forwarding ~default:t.config.forwarding in
  let pager_nodes =
    Array.to_list (Array.map Store_pager.node pagers)
    |> List.filter (fun n -> not (List.mem n sharers))
    |> List.sort_uniq compare
  in
  let nodes = sharers @ pager_nodes in
  List.iter
    (fun node ->
      Hashtbl.replace t.insts (node, obj)
        (make_inst t ~node ~obj ~size_pages ~sharers ~pagers ~fwd ~shadow))
    nodes;
  (* EMMI manager proxy for each sharer's kernel *)
  List.iter
    (fun node ->
      let request ~page ~desired ~upgrade =
        if Network.is_down t.net node then ()
        else
        let fire gen =
          let req =
            {
              r_origin = node;
              r_origin_obj = obj;
              r_obj = obj;
              r_page = page;
              r_want = desired;
              r_upgrade = upgrade;
              r_scan_home = obj;
              r_hops = 0;
              r_ring = -1;
              r_kind = K_fault;
              r_origin_inc = Network.incarnation t.net node;
              r_gen = gen;
            }
          in
          route_request t node req
        in
        let i = inst t node obj in
        match Hashtbl.find_opt i.i_pages page with
        | Some ps when upgrade ->
          (* self-owned upgrade: run the owner machine locally. The
             reservation covers the case where the request queues behind
             an in-flight grant, ownership leaves, and the request is
             forwarded off-node — its answer then carries a page. *)
          let req =
            {
              r_origin = node;
              r_origin_obj = obj;
              r_obj = obj;
              r_page = page;
              r_want = desired;
              r_upgrade = true;
              r_scan_home = obj;
              r_hops = 0;
              r_ring = -1;
              r_kind = K_fault;
              r_origin_inc = Network.incarnation t.net node;
              r_gen = -1;
            }
          in
          let rec acquire () =
            if Network.is_down t.net node then ()
            else if Sts.reserve_buffer t.sts ~node then
              owner_handle t node i ps req
            else Engine.schedule (Vm.engine t.vms.(node)) ~delay:0.5 acquire
          in
          acquire ()
        | _ ->
          if Hashtbl.mem i.i_outstanding page then
            (* one request per page at a time: a second kernel request
               (e.g. a write upgrade behind a read fault) is answered by
               the kernel's own retry after the first reply lands — a
               duplicate in-flight request could overwrite owner state
               built meanwhile *)
            ()
          else begin
            (* a page answer needs a preallocated receive buffer here;
               requests wait when the pool is exhausted (flow control) *)
            let gen = i.i_next_gen in
            i.i_next_gen <- gen + 1;
            Hashtbl.replace i.i_outstanding page
              (Engine.now (Vm.engine t.vms.(node)), gen);
            let rec acquire () =
              if Network.is_down t.net node then ()
              else if Sts.reserve_buffer t.sts ~node then fire gen
              else Engine.schedule (Vm.engine t.vms.(node)) ~delay:0.5 acquire
            in
            acquire ()
          end
      in
      let manager =
        {
          Emmi.m_data_request =
            (fun ~page ~desired -> request ~page ~desired ~upgrade:false);
          m_data_unlock =
            (fun ~page ~desired -> request ~page ~desired ~upgrade:true);
          m_data_return =
            (fun ~page ~contents ~dirty ->
              if Network.is_down t.net node then ()
              else
                let i = inst t node obj in
                match Hashtbl.find_opt i.i_pages page with
                | None -> () (* not the owner: simply discard (step 1) *)
                | Some ps -> handle_eviction t node i ps ~page ~contents ~dirty);
        }
      in
      Vm.set_manager t.vms.(node) obj (Some manager))
    sharers

(* ------------------------------------------------------------------ *)
(* Crash entry points (phases 2-4 of docs/AVAILABILITY.md)            *)
(* ------------------------------------------------------------------ *)

(* Give a page the crashed node owned a new owner among its surviving
   readers; with no surviving in-memory copy, fall back to the pager
   image — or, when the pager never saw the page, back to fresh (the
   documented data-loss case, counted in [crash.lost_pages]). *)
let reelect t ~victim i ~page ~ps =
  let obj = i.i_obj in
  let candidates =
    List.filter
      (fun r ->
        r <> victim
        && (not (Network.is_down t.net r))
        && Vm.is_resident t.vms.(r) ~obj ~page)
      ps.p_readers
  in
  match candidates with
  | owner :: rest ->
    Stats.Counters.incr t.counters "crash.reelections";
    let oi = inst t owner obj in
    let nps = new_pstate ~version:ps.p_version in
    nps.p_readers <- rest;
    Hashtbl.replace oi.i_pages page nps;
    Hint_cache.remove oi.i_dyn ~page;
    (* the survivor's copy may now be the only one anywhere: make sure
       an eviction writes it back instead of discarding it as clean *)
    Vm.set_frame_dirty t.vms.(owner) ~obj ~page;
    Trace.emit t.trace ~time:(now t) ~node:owner
      (Trace.Ownership { obj; page; owner });
    set_static_hint t oi ~page ~hint:(S_at owner);
    purge_granted t i ~page
  | [] ->
    let hint =
      if Store_pager.has (pager_of i page) ~obj ~page then S_paged
      else begin
        Stats.Counters.incr t.counters "crash.lost_pages";
        S_fresh
      end
    in
    set_static_hint t i ~page ~hint;
    purge_granted t i ~page

let crash_node t ~node =
  Sts.crash_node t.sts ~node;
  (* snapshot the victim's protocol instances *)
  let victims =
    Hashtbl.fold
      (fun (n, obj) i acc -> if n = node then (obj, i) :: acc else acc)
      t.insts []
  in
  (* requests other nodes had parked at the victim — waiting on its
     in-flight fault, queued at its owner machine, or actively being
     served — restart from their origins; owed answers are synthesized
     so no survivor waits on the dead node *)
  let parked = ref [] and owed = ref [] in
  let park req = parked := req :: !parked in
  List.iter
    (fun (_obj, i) ->
      Hashtbl.iter (fun _page q -> Queue.iter park q) i.i_waiting_inbound;
      Hashtbl.clear i.i_waiting_inbound;
      Hashtbl.iter
        (fun _page ps ->
          (match ps.p_active with Some req -> park req | None -> ());
          Queue.iter park ps.p_queue;
          Queue.clear ps.p_queue;
          Queue.iter park ps.p_retries;
          Queue.clear ps.p_retries)
        i.i_pages;
      owed := i.i_owed_acks @ !owed;
      i.i_owed_acks <- [])
    victims;
  (* the victim restarts with empty protocol state.  Its static-manager
     role restarts conservative: every page marked ever-owned, so a
     lookup sweeps the ring instead of trusting the zeroed table — a
     wrongly-granted "fresh" zero page would fork the object's
     contents.  Version and copy configuration carry over (durable
     object-registration idealization). *)
  List.iter
    (fun (obj, i) ->
      let fresh =
        make_inst t ~node ~obj ~size_pages:i.i_size
          ~sharers:(Array.to_list i.i_sharers)
          ~pagers:i.i_pagers ~fwd:i.i_fwd ~shadow:i.i_shadow
      in
      Bytes.fill fresh.i_seen 0 i.i_size '\001';
      fresh.i_version <- i.i_version;
      fresh.i_copies <- i.i_copies;
      Hashtbl.replace t.insts (node, obj) fresh)
    victims;
  (* purge the victim from every survivor's reader lists and grant
     tables: hints are re-verified at use, but reader lists drive
     invalidation rounds that must not wait on a dead node *)
  Hashtbl.iter
    (fun (n, _obj) i ->
      if n <> node then begin
        Hashtbl.iter
          (fun _page ps ->
            ps.p_readers <- List.filter (fun r -> r <> node) ps.p_readers)
          i.i_pages;
        let stale =
          Hashtbl.fold
            (fun page holder acc -> if holder = node then page :: acc else acc)
            i.i_granted []
        in
        List.iter (fun page -> Hashtbl.remove i.i_granted page) stale;
        (* pending dirty pageouts from the victim will never arrive
           (or dead-letter straight into the store): stop holding
           lookups for them *)
        let stale_po =
          Hashtbl.fold
            (fun page evictor acc ->
              if evictor = node then page :: acc else acc)
            i.i_pageouts []
        in
        List.iter (fun page -> Hashtbl.remove i.i_pageouts page) stale_po
      end)
    t.insts;
  (* re-elect an owner for every page the victim owned *)
  List.iter
    (fun (_obj, i) ->
      Hashtbl.iter (fun page ps -> reelect t ~victim:node i ~page ~ps) i.i_pages)
    victims;
  (* restart parked requests and deliver owed answers as fresh events *)
  let eng = Network.engine t.net in
  List.iter
    (fun req ->
      Engine.schedule eng ~delay:0. (fun () -> redrive_fault t req))
    !parked;
  List.iter
    (fun (dst, msg) ->
      Engine.schedule eng ~delay:0. (fun () -> deliver_if_alive t dst msg))
    !owed

let rejoin_node t ~node =
  (* mark the node's surviving kernel faults as recovering, then
     restart them: each re-faults through a fresh manager request *)
  List.iter
    (fun (obj, page) ->
      if
        Hashtbl.mem t.insts (node, obj)
        && not (Hashtbl.mem t.recovering (node, obj, page))
      then Hashtbl.replace t.recovering (node, obj, page) (now t))
    (Vm.pending_pages t.vms.(node));
  Vm.redrive_pending t.vms.(node)

let object_copied t ~src ~peer ~shared k =
  let i = inst t peer src in
  let new_version = i.i_version + 1 in
  let sharers = Array.to_list i.i_sharers in
  i.i_copy_acks <- List.length sharers;
  i.i_copy_k <- k;
  List.iter
    (fun node ->
      send t ~src:peer ~dst:node
        (A_copy_made { obj = src; peer; shared; new_version; from = peer }))
    sharers

(* ------------------------------------------------------------------ *)
(* Range locking (paper section 6, future work): pin pages this node
   owns so remote requests queue until release — the primitive a
   striped Unix filesystem needs for atomic read/write. *)
(* ------------------------------------------------------------------ *)

let hold_page t ~node ~obj ~page =
  let i = inst t node obj in
  match Hashtbl.find_opt i.i_pages page with
  | Some ps when not ps.p_busy ->
    ps.p_busy <- true;
    Vm.wire t.vms.(node) ~obj ~page;
    true
  | Some _ | None -> false

let release_page t ~node ~obj ~page =
  let i = inst t node obj in
  match Hashtbl.find_opt i.i_pages page with
  | Some ps when ps.p_busy ->
    (* stay owner; the owner-op epilogue drains queued requests *)
    finish_owner_op t node i ps page ~moved_to:(Some node)
  | Some _ | None -> ()

let copy_promoted t ~src ~copy ~peer k =
  let i = inst t peer src in
  let sharers = Array.to_list i.i_sharers in
  i.i_copy_acks <- List.length sharers;
  i.i_copy_k <- k;
  List.iter
    (fun node ->
      send t ~src:peer ~dst:node
        (A_copy_shared { obj = src; copy; peer; from = peer }))
    sharers

let claim_residents t ~node ~obj =
  let i = inst t node obj in
  match Vm.find_object t.vms.(node) obj with
  | None -> ()
  | Some o ->
    List.iter
      (fun page ->
        if not (Hashtbl.mem i.i_pages page) then begin
          Hashtbl.replace i.i_pages page (new_pstate ~version:i.i_version);
          update_static t i ~page ~hint:(S_at node)
        end)
      (Asvm_machvm.Vm_object.resident_pages o)

let owner_entries t ~node ~obj =
  match Hashtbl.find_opt t.insts (node, obj) with
  | Some i -> Hashtbl.length i.i_pages
  | None -> 0

(* rough per-entry sizes of the real structures: an owner entry is a
   reader list head + version + flags (~32 B); a hint is a page/node
   pair (~16 B); the seen bitmap is 1 bit per page *)
let state_bytes t ~node ~obj =
  match Hashtbl.find_opt t.insts (node, obj) with
  | Some i ->
    (32 * Hashtbl.length i.i_pages)
    + (16 * Hint_cache.size i.i_dyn)
    + (16 * Hint_cache.size i.i_static)
    + ((i.i_size + 7) / 8)
  | None -> 0

let is_owner t ~node ~obj ~page =
  match Hashtbl.find_opt t.insts (node, obj) with
  | Some i -> Hashtbl.mem i.i_pages page
  | None -> false

let readers t ~obj ~page =
  let found = ref None in
  Hashtbl.iter
    (fun (_node, o) i ->
      if o = obj then
        match Hashtbl.find_opt i.i_pages page with
        | Some ps -> found := Some ps.p_readers
        | None -> ())
    t.insts;
  !found

let check_invariants t =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* group instances per object *)
  let objects = Hashtbl.create 32 in
  Hashtbl.iter
    (fun (node, obj) i ->
      let l = match Hashtbl.find_opt objects obj with Some l -> l | None -> [] in
      Hashtbl.replace objects obj ((node, i) :: l))
    t.insts;
  Hashtbl.iter
    (fun obj insts ->
      let owners_of page =
        List.filter_map
          (fun (node, i) ->
            match Hashtbl.find_opt i.i_pages page with
            | Some ps -> Some (node, ps)
            | None -> None)
          insts
      in
      let size =
        match insts with (_, i) :: _ -> i.i_size | [] -> 0
      in
      for page = 0 to size - 1 do
        let owners = owners_of page in
        (match owners with
        | [] | [ _ ] -> ()
        | many ->
          bad "obj#%d page %d has %d owners: %s" obj page (List.length many)
            (String.concat ","
               (List.map (fun (n, _) -> string_of_int n) many)));
        List.iter
          (fun (node, ps) ->
            if ps.p_busy then
              bad "obj#%d page %d: owner %d stuck busy" obj page node;
            if ps.p_pushing then
              bad "obj#%d page %d: owner %d stuck pushing" obj page node;
            if not (Queue.is_empty ps.p_queue) then
              bad "obj#%d page %d: %d requests queued at idle owner %d" obj
                page (Queue.length ps.p_queue) node;
            if not (Vm.is_resident t.vms.(node) ~obj ~page) then
              bad "obj#%d page %d: owner %d does not hold the page" obj page
                node;
            List.iter
              (fun r ->
                if r = node then
                  bad "obj#%d page %d: owner %d lists itself as reader" obj
                    page node)
              ps.p_readers;
            if
              List.length (List.sort_uniq compare ps.p_readers)
              <> List.length ps.p_readers
            then bad "obj#%d page %d: duplicate readers" obj page)
          owners
      done;
      (* kernel-level single writer: write access implies ownership *)
      List.iter
        (fun (node, i) ->
          for page = 0 to size - 1 do
            match Vm.frame_access t.vms.(node) ~obj ~page with
            | Some Prot.Read_write when not (Hashtbl.mem i.i_pages page) ->
              bad "obj#%d page %d: node %d has write access without ownership"
                obj page node
            | Some _ | None -> ()
          done;
          Hashtbl.iter
            (fun page q ->
              bad
                "obj#%d: node %d still parks %d foreign requests for page %d \
                 (outstanding=%b owner=%b resident=%b)"
                obj node (Queue.length q) page
                (Hashtbl.mem i.i_outstanding page)
                (Hashtbl.mem i.i_pages page)
                (Vm.is_resident t.vms.(node) ~obj ~page))
            i.i_waiting_inbound;
          if Hashtbl.length i.i_push_ops > 0 then
            bad "obj#%d: node %d has unfinished push operations" obj node;
          if Hashtbl.length i.i_answers > 0 then
            bad "obj#%d: node %d awaits unanswered queries" obj node)
        insts)
    objects;
  List.rev !violations
