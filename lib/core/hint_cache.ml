(* O(1) LRU: a hash table over an intrusive doubly-linked list kept in
   recency order (head = most recent, tail = the eviction victim).
   Every operation is a table probe plus pointer surgery — no scans, so
   the cost no longer grows with capacity. *)

type 'a node = {
  page : int;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (int, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Hint_cache.create: negative capacity";
  {
    capacity;
    table = Hashtbl.create (max 8 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let move_to_front t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let put t ~page value =
  if t.capacity = 0 then ()
  else
    match Hashtbl.find_opt t.table page with
    | Some n ->
      n.value <- value;
      move_to_front t n
    | None ->
      if Hashtbl.length t.table >= t.capacity then
        (match t.tail with
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.page
        | None -> ());
      let n = { page; value; prev = None; next = None } in
      push_front t n;
      Hashtbl.replace t.table page n

let find t ~page =
  match Hashtbl.find_opt t.table page with
  | Some n ->
    move_to_front t n;
    t.hits <- t.hits + 1;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    None

let remove t ~page =
  match Hashtbl.find_opt t.table page with
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table page
  | None -> ()

let hits t = t.hits
let misses t = t.misses
