(** NORMA-IPC model: Mach IPC extended across node boundaries.

    This is the transport XMM rides on. Its cost structure is the point:
    every message pays a heavy software path for typed-message marshalling
    and port-right bookkeeping, which the paper measured at ~90 % of the
    latency of an XMM remote page fault. Messages are delivered to a
    port's registered handler on the port's receive node.

    The ['msg] parameter is the protocol's message type (XMMI for XMM);
    ports are typed so senders cannot deliver foreign messages. *)

type config = {
  sw_send_ms : float;  (** sender marshalling + kernel entry *)
  sw_recv_ms : float;  (** receiver demarshalling + dispatch *)
  per_right_ms : float;  (** per transferred port right *)
  page_extra_ms : float;  (** extra software cost each side for 8 KB data *)
  header_bytes : int;  (** typed header + kernel message envelope *)
}

(** Calibrated so that a header-only NORMA round trip costs ~2.3 ms and a
    page-carrying message ~2.1 ms one way (see DESIGN.md section 5). *)
val default_config : config

type 'msg t
type 'msg port

val create : Asvm_mesh.Network.t -> config -> 'msg t

(** [port t ~node ~handler] allocates a receive right on [node]. *)
val port : 'msg t -> node:int -> handler:('msg port -> 'msg -> unit) -> 'msg port

val port_node : 'msg port -> int
val port_id : 'msg port -> int

(** [send t ~src ~dst ?carries_page ?rights msg] queues [msg] for
    delivery to [dst]'s handler. [carries_page] adds an 8 KB payload;
    [rights] is the number of port rights moved in the message. *)
val send :
  'msg t -> src:int -> dst:'msg port -> ?carries_page:bool -> ?rights:int -> 'msg -> unit

(** {1 Crash support (see [docs/AVAILABILITY.md])}

    Same discipline as the STS transport: the mesh liveness registry is
    consulted at send time and again when the delivery continuation
    runs.  A dead sender's messages vanish; messages to (or in flight
    around) a crashed endpoint divert to the dead-letter hook. *)

(** [src_dead] / [dst_dead] say which endpoint's crash killed the
    message.  Runs as a fresh engine event. *)
type 'msg dead_letter =
  src:int -> dst:int -> src_dead:bool -> dst_dead:bool -> 'msg -> unit

val set_on_dead_letter : 'msg t -> 'msg dead_letter option -> unit

(** Undeliverable messages diverted to the dead-letter hook so far. *)
val dead_letters : 'msg t -> int

(** Messages sent so far (for protocol-economy comparisons). *)
val messages : 'msg t -> int

(** Messages that carried page contents. *)
val page_messages : 'msg t -> int
