module Network = Asvm_mesh.Network

type config = {
  sw_send_ms : float;
  sw_recv_ms : float;
  per_right_ms : float;
  page_extra_ms : float;
  header_bytes : int;
}

let default_config =
  {
    sw_send_ms = 0.85;
    sw_recv_ms = 0.85;
    per_right_ms = 0.08;
    page_extra_ms = 0.45;
    header_bytes = 256;
  }

let page_bytes = 8192

type 'msg port = {
  id : int;
  node : int;
  handler : 'msg port -> 'msg -> unit;
}

type 'msg dead_letter =
  src:int -> dst:int -> src_dead:bool -> dst_dead:bool -> 'msg -> unit

type 'msg t = {
  net : Network.t;
  config : config;
  mutable next_port : int;
  mutable messages : int;
  mutable page_messages : int;
  mutable on_dead_letter : 'msg dead_letter option;
  mutable n_dead_letters : int;
}

let create net config =
  {
    net;
    config;
    next_port = 0;
    messages = 0;
    page_messages = 0;
    on_dead_letter = None;
    n_dead_letters = 0;
  }

let set_on_dead_letter t f = t.on_dead_letter <- f

let port t ~node ~handler =
  let id = t.next_port in
  t.next_port <- id + 1;
  { id; node; handler }

let port_node p = p.node
let port_id p = p.id

(* Same liveness discipline as STS (see lib/sts): endpoints' crash
   incarnations are captured at send time and re-checked when the
   delivery continuation actually runs, so messages queued behind a
   busy station are still caught.  Undeliverable messages go to the
   dead-letter hook as a fresh engine event. *)
let endpoint_dead t node inc =
  Network.is_down t.net node || Network.incarnation t.net node <> inc

let dead_letter t ~src ~dst ~src_dead ~dst_dead msg =
  t.n_dead_letters <- t.n_dead_letters + 1;
  match t.on_dead_letter with
  | None -> ()
  | Some f ->
    Asvm_simcore.Engine.schedule (Network.engine t.net) ~delay:0. (fun () ->
        f ~src ~dst ~src_dead ~dst_dead msg)

let send t ~src ~dst ?(carries_page = false) ?(rights = 1) msg =
  if Network.is_down t.net src then ()
  else begin
    t.messages <- t.messages + 1;
    if carries_page then t.page_messages <- t.page_messages + 1;
    if Network.is_down t.net dst.node then
      dead_letter t ~src ~dst:dst.node ~src_dead:false ~dst_dead:true msg
    else begin
      let c = t.config in
      let extra = if carries_page then c.page_extra_ms else 0. in
      let rights_cost = float_of_int rights *. c.per_right_ms in
      let bytes = c.header_bytes + if carries_page then page_bytes else 0 in
      let src_inc = Network.incarnation t.net src
      and dst_inc = Network.incarnation t.net dst.node in
      Network.send t.net ~src ~dst:dst.node ~bytes
        ~sw_send:(c.sw_send_ms +. rights_cost +. extra)
        ~sw_recv:(c.sw_recv_ms +. rights_cost +. extra)
        (fun () ->
          let src_dead = endpoint_dead t src src_inc
          and dst_dead = endpoint_dead t dst.node dst_inc in
          if src_dead || dst_dead then
            dead_letter t ~src ~dst:dst.node ~src_dead ~dst_dead msg
          else dst.handler dst msg)
    end
  end

let messages t = t.messages
let page_messages t = t.page_messages
let dead_letters t = t.n_dead_letters
