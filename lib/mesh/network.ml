module Engine = Asvm_simcore.Engine
module Station = Asvm_simcore.Station

type config = {
  fixed_ms : float;
  per_hop_ms : float;
  per_byte_ms : float;
}

(* 200 MB/s per direction => 1 byte = 1 / (200 * 1024 * 1024) s ~ 4.77e-6 ms.
   Router delay on the Paragon mesh was ~40 ns per hop. *)
let paragon_config =
  { fixed_ms = 0.002; per_hop_ms = 0.00004; per_byte_ms = 4.77e-6 }

module Metrics = Asvm_obs.Metrics

(* Metric handles, resolved once at [create]: the per-message path must
   not pay the registry's string+label hashtable lookup. *)
type handles = {
  h_messages : Metrics.Counter.t;
  h_bytes : Metrics.Counter.t;
  h_tx_backlog : Metrics.Histogram.t;
}

type decision = { deliveries : float list }

let pass = { deliveries = [ 0. ] }

type interposer =
  now:float -> index:int -> src:int -> dst:int -> bytes:int -> decision

type t = {
  engine : Engine.t;
  config : config;
  topology : Topology.t;
  tx : Station.t array;
  rx : Station.t array;
  mutable messages : int;
  mutable bytes_sent : int;
  mutable interposer : interposer option;
  handles : handles option;
  (* Liveness registry (crash/rejoin, see lib/chaos).  The network layer
     only records which nodes are down and how many times each has been
     (re)started; the transports decide what a dead endpoint means for
     their messages.  [incarnation] bumps on every crash so a transport
     can detect "the node I sent to is not the node that would receive
     this" even across a rejoin. *)
  down : bool array;
  incarnation : int array;
}

let create ?metrics engine config topology =
  let n = Topology.nodes topology in
  {
    engine;
    config;
    topology;
    tx = Array.init n (fun _ -> Station.create engine);
    rx = Array.init n (fun _ -> Station.create engine);
    messages = 0;
    bytes_sent = 0;
    interposer = None;
    down = Array.make n false;
    incarnation = Array.make n 0;
    handles =
      Option.map
        (fun m ->
          {
            h_messages = Metrics.Registry.counter m "net.messages";
            h_bytes = Metrics.Registry.counter m "net.bytes";
            h_tx_backlog = Metrics.Registry.histogram m "net.tx_backlog_ms";
          })
        metrics;
  }

let topology t = t.topology
let engine t = t.engine
let set_interposer t f = t.interposer <- f

let set_down t node =
  if not t.down.(node) then begin
    t.down.(node) <- true;
    t.incarnation.(node) <- t.incarnation.(node) + 1
  end

let set_up t node = t.down.(node) <- false
let is_down t node = t.down.(node)
let incarnation t node = t.incarnation.(node)

let wire_latency t ~src ~dst ~bytes =
  if src = dst then 0.
  else
    let hops = float_of_int (Topology.hops t.topology src dst) in
    t.config.fixed_ms
    +. (hops *. t.config.per_hop_ms)
    +. (float_of_int bytes *. t.config.per_byte_ms)

let send t ~src ~dst ~bytes ~sw_send ~sw_recv k =
  let n = Topology.nodes t.topology in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg
      (Printf.sprintf
         "Network.send: node id out of range (src=%d dst=%d nodes=%d)" src dst
         n);
  let index = t.messages in
  t.messages <- t.messages + 1;
  t.bytes_sent <- t.bytes_sent + bytes;
  (match t.handles with
  | None -> ()
  | Some h ->
    Metrics.Counter.incr h.h_messages;
    Metrics.Counter.incr ~by:bytes h.h_bytes;
    (* how far behind this sender's tx station is right now: the queue
       depth seen by the message, expressed in milliseconds of backlog *)
    let backlog =
      Float.max 0. (Station.busy_until t.tx.(src) -. Engine.now t.engine)
    in
    Metrics.Histogram.observe h.h_tx_backlog backlog);
  let wire = wire_latency t ~src ~dst ~bytes in
  (* The sender's software path occupies its tx station; the wire adds pure
     latency; the receiver's software path occupies its rx station. *)
  let deliver extra =
    Station.submit t.tx.(src) ~service:sw_send (fun () ->
        Engine.schedule t.engine ~delay:(wire +. extra) (fun () ->
            Station.submit t.rx.(dst) ~service:sw_recv k))
  in
  match t.interposer with
  | None -> deliver 0.
  | Some f -> (
    match
      (f ~now:(Engine.now t.engine) ~index ~src ~dst ~bytes).deliveries
    with
    | [] ->
      (* dropped on the wire: the sender still pays its software path,
         the receiver never hears about it *)
      Station.submit t.tx.(src) ~service:sw_send (fun () -> ())
    | ds -> List.iter deliver ds)

let messages t = t.messages
let bytes_sent t = t.bytes_sent
