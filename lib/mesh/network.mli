(** Message delivery over the mesh.

    The model splits a message's cost into:
    - sender-side software time ([sw_send]), occupying the sender's
      transmit station (messages from one node serialize);
    - wire time: fixed start-up + per-hop routing + per-byte transfer
      (wormhole routing makes this latency, not occupancy);
    - receiver-side software time ([sw_recv]), occupying the receiver's
      receive station (a hot receiver — e.g. the XMM centralized manager —
      queues incoming work).

    The continuation runs on the receiver once its station has processed
    the message. *)

type config = {
  fixed_ms : float;  (** wire start-up cost per message *)
  per_hop_ms : float;  (** router traversal per hop *)
  per_byte_ms : float;  (** transfer time per payload byte *)
}

(** Paragon-like mesh: 200 MB/s links, sub-microsecond routers. *)
val paragon_config : config

type t

(** [create ?metrics engine config topology].  When [metrics] is
    given, each send bumps the [net.messages] / [net.bytes] counters
    and samples the sender's transmit-queue backlog (ms of queued
    service time) into the [net.tx_backlog_ms] histogram. *)
val create :
  ?metrics:Asvm_obs.Metrics.Registry.t ->
  Asvm_simcore.Engine.t ->
  config ->
  Topology.t ->
  t

val topology : t -> Topology.t
val engine : t -> Asvm_simcore.Engine.t

(** [send t ~src ~dst ~bytes ~sw_send ~sw_recv k] models one message.
    [src = dst] is allowed (loopback skips the wire but still pays the
    software path). *)
val send :
  t ->
  src:int ->
  dst:int ->
  bytes:int ->
  sw_send:float ->
  sw_recv:float ->
  (unit -> unit) ->
  unit

(** Total messages sent so far. *)
val messages : t -> int

(** Total payload bytes sent so far. *)
val bytes_sent : t -> int

(** Wire latency (ms) for a [bytes]-sized payload between two nodes,
    excluding software time — exposed for tests and capacity planning. *)
val wire_latency : t -> src:int -> dst:int -> bytes:int -> float
