(** Message delivery over the mesh.

    The model splits a message's cost into:
    - sender-side software time ([sw_send]), occupying the sender's
      transmit station (messages from one node serialize);
    - wire time: fixed start-up + per-hop routing + per-byte transfer
      (wormhole routing makes this latency, not occupancy);
    - receiver-side software time ([sw_recv]), occupying the receiver's
      receive station (a hot receiver — e.g. the XMM centralized manager —
      queues incoming work).

    The continuation runs on the receiver once its station has processed
    the message. *)

type config = {
  fixed_ms : float;  (** wire start-up cost per message *)
  per_hop_ms : float;  (** router traversal per hop *)
  per_byte_ms : float;  (** transfer time per payload byte *)
}

(** Paragon-like mesh: 200 MB/s links, sub-microsecond routers. *)
val paragon_config : config

type t

(** {1 Fault interposition}

    A chaos interposer (see [lib/chaos]) observes every message at the
    moment it would enter the sender's transmit station and decides how
    many copies reach the receiver and how much extra wire delay each
    copy pays.  The decision must be a pure function of its arguments:
    [index] is the network-wide message ordinal (0-based, assigned in
    send order), which the deterministic engine makes reproducible for
    a fixed workload and seed, independent of host parallelism. *)

(** One entry per delivered copy, each the extra wire latency (ms) that
    copy pays on top of the modeled wire time.  [[]] drops the message
    (the sender still pays its software path — the message died on the
    wire); [[ 0. ]] is unperturbed delivery; two or more entries
    duplicate the message. *)
type decision = { deliveries : float list }

(** [{ deliveries = [ 0. ] }] — deliver exactly once, unperturbed. *)
val pass : decision

type interposer =
  now:float -> index:int -> src:int -> dst:int -> bytes:int -> decision

(** Install (or remove, with [None]) the fault interposer.  With no
    interposer installed the send path is exactly the unperturbed one. *)
val set_interposer : t -> interposer option -> unit

(** [create ?metrics engine config topology].  When [metrics] is
    given, each send bumps the [net.messages] / [net.bytes] counters
    and samples the sender's transmit-queue backlog (ms of queued
    service time) into the [net.tx_backlog_ms] histogram. *)
val create :
  ?metrics:Asvm_obs.Metrics.Registry.t ->
  Asvm_simcore.Engine.t ->
  config ->
  Topology.t ->
  t

val topology : t -> Topology.t
val engine : t -> Asvm_simcore.Engine.t

(** {1 Liveness registry}

    Whole-node crash support (see [lib/chaos] and
    [docs/AVAILABILITY.md]).  The network itself never drops messages
    for a dead node — deliveries already committed to the event queue
    would bypass any send-time check.  Instead the registry records
    which nodes are down, and the transports (STS, NORMA-IPC) consult
    it at {e delivery} time, comparing the receiver's incarnation
    against the one captured when the message was transmitted. *)

(** Mark [node] dead.  Idempotent; the first call of a down/up cycle
    bumps the node's incarnation, so messages sent to (or handlers
    armed for) the previous incarnation can be recognized as stale
    even after the node rejoins. *)
val set_down : t -> int -> unit

(** Mark [node] live again (a rejoin).  Does not change the
    incarnation — that happened at {!set_down}. *)
val set_up : t -> int -> unit

val is_down : t -> int -> bool

(** How many times [node] has crashed so far (0 = never). *)
val incarnation : t -> int -> int

(** [send t ~src ~dst ~bytes ~sw_send ~sw_recv k] models one message.
    [src = dst] is allowed (loopback skips the wire but still pays the
    software path).
    @raise Invalid_argument when [src] or [dst] is outside the
    topology, naming the offending ids and the node count. *)
val send :
  t ->
  src:int ->
  dst:int ->
  bytes:int ->
  sw_send:float ->
  sw_recv:float ->
  (unit -> unit) ->
  unit

(** Total messages sent so far. *)
val messages : t -> int

(** Total payload bytes sent so far. *)
val bytes_sent : t -> int

(** Wire latency (ms) for a [bytes]-sized payload between two nodes,
    excluding software time — exposed for tests and capacity planning. *)
val wire_latency : t -> src:int -> dst:int -> bytes:int -> float
