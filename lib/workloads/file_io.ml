module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map
module Store_pager = Asvm_pager.Store_pager

type result = {
  nodes : int;
  per_node_mb_s : float;
  total_ms : float;
  pager_supplies : int;
  metrics : Asvm_obs.Metrics.snapshot;
}

let page_bytes = 8192.
let mb = 1024. *. 1024.

let setup ~mm ~nodes ~file_pages ~with_data ~stripes ~tweak =
  let config = tweak (Config.with_mm (Config.default ~nodes) mm) in
  let cl = Cluster.create config in
  let obj =
    if with_data then
      Cluster.create_file_object cl ~size_pages:file_pages
        ~sharers:(List.init nodes Fun.id)
        ~data:(fun addr -> 40000 + addr)
        ~stripes ()
    else
      (* a new file: the pager supplies initially zero-filled pages from
         memory, no disk read *)
      Cluster.create_file_object cl ~size_pages:file_pages
        ~sharers:(List.init nodes Fun.id)
        ~stripes ()
  in
  let tasks =
    Array.init nodes (fun node ->
        let task = Cluster.create_task cl ~node in
        Cluster.map cl ~task ~obj ~start:0 ~npages:file_pages
          ~inherit_:Address_map.Inherit_share;
        task)
  in
  (cl, Cluster.object_pagers cl obj, tasks)

(* Run one access loop per node concurrently; returns each node's
   completion time. *)
let run_concurrent cl tasks ~pages_of ~want =
  let nodes = Array.length tasks in
  let finish = Array.make nodes 0. in
  let remaining = ref nodes in
  Array.iteri
    (fun node task ->
      let rec step = function
        | [] ->
          finish.(node) <- Cluster.now cl;
          decr remaining
        | vpage :: rest ->
          Cluster.touch cl ~task ~vpage ~want (fun () -> step rest)
      in
      step (pages_of node))
    tasks;
  Cluster.run cl;
  if !remaining <> 0 then failwith "File_io: some nodes did not finish";
  finish

let write_test ~mm ~nodes ?(file_mb = 4) ?(stripes = 1) ?(tweak = Fun.id)
    ?(inspect = ignore) ?(on_start = ignore) () =
  let file_pages = file_mb * 128 in
  let cl, pagers, tasks =
    setup ~mm ~nodes ~file_pages ~with_data:false ~stripes ~tweak
  in
  let section = file_pages / nodes in
  let pages_of node = List.init section (fun i -> (node * section) + i) in
  on_start cl;
  let t0 = Cluster.now cl in
  let finish = run_concurrent cl tasks ~pages_of ~want:Prot.Read_write in
  inspect cl;
  let per_node_rates =
    Array.map
      (fun t ->
        let bytes = float_of_int section *. page_bytes in
        bytes /. mb /. ((t -. t0) /. 1000.))
      finish
  in
  let mean = Array.fold_left ( +. ) 0. per_node_rates /. float_of_int nodes in
  {
    nodes;
    per_node_mb_s = mean;
    total_ms = Cluster.now cl -. t0;
    pager_supplies =
      List.fold_left (fun acc p -> acc + Store_pager.supplies p) 0 pagers;
    metrics = Cluster.metrics_snapshot cl;
  }

let read_test ~mm ~nodes ?(file_mb = 4) ?(stripes = 1) ?(tweak = Fun.id)
    ?(inspect = ignore) ?(on_start = ignore) () =
  let file_pages = file_mb * 128 in
  let cl, pagers, tasks =
    setup ~mm ~nodes ~file_pages ~with_data:true ~stripes ~tweak
  in
  let pages_of _node = List.init file_pages Fun.id in
  on_start cl;
  let t0 = Cluster.now cl in
  let finish = run_concurrent cl tasks ~pages_of ~want:Prot.Read_only in
  inspect cl;
  let per_node_rates =
    Array.map
      (fun t ->
        let bytes = float_of_int file_pages *. page_bytes in
        bytes /. mb /. ((t -. t0) /. 1000.))
      finish
  in
  let mean = Array.fold_left ( +. ) 0. per_node_rates /. float_of_int nodes in
  {
    nodes;
    per_node_mb_s = mean;
    total_ms = Cluster.now cl -. t0;
    pager_supplies =
      List.fold_left (fun acc p -> acc + Store_pager.supplies p) 0 pagers;
    metrics = Cluster.metrics_snapshot cl;
  }

let table2 ~node_counts ?(file_mb = 4) ?jobs () =
  (* every (op, mm, nodes) cell is an independent simulation: a pure
     pool job, merged back in submission order *)
  let rates =
    Asvm_runner.Runner.map ?jobs
      (fun (op, mm, nodes) ->
        match op with
        | `Write -> (write_test ~mm ~nodes ~file_mb ()).per_node_mb_s
        | `Read -> (read_test ~mm ~nodes ~file_mb ()).per_node_mb_s)
      (List.concat_map
         (fun nodes ->
           [
             (`Write, Config.Mm_asvm, nodes);
             (`Write, Config.Mm_xmm, nodes);
             (`Read, Config.Mm_asvm, nodes);
             (`Read, Config.Mm_xmm, nodes);
           ])
         node_counts)
  in
  let rec zip node_counts rs =
    match (node_counts, rs) with
    | [], [] -> []
    | nodes :: node_counts, aw :: xw :: ar :: xr :: rs ->
      (nodes, aw, xw, ar, xr) :: zip node_counts rs
    | _ -> assert false
  in
  zip node_counts rates
