(** EM3D — the paper's SVM application benchmark (Table 3).

    EM3D models 3-D electromagnetic wave propagation on a bipartite
    graph of E and H cells (224 bytes per cell, 6 edges per cell, 20 %
    of edges remote). Each iteration updates every E cell from its H
    neighbours, then every H cell from its E neighbours.

    Two modes:
    - {!run} is the page-granular benchmark: the graph's sharing pattern
      is compiled to per-node, per-phase page read/write sets (remote
      edges cluster into boundary windows, as the Split-C generator
      produces); computation is charged as 6.8 µs per cell-iteration —
      the paper's sequential rate. This reproduces Table 3's shape at
      the full problem sizes.
    - {!validate} runs a small instance with one word per cell through
      the full word-level memory interface and checks the result against
      a sequential reference — an end-to-end coherence check of the
      whole stack. *)

type params = {
  cells : int;  (** total cells (E + H) *)
  nodes : int;
  iterations : int;
  seed : int;
}

val default_params : cells:int -> nodes:int -> params

type result = {
  params : params;
  seconds : float;  (** simulated execution time of the iteration loop *)
  faults : int;
  protocol_messages : int;
  metrics : Asvm_obs.Metrics.snapshot;
      (** end-of-run registry snapshot (protocol counters, network bytes,
          engine profiling gauges) *)
}

(** Bytes per cell and cells per 8 KB page, per the paper. *)
val cell_bytes : int

val cells_per_page : int

(** Pages needed for the whole data set. *)
val data_pages : cells:int -> int

(** Does the data set fit the combined memory of the nodes? (The paper
    omits configurations where it does not.) *)
val fits : cells:int -> nodes:int -> memory_pages_per_node:int -> bool

(** Run the benchmark. [memory_pages] overrides the per-node memory
    (the paper ran sequential measurements on a 32 MB node). [audit]
    runs against the ASVM instance after the benchmark drains — for
    invariant checks in tests. [tweak] rewrites the cluster
    configuration before creation (chaos fault plans); [inspect] runs
    against the drained cluster after the benchmark (cluster-level
    chaos invariant checks, both backends); [on_start] runs against the
    live cluster just before the event loop starts (chaos crash
    schedules). *)
val run :
  mm:Asvm_cluster.Config.mm ->
  ?memory_pages:int ->
  ?internode_paging:bool ->
  ?audit:(Asvm_core.Asvm.t -> unit) ->
  ?tweak:(Asvm_cluster.Config.t -> Asvm_cluster.Config.t) ->
  ?inspect:(Asvm_cluster.Cluster.t -> unit) ->
  ?on_start:(Asvm_cluster.Cluster.t -> unit) ->
  params ->
  result

(** Run a list of [(mm, memory_pages, params)] configurations as
    independent jobs on the {!Asvm_runner.Runner} pool.  Results come
    back in submission order and are independent of [jobs]. *)
val sweep :
  ?jobs:int ->
  (Asvm_cluster.Config.mm * int option * params) list ->
  result list

(** Word-level validation on a small instance: returns [true] iff the
    distributed run computes exactly the sequential reference values. *)
val validate :
  mm:Asvm_cluster.Config.mm ->
  cells:int ->
  nodes:int ->
  iterations:int ->
  seed:int ->
  bool
