(** Inherited-memory (delayed copy) microbenchmark — paper Figure 11.

    A task initializes a 128 KB region (16 pages), then a chain of
    copies of that region is spawned across [chain] nodes by repeated
    remote forks; finally every page of the region is faulted on the
    last node of the chain. The per-fault latency follows
    [lb + n * la] (paper: ASVM lb=2.7, la=0.48; XMM lb=5.0, la=4.3). *)

type result = {
  chain : int;  (** number of fork stages *)
  mean_fault_ms : float;
  total_ms : float;
  faults : int;
  metrics : Asvm_obs.Metrics.snapshot;  (** end-of-run registry snapshot *)
}

(** [tweak] rewrites the cluster configuration before creation (chaos
    fault plans); [inspect] runs against the drained cluster after the
    fault loop (chaos invariant checks); [on_start] runs against the
    live cluster just before the fault loop (chaos crash schedules).
    [extra_nodes] adds idle sharer nodes past the chain — crash victims
    that hold protocol state but no measured task. *)
val measure :
  mm:Asvm_cluster.Config.mm ->
  chain:int ->
  ?pages:int ->
  ?extra_nodes:int ->
  ?tweak:(Asvm_cluster.Config.t -> Asvm_cluster.Config.t) ->
  ?inspect:(Asvm_cluster.Cluster.t -> unit) ->
  ?on_start:(Asvm_cluster.Cluster.t -> unit) ->
  unit ->
  result

(** Sweep chain lengths; returns the per-chain results and the fitted
    [(lb, la)] of the latency model.  Each chain length runs as an
    independent job on the {!Asvm_runner.Runner} pool; results and fit
    are independent of [jobs]. *)
val figure11 :
  mm:Asvm_cluster.Config.mm ->
  chains:int list ->
  ?pages:int ->
  ?jobs:int ->
  unit ->
  result list * (float * float)
