(** SOR — red/black successive over-relaxation on a strip-partitioned
    grid.

    A complementary SVM application to EM3D: where EM3D's remote edges
    scatter across partner nodes, SOR shares only the boundary rows
    between adjacent strips, so each node exchanges pages with exactly
    two neighbours per iteration. This is the nearest-neighbour pattern
    most SVM literature (including Li's thesis, the paper's reference
    [1]) evaluates. *)

type params = {
  grid : int;  (** grid is [grid x grid] cells *)
  nodes : int;
  iterations : int;
}

type result = {
  params : params;
  seconds : float;
  faults : int;
}

(** Page-granular benchmark run (like {!Em3d.run}). *)
val run : mm:Asvm_cluster.Config.mm -> ?memory_pages:int -> params -> result

(** Run a list of [(mm, params)] configurations as independent jobs on
    the {!Asvm_runner.Runner} pool.  Results come back in submission
    order and are independent of [jobs]. *)
val sweep :
  ?jobs:int -> (Asvm_cluster.Config.mm * params) list -> result list

(** Word-level validation of a small grid against a sequential
    reference stencil computation. *)
val validate :
  mm:Asvm_cluster.Config.mm -> grid:int -> nodes:int -> iterations:int -> bool
