(** Mapped-filesystem transfer rates — paper Table 2 / Figures 12, 13.

    The paper bypasses the OSF1/AD server and maps the file with
    [mmap()]: each node reads/writes directly through the VM system.

    - {b Write}: all nodes write disjoint sections of a 4 MB file with
      asynchronous writes; the combined ceiling is the rate at which the
      file pager supplies initially zero-filled pages.
    - {b Read}: all nodes read the whole 4 MB file in parallel; each
      node's ceiling is the pager's supply rate for file contents — but
      under ASVM pages already resident anywhere are served by their
      owners, so the aggregate scales. *)

type result = {
  nodes : int;
  per_node_mb_s : float;  (** effective rate seen by each node *)
  total_ms : float;
  pager_supplies : int;  (** pages the file pager actually served *)
  metrics : Asvm_obs.Metrics.snapshot;  (** end-of-run registry snapshot *)
}

(** [stripes > 1] spreads the file over several pager tasks served
    round-robin by page — the section 6 striping proposal (ASVM only).
    [tweak] rewrites the cluster configuration before creation (chaos
    fault plans); [inspect] runs against the drained cluster after all
    nodes finish (chaos invariant checks); [on_start] runs against the
    live cluster just before the access loops start (chaos crash
    schedules). *)
val write_test :
  mm:Asvm_cluster.Config.mm ->
  nodes:int ->
  ?file_mb:int ->
  ?stripes:int ->
  ?tweak:(Asvm_cluster.Config.t -> Asvm_cluster.Config.t) ->
  ?inspect:(Asvm_cluster.Cluster.t -> unit) ->
  ?on_start:(Asvm_cluster.Cluster.t -> unit) ->
  unit ->
  result

val read_test :
  mm:Asvm_cluster.Config.mm ->
  nodes:int ->
  ?file_mb:int ->
  ?stripes:int ->
  ?tweak:(Asvm_cluster.Config.t -> Asvm_cluster.Config.t) ->
  ?inspect:(Asvm_cluster.Cluster.t -> unit) ->
  ?on_start:(Asvm_cluster.Cluster.t -> unit) ->
  unit ->
  result

(** Table 2: for each node count, ASVM write / XMM write / ASVM read /
    XMM read in MB/s.  Each cell runs as an independent job on the
    {!Asvm_runner.Runner} pool; rows are independent of [jobs]. *)
val table2 :
  node_counts:int list -> ?file_mb:int -> ?jobs:int -> unit ->
  (int * float * float * float * float) list
