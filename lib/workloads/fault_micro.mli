(** Page-fault latency microbenchmarks — paper Table 1 and Figure 10.

    Setup mirrors the paper's: the measurement runs on a 72-node
    machine; the XMM stack (manager + pager, on the I/O node) is remote
    from both the faulting node and the nodes holding read copies.

    "A page with N read copies" means N nodes hold the page, the first
    of them being the node that initialized (wrote) it — so with N = 1
    the only copy is still dirty, and under XMM the fault pays the
    paging-space disk write ("first remote request" behaviour). *)

type fault_kind =
  | Write_fault of { read_copies : int }
      (** faulting node holds no copy *)
  | Write_upgrade of { read_copies : int }
      (** faulting node holds one of the read copies *)
  | Read_fault of { nth_reader : int }  (** 1 = first remote reader *)

val describe : fault_kind -> string

(** One measured fault with its protocol-level evidence. *)
type instrumented = {
  latency_ms : float;  (** simulated milliseconds for the measured fault *)
  fault_metrics : Asvm_obs.Metrics.snapshot;
      (** counter deltas over the measured fault only ({!Asvm_obs.Metrics.diff}
          of the registry around it) — e.g. [asvm.msgs.ownership_transfer]
          sums to 3 for an ASVM write fault, 5 under XMM (paper Table 1) *)
  run_metrics : Asvm_obs.Metrics.snapshot;
      (** full end-of-run snapshot, setup traffic and engine gauges included *)
}

(** Like {!measure}, returning the registry evidence alongside the
    latency. [trace_out] streams the whole run's trace (setup included)
    as JSONL to that file. [tweak] rewrites the cluster configuration
    before creation (chaos fault plans, reliability settings); [inspect]
    runs against the drained cluster after the measured fault (chaos
    invariant checks); [on_start] runs against the live cluster just
    before the measured fault (chaos crash schedules —
    [Plan.schedule_crashes]). *)
val measure_instrumented :
  ?nodes:int ->
  ?trace_out:string ->
  ?tweak:(Asvm_cluster.Config.t -> Asvm_cluster.Config.t) ->
  ?inspect:(Asvm_cluster.Cluster.t -> unit) ->
  ?on_start:(Asvm_cluster.Cluster.t -> unit) ->
  mm:Asvm_cluster.Config.mm ->
  fault_kind ->
  instrumented

(** Latency in simulated milliseconds of one such fault. *)
val measure :
  ?nodes:int -> mm:Asvm_cluster.Config.mm -> fault_kind -> float

(** The seven rows of Table 1: [(label, asvm_ms, xmm_ms)].  Each
    (mm, kind) cell is an independent simulation submitted to the
    {!Asvm_runner.Runner} pool; [jobs] defaults to the domain count and
    [~jobs:1] is the sequential path.  Row order and values are
    independent of [jobs]. *)
val table1 : ?nodes:int -> ?jobs:int -> unit -> (string * float * float) list

(** Figure 10: write-fault latency vs. number of read copies.
    Returns [(readers, asvm_write, asvm_upgrade, xmm_write, xmm_upgrade)]
    for each point.  Cells run on the pool like {!table1}. *)
val figure10 :
  ?nodes:int ->
  ?jobs:int ->
  readers:int list ->
  unit ->
  (int * float * float * float * float) list
