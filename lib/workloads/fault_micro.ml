module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map
module Metrics = Asvm_obs.Metrics

type fault_kind =
  | Write_fault of { read_copies : int }
  | Write_upgrade of { read_copies : int }
  | Read_fault of { nth_reader : int }

let describe = function
  | Write_fault { read_copies = n } ->
    Printf.sprintf "write fault, %d read cop%s" n (if n = 1 then "y" else "ies")
  | Write_upgrade { read_copies = n } ->
    Printf.sprintf
      "write fault, %d read cop%s, faulting node has read copy" n
      (if n = 1 then "y" else "ies")
  | Read_fault { nth_reader = n } ->
    Printf.sprintf "read fault, faulting node is reader #%d" n

type instrumented = {
  latency_ms : float;
  fault_metrics : Metrics.snapshot;
  run_metrics : Metrics.snapshot;
}

(* Node roles: 0 = I/O node (pager; XMM manager too), 1 = initializer,
   2.. = additional readers, last = faulting node. *)
let measure_instrumented ?(nodes = 72) ?trace_out ?(tweak = Fun.id)
    ?(inspect = ignore) ?(on_start = ignore) ~mm kind =
  let needed =
    match kind with
    | Write_fault { read_copies } -> read_copies + 2
    | Write_upgrade { read_copies } -> read_copies + 2
    | Read_fault { nth_reader } -> nth_reader + 2
  in
  if nodes < needed then invalid_arg "Fault_micro.measure: too few nodes";
  let config = Config.with_mm (Config.default ~nodes) mm in
  let config = tweak { config with Config.trace_out } in
  let cl = Cluster.create config in
  let sharers = List.init nodes Fun.id in
  let obj = Cluster.create_shared_object cl ~size_pages:4 ~sharers () in
  let task_of = Array.make nodes None in
  let task node =
    match task_of.(node) with
    | Some t -> t
    | None ->
      let t = Cluster.create_task cl ~node in
      Cluster.map cl ~task:t ~obj ~start:0 ~npages:4
        ~inherit_:Address_map.Inherit_share;
      task_of.(node) <- Some t;
      t
  in
  let sync_touch node want =
    let ok = ref false in
    Cluster.touch cl ~task:(task node) ~vpage:0 ~want (fun () -> ok := true);
    Cluster.run cl;
    assert !ok
  in
  let faulter = nodes - 1 in
  (* the initializer dirties the page *)
  let wr_init () =
    let ok = ref false in
    Cluster.write_word cl ~task:(task 1) ~addr:0 ~value:1 (fun () -> ok := true);
    Cluster.run cl;
    assert !ok
  in
  wr_init ();
  (* build up the read-copy population *)
  let readers_before, faulter_has_copy, want =
    match kind with
    | Write_fault { read_copies } -> (read_copies - 1, false, Prot.Read_write)
    | Write_upgrade { read_copies } -> (read_copies - 2, true, Prot.Read_write)
    | Read_fault { nth_reader } -> (nth_reader - 1, false, Prot.Read_only)
  in
  if readers_before < -1 then invalid_arg "Fault_micro.measure: bad population";
  for r = 1 to max 0 readers_before do
    sync_touch (1 + r) Prot.Read_only
  done;
  if faulter_has_copy then sync_touch faulter Prot.Read_only;
  (* the measured fault *)
  on_start cl;
  let before = Cluster.metrics_snapshot cl in
  let t0 = Cluster.now cl in
  let done_ = ref false in
  Cluster.touch cl ~task:(task faulter) ~vpage:0 ~want (fun () -> done_ := true);
  Cluster.run cl;
  assert !done_;
  let latency_ms = Cluster.now cl -. t0 in
  inspect cl;
  let run_metrics = Cluster.metrics_snapshot cl in
  {
    latency_ms;
    fault_metrics = Metrics.diff ~before ~after:run_metrics;
    run_metrics;
  }

let measure ?nodes ~mm kind =
  (measure_instrumented ?nodes ~mm kind).latency_ms

(* Each (mm, fault kind) point is an independent simulation — its own
   cluster, engine and registry — so a table is a batch of pure jobs
   for the pool.  Results come back in submission order, which keeps
   the printed rows identical for any [jobs]. *)
module Runner = Asvm_runner.Runner

let table1 ?(nodes = 72) ?jobs () =
  let rows =
    [
      Write_fault { read_copies = 1 };
      Write_fault { read_copies = 2 };
      Write_fault { read_copies = 64 };
      Write_upgrade { read_copies = 2 };
      Write_upgrade { read_copies = 64 };
      Read_fault { nth_reader = 1 };
      Read_fault { nth_reader = 2 };
    ]
  in
  let measured =
    Runner.map ?jobs
      (fun (mm, kind) -> measure ~nodes ~mm kind)
      (List.concat_map
         (fun kind -> [ (Config.Mm_asvm, kind); (Config.Mm_xmm, kind) ])
         rows)
  in
  let rec zip rows ms =
    match (rows, ms) with
    | [], [] -> []
    | kind :: rows, asvm :: xmm :: ms -> (describe kind, asvm, xmm) :: zip rows ms
    | _ -> assert false
  in
  zip rows measured

let figure10 ?(nodes = 72) ?jobs ~readers () =
  let cell (mm, kind) =
    match kind with
    | `Write n -> measure ~nodes ~mm (Write_fault { read_copies = n })
    | `Upgrade n when n >= 2 ->
      measure ~nodes ~mm (Write_upgrade { read_copies = n })
    | `Upgrade _ -> nan
  in
  let measured =
    Runner.map ?jobs cell
      (List.concat_map
         (fun n ->
           [
             (Config.Mm_asvm, `Write n);
             (Config.Mm_asvm, `Upgrade n);
             (Config.Mm_xmm, `Write n);
             (Config.Mm_xmm, `Upgrade n);
           ])
         readers)
  in
  let rec zip readers ms =
    match (readers, ms) with
    | [], [] -> []
    | n :: readers, aw :: au :: xw :: xu :: ms ->
      (n, aw, au, xw, xu) :: zip readers ms
    | _ -> assert false
  in
  zip readers measured
