module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map
module Stats = Asvm_simcore.Stats

type result = {
  chain : int;
  mean_fault_ms : float;
  total_ms : float;
  faults : int;
  metrics : Asvm_obs.Metrics.snapshot;
}

let measure ~mm ~chain ?(pages = 16) ?(extra_nodes = 0) ?(tweak = Fun.id)
    ?(inspect = ignore) ?(on_start = ignore) () =
  if chain < 1 then invalid_arg "Copy_chain.measure: chain < 1";
  if extra_nodes < 0 then invalid_arg "Copy_chain.measure: extra_nodes < 0";
  let nodes = chain + 1 + extra_nodes in
  let config = tweak (Config.with_mm (Config.default ~nodes) mm) in
  let cl = Cluster.create config in
  let wpp = (Cluster.config cl).Config.vm.words_per_page in
  (* the source task initializes the whole region on node 0 *)
  let t0 = Cluster.create_task cl ~node:0 in
  let obj = Cluster.create_private_object cl ~node:0 ~size_pages:pages in
  Cluster.map cl ~task:t0 ~obj ~start:0 ~npages:pages
    ~inherit_:Address_map.Inherit_copy;
  for p = 0 to pages - 1 do
    let ok = ref false in
    Cluster.write_word cl ~task:t0 ~addr:(p * wpp) ~value:(1000 + p) (fun () ->
        ok := true);
    Cluster.run cl;
    assert !ok
  done;
  (* spawn the chain of copies across the nodes *)
  let current = ref t0 in
  for stage = 1 to chain do
    let next = ref None in
    Cluster.fork cl ~task:!current ~dst_node:stage (fun c -> next := Some c);
    Cluster.run cl;
    current := Option.get !next
  done;
  let last = !current in
  (* fault every page of the region on the last node *)
  on_start cl;
  let t_start = Cluster.now cl in
  let tally = Stats.Tally.create () in
  for p = 0 to pages - 1 do
    let f0 = Cluster.now cl in
    let got = ref None in
    Cluster.read_word cl ~task:last ~addr:(p * wpp) (fun v -> got := Some v);
    Cluster.run cl;
    (match !got with
    | Some v when v = 1000 + p -> ()
    | Some v -> failwith (Printf.sprintf "copy chain returned %d for page %d" v p)
    | None -> failwith "copy chain fault did not complete");
    Stats.Tally.add tally (Cluster.now cl -. f0)
  done;
  inspect cl;
  {
    chain;
    mean_fault_ms = Stats.Tally.mean tally;
    total_ms = Cluster.now cl -. t_start;
    faults = pages;
    metrics = Cluster.metrics_snapshot cl;
  }

let figure11 ~mm ~chains ?(pages = 16) ?jobs () =
  (* each chain length is an independent simulation: a pure pool job *)
  let results =
    Asvm_runner.Runner.map ?jobs
      (fun chain -> measure ~mm ~chain ~pages ())
      chains
  in
  let series = Stats.Series.create "fault latency vs chain length" in
  (* the paper's model counts stages beyond the first fork: lb is the
     basic remote copy-on-access latency, la the cost per additional
     node the fault is forwarded across *)
  List.iter
    (fun r ->
      Stats.Series.add series ~x:(float_of_int (r.chain - 1)) ~y:r.mean_fault_ms)
    results;
  (results, Stats.Series.linear_fit series)
