module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map
module Vm = Asvm_machvm.Vm
module Rng = Asvm_simcore.Rng

type params = { cells : int; nodes : int; iterations : int; seed : int }

let default_params ~cells ~nodes = { cells; nodes; iterations = 100; seed = 7 }

type result = {
  params : params;
  seconds : float;
  faults : int;
  protocol_messages : int;
  metrics : Asvm_obs.Metrics.snapshot;
}

let cell_bytes = 224
let cells_per_page = 8192 / cell_bytes (* 36 *)
(* 43.6 s / (64000 cells * 100 iterations), the paper's sequential rate *)
let compute_us_per_cell_iteration = 6.8125

let data_pages ~cells = ((cells + cells_per_page - 1) / cells_per_page) + 1

let fits ~cells ~nodes ~memory_pages_per_node =
  data_pages ~cells <= nodes * memory_pages_per_node

(* ------------------------------------------------------------------ *)
(* Page-granular benchmark                                            *)
(* ------------------------------------------------------------------ *)

(* The Split-C EM3D generator allocates remote neighbour lists with
   locality: the remote endpoints of a node's edges cluster in boundary
   windows of its partner nodes. We compile the sharing pattern into,
   per node and per array (E then H), the set of remote pages it reads
   each phase. The number of distinct remote pages grows slowly with
   the per-node problem size (each boundary page serves many edges). *)
type plan = {
  own_e : int list;  (** pages this node writes in the E phase *)
  own_h : int list;
  read_h : int list;  (** remote H pages read in the E phase *)
  read_e : int list;  (** remote E pages read in the H phase *)
  cells_per_node : int;
}

let slice ~pages ~nodes ~node ~base =
  let per = pages / nodes and rem = pages mod nodes in
  let start = (node * per) + min node rem in
  let len = per + if node < rem then 1 else 0 in
  List.init len (fun i -> base + start + i)

let window_pages ~pages_per_node =
  (* calibrated against Table 3: roughly constant boundary traffic,
     growing mildly with the per-node problem size *)
  min 64 (16 + (pages_per_node / 64))

let make_plans ~params ~pages_per_array =
  let { nodes; seed; cells; _ } = params in
  let rng = Rng.create seed in
  let e_base = 0 and h_base = pages_per_array in
  let plans =
    Array.init nodes (fun node ->
        {
          own_e = slice ~pages:pages_per_array ~nodes ~node ~base:e_base;
          own_h = slice ~pages:pages_per_array ~nodes ~node ~base:h_base;
          read_h = [];
          read_e = [];
          cells_per_node = cells / nodes;
        })
  in
  if nodes > 1 then begin
    let pages_per_node = (2 * pages_per_array) / nodes in
    let w = window_pages ~pages_per_node in
    let partners = 8 in
    let pick_windows node ~from_array =
      (* [partners] windows of w/partners pages each, on random other
         nodes, within the partner's slice of the opposite array *)
      let per_window = max 1 (w / partners) in
      let acc = ref [] in
      for _ = 1 to partners do
        let partner =
          let p = Rng.int rng (nodes - 1) in
          if p >= node then p + 1 else p
        in
        let base = if from_array = `E then 0 else pages_per_array in
        let sl = slice ~pages:pages_per_array ~nodes ~node:partner ~base in
        match sl with
        | [] -> ()
        | first :: _ ->
          let len = List.length sl in
          let start = Rng.int rng (max 1 (len - per_window + 1)) in
          for j = 0 to min per_window len - 1 do
            let page = first + ((start + j) mod len) in
            if not (List.mem page !acc) then acc := page :: !acc
          done
      done;
      !acc
    in
    Array.iteri
      (fun node plan ->
        plans.(node) <-
          {
            plan with
            read_h = pick_windows node ~from_array:`H;
            read_e = pick_windows node ~from_array:`E;
          })
      plans
  end;
  plans

let run ~mm ?memory_pages ?(internode_paging = true) ?audit ?(tweak = Fun.id)
    ?(inspect = ignore) ?(on_start = ignore) params =
  let { cells; nodes; iterations; _ } = params in
  if cells <= 0 || nodes <= 0 || iterations <= 0 then
    invalid_arg "Em3d.run: bad parameters";
  let pages_per_array =
    (((cells + 1) / 2) + cells_per_page - 1) / cells_per_page
  in
  let config = Config.with_mm (Config.default ~nodes) mm in
  let config =
    match memory_pages with
    | Some pages -> Config.with_memory_pages config pages
    | None -> config
  in
  let config =
    tweak { config with asvm = { config.asvm with internode_paging } }
  in
  let cl = Cluster.create config in
  let sharers = List.init nodes Fun.id in
  let obj =
    Cluster.create_shared_object cl ~size_pages:(2 * pages_per_array) ~sharers ()
  in
  let tasks =
    Array.init nodes (fun node ->
        let task = Cluster.create_task cl ~node in
        Cluster.map cl ~task ~obj ~start:0 ~npages:(2 * pages_per_array)
          ~inherit_:Address_map.Inherit_share;
        task)
  in
  let plans = make_plans ~params ~pages_per_array in
  let barrier = Cluster.Barrier.create cl ~parties:nodes in
  let compute_ms plan =
    float_of_int plan.cells_per_node /. 2. *. compute_us_per_cell_iteration
    /. 1000.
  in
  let engine = Cluster.engine cl in
  (* one phase: read the remote boundary pages, update (write) the own
     pages, charge the computation, then synchronize *)
  let phase task plan ~reads ~writes k =
    let rec touch_all want pages k =
      match pages with
      | [] -> k ()
      | vpage :: rest ->
        Cluster.touch cl ~task ~vpage ~want (fun () -> touch_all want rest k)
    in
    touch_all Prot.Read_only reads (fun () ->
        touch_all Prot.Read_write writes (fun () ->
            Asvm_simcore.Engine.schedule engine ~delay:(compute_ms plan)
              (fun () -> Cluster.Barrier.arrive barrier k)))
  in
  let finished = ref 0 in
  (* initialization: every node materializes its own pages (not part of
     the measured time, as in the paper) *)
  let t_start = ref 0. in
  Array.iteri
    (fun node task ->
      let plan = plans.(node) in
      let rec iterate i k =
        if i >= iterations then k ()
        else
          phase task plan ~reads:plan.read_h ~writes:plan.own_e (fun () ->
              phase task plan ~reads:plan.read_e ~writes:plan.own_h (fun () ->
                  iterate (i + 1) k))
      in
      let init () =
        let rec claim pages k =
          match pages with
          | [] -> k ()
          | vpage :: rest ->
            Cluster.touch cl ~task ~vpage ~want:Prot.Read_write (fun () ->
                claim rest k)
        in
        claim (plan.own_e @ plan.own_h) (fun () ->
            Cluster.Barrier.arrive barrier (fun () ->
                if node = 0 then t_start := Cluster.now cl;
                iterate 0 (fun () -> incr finished)))
      in
      init ())
    tasks;
  on_start cl;
  Cluster.run cl;
  if !finished <> nodes then failwith "Em3d.run: nodes did not finish";
  (match (audit, Cluster.backend cl) with
  | Some f, `Asvm a -> f a
  | Some _, `Xmm _ | None, _ -> ());
  inspect cl;
  let faults =
    Array.fold_left (fun acc vm -> acc + Vm.faults vm) 0
      (Array.init nodes (Cluster.node_vm cl))
  in
  {
    params;
    seconds = (Cluster.now cl -. !t_start) /. 1000.;
    faults;
    protocol_messages = Cluster.protocol_messages cl;
    metrics = Cluster.metrics_snapshot cl;
  }

(* ------------------------------------------------------------------ *)
(* Word-level validation                                               *)
(* ------------------------------------------------------------------ *)

(* Small instance, one word per cell: E cells at addresses [0, n/2),
   H cells at [n/2, n). Every value computation runs through the real
   distributed memory; the result must equal a sequential reference. *)
let validate ~mm ~cells ~nodes ~iterations ~seed =
  let half = cells / 2 in
  let rng = Rng.create seed in
  let edges =
    Array.init cells (fun _ -> Array.init 3 (fun _ -> Rng.int rng half))
  in
  (* sequential reference *)
  let reference () =
    let e = Array.make half 0 and h = Array.make half 0 in
    for c = 0 to half - 1 do
      e.(c) <- c + 1;
      h.(c) <- (2 * c) + 1
    done;
    for _ = 1 to iterations do
      for c = 0 to half - 1 do
        e.(c) <- Array.fold_left (fun acc n -> acc + h.(n)) 0 edges.(c) mod 1000003
      done;
      for c = 0 to half - 1 do
        h.(c) <-
          Array.fold_left (fun acc n -> acc + e.(n)) 0 edges.(half + c) mod 1000003
      done
    done;
    (e, h)
  in
  let config = Config.with_mm (Config.default ~nodes) mm in
  let cl = Cluster.create config in
  let wpp = config.Config.vm.words_per_page in
  let pages = ((cells + wpp - 1) / wpp) + 1 in
  let sharers = List.init nodes Fun.id in
  let obj = Cluster.create_shared_object cl ~size_pages:pages ~sharers () in
  let tasks =
    Array.init nodes (fun node ->
        let task = Cluster.create_task cl ~node in
        Cluster.map cl ~task ~obj ~start:0 ~npages:pages
          ~inherit_:Address_map.Inherit_share;
        task)
  in
  let barrier = Cluster.Barrier.create cl ~parties:nodes in
  let lo node = node * half / nodes in
  let hi node = (node + 1) * half / nodes in
  let finished = ref 0 in
  Array.iteri
    (fun node task ->
      let rd addr k = Cluster.read_word cl ~task ~addr k in
      let wr addr value k = Cluster.write_word cl ~task ~addr ~value k in
      (* update cells [which + c] for c in [lo, hi) from the opposite
         array at base [src_base] *)
      let update_range ~dst_base ~src_base k =
        let rec cell c k =
          if c >= hi node then k ()
          else
            let rec sum j acc k =
              if j >= 3 then k acc
              else
                rd (src_base + edges.(dst_base + c).(j)) (fun v ->
                    sum (j + 1) (acc + v) k)
            in
            sum 0 0 (fun total ->
                wr
                  ((if dst_base = 0 then 0 else half) + c)
                  (total mod 1000003)
                  (fun () -> cell (c + 1) k))
        in
        cell (lo node) k
      in
      let init k =
        let rec go c k =
          if c >= hi node then k ()
          else
            wr c (c + 1) (fun () ->
                wr (half + c) ((2 * c) + 1) (fun () -> go (c + 1) k))
        in
        go (lo node) k
      in
      let rec iterate i k =
        if i >= iterations then k ()
        else
          update_range ~dst_base:0 ~src_base:half (fun () ->
              Cluster.Barrier.arrive barrier (fun () ->
                  update_range ~dst_base:half ~src_base:0 (fun () ->
                      Cluster.Barrier.arrive barrier (fun () ->
                          iterate (i + 1) k))))
      in
      init (fun () ->
          Cluster.Barrier.arrive barrier (fun () ->
              iterate 0 (fun () -> incr finished))))
    tasks;
  Cluster.run cl;
  if !finished <> nodes then failwith "Em3d.validate: nodes did not finish";
  let e_ref, h_ref = reference () in
  let ok = ref true in
  let check_task = tasks.(0) in
  for c = 0 to half - 1 do
    let got = ref (-1) in
    Cluster.read_word cl ~task:check_task ~addr:c (fun v -> got := v);
    Cluster.run cl;
    if !got <> e_ref.(c) then ok := false;
    Cluster.read_word cl ~task:check_task ~addr:(half + c) (fun v -> got := v);
    Cluster.run cl;
    if !got <> h_ref.(c) then ok := false
  done;
  !ok

let sweep ?jobs cells =
  (* each (mm, memory, params) configuration is an independent
     simulation: a pure pool job, merged in submission order *)
  Asvm_runner.Runner.map ?jobs
    (fun (mm, memory_pages, params) -> run ~mm ?memory_pages params)
    cells
