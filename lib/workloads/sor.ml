module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map
module Vm = Asvm_machvm.Vm

type params = { grid : int; nodes : int; iterations : int }

type result = { params : params; seconds : float; faults : int }

(* 8-byte grid cells: 1024 per 8 KB page *)
let cells_per_page = 1024
let compute_us_per_cell = 0.35

(* ------------------------------------------------------------------ *)
(* Page-granular benchmark                                            *)
(* ------------------------------------------------------------------ *)

let run ~mm ?memory_pages { grid; nodes; iterations } =
  if grid <= 0 || nodes <= 0 || iterations <= 0 then
    invalid_arg "Sor.run: bad parameters";
  let total_cells = grid * grid in
  let pages = (total_cells + cells_per_page - 1) / cells_per_page in
  let config = Config.with_mm (Config.default ~nodes) mm in
  let config =
    match memory_pages with
    | Some m -> Config.with_memory_pages config m
    | None -> config
  in
  let cl = Cluster.create config in
  let sharers = List.init nodes Fun.id in
  let obj = Cluster.create_shared_object cl ~size_pages:pages ~sharers () in
  let tasks =
    Array.init nodes (fun node ->
        let task = Cluster.create_task cl ~node in
        Cluster.map cl ~task ~obj ~start:0 ~npages:pages
          ~inherit_:Address_map.Inherit_share;
        task)
  in
  (* strip partition: node n owns pages [lo, hi); it reads the last page
     of the strip above and the first page of the strip below *)
  let strip node =
    let per = pages / nodes and rem = pages mod nodes in
    let lo = (node * per) + min node rem in
    let hi = lo + per + if node < rem then 1 else 0 in
    (lo, hi)
  in
  let barrier = Cluster.Barrier.create cl ~parties:nodes in
  let engine = Cluster.engine cl in
  let compute_ms =
    float_of_int (total_cells / nodes) *. compute_us_per_cell /. 1000.
  in
  let finished = ref 0 in
  let t_start = ref 0. in
  Array.iteri
    (fun node task ->
      let lo, hi = strip node in
      let own = List.init (hi - lo) (fun i -> lo + i) in
      let neighbours =
        (if node > 0 then [ snd (strip (node - 1)) - 1 ] else [])
        @ (if node < nodes - 1 then [ fst (strip (node + 1)) ] else [])
        |> List.filter (fun p -> p >= 0 && p < pages)
      in
      let rec touch_all want pages k =
        match pages with
        | [] -> k ()
        | vpage :: rest ->
          Cluster.touch cl ~task ~vpage ~want (fun () -> touch_all want rest k)
      in
      let rec iterate i k =
        if i >= iterations then k ()
        else
          touch_all Prot.Read_only neighbours (fun () ->
              touch_all Prot.Read_write own (fun () ->
                  Asvm_simcore.Engine.schedule engine ~delay:compute_ms
                    (fun () ->
                      Cluster.Barrier.arrive barrier (fun () -> iterate (i + 1) k))))
      in
      touch_all Prot.Read_write own (fun () ->
          Cluster.Barrier.arrive barrier (fun () ->
              if node = 0 then t_start := Cluster.now cl;
              iterate 0 (fun () -> incr finished))))
    tasks;
  Cluster.run cl;
  if !finished <> nodes then failwith "Sor.run: nodes did not finish";
  let faults =
    List.fold_left
      (fun acc n -> acc + Vm.faults (Cluster.node_vm cl n))
      0 sharers
  in
  {
    params = { grid; nodes; iterations };
    seconds = (Cluster.now cl -. !t_start) /. 1000.;
    faults;
  }

(* ------------------------------------------------------------------ *)
(* Word-level validation                                              *)
(* ------------------------------------------------------------------ *)

(* Jacobi-style integer stencil: cell <- (N + S + E + W) / 4 over the
   interior, borders fixed. Row r of the grid lives at words
   [r*grid, (r+1)*grid). *)
let validate ~mm ~grid ~nodes ~iterations =
  let reference () =
    let g = Array.init (grid * grid) (fun i -> (i * 37) mod 1009) in
    let next = Array.copy g in
    for _ = 1 to iterations do
      for r = 1 to grid - 2 do
        for c = 1 to grid - 2 do
          let at r c = g.((r * grid) + c) in
          next.((r * grid) + c) <-
            (at (r - 1) c + at (r + 1) c + at r (c - 1) + at r (c + 1)) / 4
        done
      done;
      Array.blit next 0 g 0 (grid * grid)
    done;
    g
  in
  let config = Config.with_mm (Config.default ~nodes) mm in
  let cl = Cluster.create config in
  let wpp = config.Config.vm.words_per_page in
  let pages = ((grid * grid) + wpp - 1) / wpp + 1 in
  let sharers = List.init nodes Fun.id in
  (* double buffering: two grids in one object *)
  let obj = Cluster.create_shared_object cl ~size_pages:(2 * pages) ~sharers () in
  let buf_b = pages * wpp in
  let tasks =
    Array.init nodes (fun node ->
        let task = Cluster.create_task cl ~node in
        Cluster.map cl ~task ~obj ~start:0 ~npages:(2 * pages)
          ~inherit_:Address_map.Inherit_share;
        task)
  in
  let barrier = Cluster.Barrier.create cl ~parties:nodes in
  let rows node =
    let interior = grid - 2 in
    let per = interior / nodes and rem = interior mod nodes in
    let lo = 1 + (node * per) + min node rem in
    (lo, lo + per + (if node < rem then 1 else 0))
  in
  let finished = ref 0 in
  Array.iteri
    (fun node task ->
      let rd addr k = Cluster.read_word cl ~task ~addr k in
      let wr addr v k = Cluster.write_word cl ~task ~addr ~value:v k in
      let lo, hi = rows node in
      let step ~src ~dst r c k =
        let at r c k = rd (src + (r * grid) + c) k in
        at (r - 1) c (fun n ->
            at (r + 1) c (fun s ->
                at r (c - 1) (fun w ->
                    at r (c + 1) (fun e ->
                        wr (dst + (r * grid) + c) ((n + s + w + e) / 4) k))))
      in
      let sweep ~src ~dst k =
        let rec row r k =
          if r >= hi then k ()
          else
            let rec col c k =
              if c >= grid - 1 then k ()
              else step ~src ~dst r c (fun () -> col (c + 1) k)
            in
            col 1 (fun () -> row (r + 1) k)
        in
        row lo k
      in
      (* copy borders + initialize own rows in both buffers *)
      let init k =
        let rec go i k =
          if i >= grid * grid then k ()
          else
            let v = (i * 37) mod 1009 in
            let r = i / grid in
            if (r >= lo && r < hi) || (node = 0 && (r < 1 || r >= grid - 1))
            then wr i v (fun () -> wr (buf_b + i) v (fun () -> go (i + 1) k))
            else go (i + 1) k
        in
        go 0 k
      in
      let rec iterate i ~src ~dst k =
        if i >= iterations then k ()
        else
          sweep ~src ~dst (fun () ->
              Cluster.Barrier.arrive barrier (fun () ->
                  iterate (i + 1) ~src:dst ~dst:src k))
      in
      init (fun () ->
          Cluster.Barrier.arrive barrier (fun () ->
              iterate 0 ~src:0 ~dst:buf_b (fun () -> incr finished))))
    tasks;
  Cluster.run cl;
  if !finished <> nodes then failwith "Sor.validate: nodes did not finish";
  let expected = reference () in
  let final_base = if iterations mod 2 = 0 then 0 else buf_b in
  let ok = ref true in
  for i = 0 to (grid * grid) - 1 do
    let got = ref (-1) in
    Cluster.read_word cl ~task:tasks.(0) ~addr:(final_base + i) (fun v ->
        got := v);
    Cluster.run cl;
    if !got <> expected.(i) then ok := false
  done;
  !ok

let sweep ?jobs cells =
  (* each (mm, params) configuration is an independent simulation: a
     pure pool job, merged in submission order *)
  Asvm_runner.Runner.map ?jobs (fun (mm, params) -> run ~mm params) cells
