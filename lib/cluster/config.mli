(** Cluster-wide configuration: which memory manager runs, and every
    cost constant of the simulated Paragon (see DESIGN.md section 5). *)

(** The distributed memory manager under test. *)
type mm = Mm_asvm | Mm_xmm

type t = {
  nodes : int;
  mm : mm;
  seed : int;
  vm : Asvm_machvm.Vm_config.t;
  net : Asvm_mesh.Network.config;
  asvm : Asvm_core.Asvm.config;
  norma : Asvm_norma.Ipc.config;
  disk : Asvm_pager.Disk.config;
  pager : Asvm_pager.Store_pager.config;
  io_node : int;  (** node hosting pagers and their disk *)
  fork_threads : int;  (** XMM internal-pager thread pool per node *)
  barrier_ms : float;  (** cost of one barrier release *)
  trace_capacity : int option;
      (** keep the most recent N protocol events in the in-memory ring
          (see {!Asvm_obs.Trace}); [None] disables the ring unless
          [trace_out] is set *)
  trace_out : string option;
      (** stream every trace event as one JSON object per line to this
          file (see [docs/OBSERVABILITY.md] for the schema) *)
  net_interposer : Asvm_mesh.Network.interposer option;
      (** chaos fault-injection hook installed on the mesh at cluster
          creation, perturbing {e every} transport (STS and NORMA alike);
          [None] (default) leaves the network perfect.  Compile one from
          a fault plan with [Asvm_chaos.Plan.net_interposer]; see
          [docs/RELIABILITY.md] *)
}

(** Paragon GP defaults: 16 MB nodes (~9 MB for user pages), ASVM. *)
val default : nodes:int -> t

val with_mm : t -> mm -> t

(** Same configuration with [pages] of user memory per node. *)
val with_memory_pages : t -> int -> t

val mm_name : mm -> string
