type mm = Mm_asvm | Mm_xmm

type t = {
  nodes : int;
  mm : mm;
  seed : int;
  vm : Asvm_machvm.Vm_config.t;
  net : Asvm_mesh.Network.config;
  asvm : Asvm_core.Asvm.config;
  norma : Asvm_norma.Ipc.config;
  disk : Asvm_pager.Disk.config;
  pager : Asvm_pager.Store_pager.config;
  io_node : int;
  fork_threads : int;
  barrier_ms : float;
  trace_capacity : int option;
  trace_out : string option;
  net_interposer : Asvm_mesh.Network.interposer option;
}

let default ~nodes =
  {
    nodes;
    mm = Mm_asvm;
    seed = 42;
    vm = Asvm_machvm.Vm_config.default;
    net = Asvm_mesh.Network.paragon_config;
    asvm = Asvm_core.Asvm.default_config;
    norma = Asvm_norma.Ipc.default_config;
    disk = Asvm_pager.Disk.default_config;
    pager = Asvm_pager.Store_pager.default_config;
    io_node = 0;
    fork_threads = 16;
    barrier_ms = 0.4;
    trace_capacity = None;
    trace_out = None;
    net_interposer = None;
  }

let with_mm t mm = { t with mm }

let with_memory_pages t pages =
  { t with vm = Asvm_machvm.Vm_config.with_memory t.vm pages }

let mm_name = function Mm_asvm -> "ASVM" | Mm_xmm -> "XMM"
