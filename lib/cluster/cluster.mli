(** A simulated multicomputer: N nodes, each running the Mach VM model,
    connected by the mesh, managed by either ASVM or the XMM baseline.

    This is the library's main entry point: create a cluster, create
    shared or private memory, create tasks, touch/read/write memory and
    fork tasks across nodes — all asynchronously against the simulated
    clock. *)

type t

type task = { tk_node : int; tk_id : Asvm_machvm.Ids.task_id }

val create : Config.t -> t

val config : t -> Config.t
val engine : t -> Asvm_simcore.Engine.t
val now : t -> float

(** Run the event loop until it drains (or [until]). *)
val run : ?until:float -> t -> unit

val node_vm : t -> int -> Asvm_machvm.Vm.t

(** The memory manager backend, for manager-specific statistics. *)
val backend :
  t -> [ `Asvm of Asvm_core.Asvm.t | `Xmm of Asvm_xmm.Xmm.t ]

val default_pager : t -> Asvm_pager.Store_pager.t

(** The structured trace, when [Config.trace_capacity] or
    [Config.trace_out] is set. *)
val trace : t -> Asvm_obs.Trace.t option

(** The cluster-wide metric registry, shared by the network layer, the
    transports and the memory manager. Always present; metrics cost one
    hash lookup per protocol message. *)
val metrics : t -> Asvm_obs.Metrics.Registry.t

(** Snapshot every metric, after refreshing the [engine.*] profiling
    gauges (event count, simulated ms, host CPU seconds). *)
val metrics_snapshot : t -> Asvm_obs.Metrics.snapshot

(** {1 Memory objects} *)

(** Create a distributed memory object shared by [sharers]. Anonymous
    (zero-filled) contents; backed by the default pager on the I/O node.
    [manager_node] places the XMM centralized manager (default: the I/O
    node); ASVM ignores it. *)
val create_shared_object :
  t ->
  size_pages:int ->
  sharers:int list ->
  ?manager_node:int ->
  ?forwarding:Asvm_core.Asvm.forwarding ->
  unit ->
  Asvm_machvm.Ids.obj_id

(** Create a memory-mapped file object: dedicated file pager(s) on the
    I/O node(s), preloaded with [data word] for every word of the file
    ([data] absent = new file = zeros supplied from memory).
    [stripes > 1] spreads the file over that many pager tasks on
    distinct nodes, served round-robin by page — the PFS-style striping
    of the paper's section 6 (ASVM only). *)
val create_file_object :
  t ->
  size_pages:int ->
  sharers:int list ->
  ?manager_node:int ->
  ?data:(int -> int) ->
  ?stripes:int ->
  unit ->
  Asvm_machvm.Ids.obj_id

(** Create a node-private anonymous object (no manager involvement until
    it is inherited across nodes by a fork). *)
val create_private_object :
  t -> node:int -> size_pages:int -> Asvm_machvm.Ids.obj_id

(** {1 Tasks} *)

val create_task : t -> node:int -> task

(** Map an object into a task. [inherit_] controls fork behaviour:
    [Inherit_share] children share; [Inherit_copy] children get a
    delayed copy. @raise Invalid_argument on overlap. *)
val map :
  t ->
  task:task ->
  obj:Asvm_machvm.Ids.obj_id ->
  start:int ->
  npages:int ->
  inherit_:Asvm_machvm.Address_map.inheritance ->
  unit

(** {1 Memory access (asynchronous)} *)

val touch :
  t -> task:task -> vpage:int -> want:Asvm_machvm.Prot.t -> (unit -> unit) -> unit

val read_word : t -> task:task -> addr:int -> (int -> unit) -> unit
val write_word : t -> task:task -> addr:int -> value:int -> (unit -> unit) -> unit

(** {1 Fork} *)

(** [fork t ~task ~dst_node k] creates a child task on [dst_node] whose
    address space inherits the parent's per the entries' inheritance
    attributes, and passes it to [k] when the copy relationships are
    established.

    Under ASVM this follows paper section 3.7: a shared mapping of each
    inherited object is established on the destination, a local
    asymmetric copy is made there, and all nodes sharing the source mark
    their resident pages read-only. Node-local source objects are first
    promoted to distributed ones.

    Under XMM it follows section 2.3.3: a local copy of the source
    address space, re-exported through an internal pager; faults from
    the child cross one NORMA round trip per copy-chain stage.

    @raise Failure under XMM when an entry would copy-inherit a shared
    object — the NMK13 semantic gap the paper notes in section 2.3. *)
val fork : t -> task:task -> dst_node:int -> (task -> unit) -> unit

(** {1 Synchronization} *)

module Barrier : sig
  type cluster = t
  type t

  val create : cluster -> parties:int -> t

  (** [arrive b k]: [k] fires once all parties arrived (plus the
      configured barrier cost). The barrier then resets for reuse. *)
  val arrive : t -> (unit -> unit) -> unit
end

(** {1 Crash and rejoin (see [docs/AVAILABILITY.md])} *)

(** Is [node] currently crashed (down in the mesh liveness registry)? *)
val node_down : t -> node:int -> bool

(** Can [node] be crashed right now? False for out-of-range nodes, nodes
    already down, and {e pinned} nodes — those hosting a pager, an XMM
    manager, or an XMM fork source — whose loss the failure model does
    not cover.  The chaos planner uses this to pick victims. *)
val crashable : t -> node:int -> bool

(** Crash [node] whole: marks it down in the mesh liveness registry
    (messages in flight divert to the transports' dead-letter hooks),
    drops its kernel state ({!Asvm_machvm.Vm.crash_reset}), and runs the
    backend's recovery — ownership re-election under ASVM
    ({!Asvm_core.Asvm.crash_node}), manager-side bookkeeping under XMM
    ({!Asvm_xmm.Xmm.crash_node}).  Increments the [chaos.crashes]
    counter and emits a [crash] trace note.
    @raise Invalid_argument if the node is pinned, already down, or out
    of range — check {!crashable} first. *)
val crash_node : t -> node:int -> unit

(** Re-admit a crashed node with empty caches: marks it up (with a new
    incarnation, so stale messages to its previous life stay dead) and
    re-drives the kernel faults that survived the crash.  Increments
    [chaos.rejoins].
    @raise Invalid_argument if the node is not down. *)
val rejoin_node : t -> node:int -> unit

(** {1 Statistics} *)

(** The pager task(s) behind an object created through this module. *)
val object_pagers :
  t -> Asvm_machvm.Ids.obj_id -> Asvm_pager.Store_pager.t list

(** Every distributed object this cluster knows about, with its sharer
    set, in ascending object order — the universe the chaos invariant
    checker audits. *)
val registered_objects :
  t -> (Asvm_machvm.Ids.obj_id * int list) list

(** {1 Range locking (ASVM only; paper section 6)} *)

(** [lock_range t ~task ~start ~npages k]: acquire write ownership of
    every page in the range and pin it to this node; remote requests
    queue at the owner until {!unlock_range}. Gives the atomicity a
    striped Unix filesystem needs for read/write system calls.
    @raise Failure under XMM, which has no such primitive. *)
val lock_range : t -> task:task -> start:int -> npages:int -> (unit -> unit) -> unit

val unlock_range : t -> task:task -> start:int -> npages:int -> unit

(** Messages sent by the memory-management protocol (XMMI or ASVM). *)
val protocol_messages : t -> int

val network_bytes : t -> int
