module Engine = Asvm_simcore.Engine
module Topology = Asvm_mesh.Topology
module Network = Asvm_mesh.Network
module Vm = Asvm_machvm.Vm
module Vm_object = Asvm_machvm.Vm_object
module Prot = Asvm_machvm.Prot
module Contents = Asvm_machvm.Contents
module Ids = Asvm_machvm.Ids
module Address_map = Asvm_machvm.Address_map
module Disk = Asvm_pager.Disk
module Store_pager = Asvm_pager.Store_pager
module Asvm = Asvm_core.Asvm
module Xmm = Asvm_xmm.Xmm
module Metrics = Asvm_obs.Metrics
module Trace = Asvm_obs.Trace

type backend = B_asvm of Asvm.t | B_xmm of Xmm.t

type task = { tk_node : int; tk_id : Ids.task_id }

(* Engine-profile gauges, resolved once at [create] so snapshotting
   never goes through the registry's string lookup. *)
type engine_gauges = {
  g_events : Metrics.Gauge.t;
  g_sim_ms : Metrics.Gauge.t;
  g_cpu_s : Metrics.Gauge.t;
  g_cpu_us_per_sim_ms : Metrics.Gauge.t;
}

(* Paging-pressure gauges, summed over every node VM (and every pager
   for [pager.stores]) at snapshot time — the serve workload's eviction
   and pageout-daemon accounting. *)
type vm_gauges = {
  g_evictions : Metrics.Gauge.t;
  g_pageout_runs : Metrics.Gauge.t;
  g_pageout_evictions : Metrics.Gauge.t;
  g_pager_stores : Metrics.Gauge.t;
}

(* Page-store accounting. Contents counts snapshots / COW
   materializations / checksum-cache hits per domain; each snapshot
   folds the delta since the previous one into this cluster's
   counters. A cell runs one cluster per domain, so the attribution is
   exact under the parallel runner. *)
type contents_counters = {
  c_snapshots : Metrics.Counter.t;
  c_cow : Metrics.Counter.t;
  c_sum_hits : Metrics.Counter.t;
  mutable c_base : Contents.stats;
}

type t = {
  config : Config.t;
  engine : Engine.t;
  net : Network.t;
  ids : Ids.Alloc.t;
  vms : Vm.t array;
  backend : backend;
  default_pager : Store_pager.t;
  io_disk : Disk.t;
  metrics : Metrics.Registry.t;
  engine_gauges : engine_gauges;
  vm_gauges : vm_gauges;
  contents_counters : contents_counters;
  trace : Trace.t option;
  (* distributed objects and their sharer sets *)
  registered : (Ids.obj_id, int list) Hashtbl.t;
  pagers : (Ids.obj_id, Store_pager.t list) Hashtbl.t;
  (* nodes that must not crash: pager/IO nodes always; under XMM also
     manager nodes and fork sources (the centralized single points of
     failure docs/AVAILABILITY.md documents) *)
  pinned : (int, string) Hashtbl.t;
}

let create (config : Config.t) =
  let engine = Engine.create () in
  let topo = Topology.create ~nodes:config.nodes in
  let metrics = Metrics.Registry.create () in
  let net = Network.create ~metrics engine config.net topo in
  Network.set_interposer net config.net_interposer;
  let ids = Ids.Alloc.create () in
  let io_disk = Disk.create engine config.disk in
  let default_pager =
    Store_pager.create engine ~node:config.io_node ~disk:io_disk config.pager
  in
  let backing = Store_pager.as_backing default_pager in
  let vms =
    Array.init config.nodes (fun node ->
        Vm.create ~engine ~node ~config:config.vm ~backing ~ids)
  in
  let trace =
    match (config.trace_capacity, config.trace_out) with
    | None, None -> None
    | capacity, out ->
      let tr = Trace.create ?capacity () in
      Option.iter
        (fun path -> Trace.set_jsonl tr (Some (open_out path)))
        out;
      Some tr
  in
  let backend =
    match config.mm with
    | Config.Mm_asvm ->
      B_asvm
        (Asvm.create ~net ~config:config.asvm ~vms
           ~words_per_page:config.vm.words_per_page ~metrics ?trace ())
    | Config.Mm_xmm ->
      B_xmm
        (Xmm.create ~net ~ipc_config:config.norma ~vms
           ~words_per_page:config.vm.words_per_page
           ~fork_threads:config.fork_threads ~metrics ?trace ())
  in
  {
    config;
    engine;
    net;
    ids;
    vms;
    backend;
    default_pager;
    io_disk;
    registered = Hashtbl.create 32;
    pagers = Hashtbl.create 32;
    pinned =
      (let p = Hashtbl.create 4 in
       Hashtbl.replace p config.io_node "hosts the default pager";
       p);
    metrics;
    engine_gauges =
      {
        g_events = Metrics.Registry.gauge metrics "engine.events";
        g_sim_ms = Metrics.Registry.gauge metrics "engine.sim_ms";
        g_cpu_s = Metrics.Registry.gauge metrics "engine.cpu_s";
        g_cpu_us_per_sim_ms =
          Metrics.Registry.gauge metrics "engine.cpu_us_per_sim_ms";
      };
    vm_gauges =
      {
        g_evictions = Metrics.Registry.gauge metrics "vm.evictions";
        g_pageout_runs = Metrics.Registry.gauge metrics "vm.pageout_runs";
        g_pageout_evictions =
          Metrics.Registry.gauge metrics "vm.pageout_evictions";
        g_pager_stores = Metrics.Registry.gauge metrics "pager.stores";
      };
    contents_counters =
      {
        c_snapshots = Metrics.Registry.counter metrics "contents.snapshots";
        c_cow =
          Metrics.Registry.counter metrics "contents.cow_materializations";
        c_sum_hits =
          Metrics.Registry.counter metrics "contents.checksum_cache_hits";
        c_base = Contents.stats ();
      };
    trace;
  }

let config t = t.config
let engine t = t.engine
let now t = Engine.now t.engine
let run ?until t = Engine.run ?until t.engine
let node_vm t node = t.vms.(node)

let backend t =
  match t.backend with B_asvm a -> `Asvm a | B_xmm x -> `Xmm x

let default_pager t = t.default_pager
let trace t = t.trace
let metrics t = t.metrics

let metrics_snapshot t =
  let p = Engine.profile t.engine in
  let g = t.engine_gauges in
  Metrics.Gauge.set g.g_events (float_of_int p.Engine.events);
  Metrics.Gauge.set g.g_sim_ms p.Engine.sim_ms;
  Metrics.Gauge.set g.g_cpu_s p.Engine.cpu_s;
  Metrics.Gauge.set g.g_cpu_us_per_sim_ms p.Engine.cpu_us_per_sim_ms;
  let cc = t.contents_counters in
  let cur = Contents.stats () in
  let base = cc.c_base in
  Metrics.Counter.incr ~by:(cur.Contents.snapshots - base.Contents.snapshots)
    cc.c_snapshots;
  Metrics.Counter.incr
    ~by:(cur.Contents.cow_materializations - base.Contents.cow_materializations)
    cc.c_cow;
  Metrics.Counter.incr
    ~by:(cur.Contents.checksum_cache_hits - base.Contents.checksum_cache_hits)
    cc.c_sum_hits;
  cc.c_base <- cur;
  let vg = t.vm_gauges in
  let sum_vms f = Array.fold_left (fun acc vm -> acc + f vm) 0 t.vms in
  Metrics.Gauge.set vg.g_evictions (float_of_int (sum_vms Vm.evictions));
  Metrics.Gauge.set vg.g_pageout_runs (float_of_int (sum_vms Vm.pageout_runs));
  Metrics.Gauge.set vg.g_pageout_evictions
    (float_of_int (sum_vms Vm.pageout_evictions));
  let distinct_pagers =
    Hashtbl.fold (fun _ ps acc -> ps @ acc) t.pagers [ t.default_pager ]
    |> List.fold_left
         (fun acc p -> if List.memq p acc then acc else p :: acc)
         []
  in
  Metrics.Gauge.set vg.g_pager_stores
    (float_of_int
       (List.fold_left
          (fun acc p -> acc + Store_pager.stores p)
          0 distinct_pagers));
  Metrics.Registry.snapshot t.metrics

(* ------------------------------------------------------------------ *)
(* Object creation                                                    *)
(* ------------------------------------------------------------------ *)

let make_reps t ~obj ~size_pages ~temporary nodes =
  List.iter
    (fun node ->
      match Vm.find_object t.vms.(node) obj with
      | Some _ -> ()
      | None -> ignore (Vm.create_object t.vms.(node) ~id:obj ~size_pages ~temporary))
    nodes

let register_backend t ~obj ~size_pages ~sharers ~manager_node ~pagers
    ~forwarding ~shadow =
  match t.backend with
  | B_asvm a ->
    Asvm.register_object a ~obj ~size_pages ~sharers ~pagers ?forwarding
      ?shadow ()
  | B_xmm x -> (
    match pagers with
    | [ pager ] ->
      Hashtbl.replace t.pinned manager_node "hosts an XMM manager";
      Xmm.register_shared_object x ~obj ~size_pages ~manager_node ~pager
        ~sharers
    | _ ->
      (* NMK13 XMM predates the paper's multiple-pager proposal *)
      failwith "Cluster: XMM supports a single pager per object")

let create_shared_object t ~size_pages ~sharers ?manager_node ?forwarding () =
  let obj = Ids.Alloc.fresh t.ids in
  let manager_node = Option.value manager_node ~default:t.config.io_node in
  make_reps t ~obj ~size_pages ~temporary:true sharers;
  register_backend t ~obj ~size_pages ~sharers ~manager_node
    ~pagers:[ t.default_pager ] ~forwarding ~shadow:None;
  Hashtbl.replace t.registered obj sharers;
  Hashtbl.replace t.pagers obj [ t.default_pager ];
  obj

let create_file_object t ~size_pages ~sharers ?manager_node ?data ?(stripes = 1)
    () =
  if stripes < 1 then invalid_arg "Cluster.create_file_object: stripes < 1";
  let obj = Ids.Alloc.fresh t.ids in
  let manager_node = Option.value manager_node ~default:t.config.io_node in
  (* [stripes] pager tasks on distinct I/O nodes, each with its own
     disk, serving pages round-robin (the PFS-style striping of paper
     section 6) *)
  let pagers =
    List.init stripes (fun s ->
        let node = (t.config.io_node + s) mod t.config.nodes in
        Hashtbl.replace t.pinned node "hosts a file pager";
        let disk =
          if s = 0 then t.io_disk else Disk.create t.engine t.config.disk
        in
        Store_pager.create t.engine ~node ~disk t.config.pager)
  in
  let pager_for page = List.nth pagers (page mod stripes) in
  (* A file's pages all exist at its pager, which is the supply ceiling
     of Table 2. Files with [data] live on the disk (the first supply of
     each page pays the media read); a new file without [data] is
     supplied as initially zero-filled pages straight from the pager. *)
  let wpp = t.config.vm.words_per_page in
  for page = 0 to size_pages - 1 do
    let c = Contents.zero ~words:wpp in
    match data with
    | Some f ->
      for w = 0 to wpp - 1 do
        Contents.set c w (f ((page * wpp) + w))
      done;
      Store_pager.preload (pager_for page) ~obj ~page c
    | None -> Store_pager.remember (pager_for page) ~obj ~page ~contents:c
  done;
  make_reps t ~obj ~size_pages ~temporary:false sharers;
  register_backend t ~obj ~size_pages ~sharers ~manager_node ~pagers
    ~forwarding:None ~shadow:None;
  Hashtbl.replace t.registered obj sharers;
  Hashtbl.replace t.pagers obj pagers;
  obj

let create_private_object t ~node ~size_pages =
  let obj = Ids.Alloc.fresh t.ids in
  ignore (Vm.create_object t.vms.(node) ~id:obj ~size_pages ~temporary:true);
  obj

(* ------------------------------------------------------------------ *)
(* Tasks and access                                                   *)
(* ------------------------------------------------------------------ *)

let create_task t ~node = { tk_node = node; tk_id = Vm.create_task t.vms.(node) }

let map t ~task ~obj ~start ~npages ~inherit_ =
  ignore
    (Vm.map t.vms.(task.tk_node) ~task:task.tk_id ~obj ~start ~npages
       ~obj_offset:0 ~inherit_)

let touch t ~task ~vpage ~want k =
  Vm.touch t.vms.(task.tk_node) ~task:task.tk_id ~vpage ~want k

let read_word t ~task ~addr k =
  Vm.read_word t.vms.(task.tk_node) ~task:task.tk_id ~addr k

let write_word t ~task ~addr ~value k =
  Vm.write_word t.vms.(task.tk_node) ~task:task.tk_id ~addr ~value k

(* ------------------------------------------------------------------ *)
(* Fork                                                               *)
(* ------------------------------------------------------------------ *)

let all_nodes t = List.init t.config.nodes Fun.id

(* Promote a node-local object (and, recursively, its local shadow
   parents) to a distributed ASVM object so a remote child can pull
   through it: the "shared mapping of the source object" of paper 3.7. *)
let rec ensure_distributed t a ~home ~obj k =
  if Hashtbl.mem t.registered obj then k ()
  else begin
    let o = Vm.get_object t.vms.(home) obj in
    let nodes = all_nodes t in
    let finish ~parent =
      make_reps t ~obj ~size_pages:o.Vm_object.size_pages
        ~temporary:o.Vm_object.temporary nodes;
      let shadow = Option.map (fun pid -> (pid, home)) parent in
      Asvm.register_object a ~obj ~size_pages:o.Vm_object.size_pages
        ~sharers:nodes ~pagers:[ t.default_pager ] ?shadow ();
      Hashtbl.replace t.registered obj nodes;
      Asvm.claim_residents a ~node:home ~obj;
      match parent with
      | None -> k ()
      | Some pid ->
        (* the copy leaves the parent's kernel chain and becomes a
           shared copy coordinated through push scans *)
        Vm.unsplice_copy t.vms.(home) ~src:pid ~copy:obj;
        Asvm.copy_promoted a ~src:pid ~copy:obj ~peer:home k
    in
    match o.Vm_object.shadow with
    | None -> finish ~parent:None
    | Some (pid, _off) ->
      ensure_distributed t a ~home ~obj:pid (fun () ->
          (* promoting the parent may have rewritten the local chain
             (sibling copies are respliced when an intermediate copy is
             unspliced): re-read our actual parent before leaving it *)
          let parent =
            match o.Vm_object.shadow with
            | Some (pid', _) -> Some pid'
            | None -> None
          in
          finish ~parent)
  end

let check_sharer t ~obj ~node =
  match Hashtbl.find_opt t.registered obj with
  | Some sharers when List.mem node sharers -> ()
  | Some _ ->
    failwith
      (Printf.sprintf "Cluster.fork: node %d is not a sharer of obj#%d" node obj)
  | None -> failwith "Cluster.fork: object not distributed"

let fork_asvm t a ~task ~dst_node k =
  let child = create_task t ~node:dst_node in
  let entries = Vm.entries t.vms.(task.tk_node) ~task:task.tk_id in
  let rec per_entry = function
    | [] -> Engine.schedule t.engine ~delay:0.2 (fun () -> k child)
    | (e : Address_map.entry) :: rest -> (
      match e.inherit_ with
      | Address_map.Inherit_none -> per_entry rest
      | Address_map.Inherit_share ->
        check_sharer t ~obj:e.obj ~node:dst_node;
        ignore
          (Vm.map t.vms.(dst_node) ~task:child.tk_id ~obj:e.obj ~start:e.start
             ~npages:e.npages ~obj_offset:e.obj_offset
             ~inherit_:Address_map.Inherit_share);
        per_entry rest
      | Address_map.Inherit_copy ->
        ensure_distributed t a ~home:task.tk_node ~obj:e.obj (fun () ->
            check_sharer t ~obj:e.obj ~node:dst_node;
            (* figure 8: shared mapping established, then a local copy
               through the standard VM mechanisms *)
            let c = Vm.make_asymmetric_copy t.vms.(dst_node) ~src:e.obj in
            Asvm.object_copied a ~src:e.obj ~peer:dst_node ~shared:None
              (fun () ->
                ignore
                  (Vm.map t.vms.(dst_node) ~task:child.tk_id
                     ~obj:c.Vm_object.id ~start:e.start ~npages:e.npages
                     ~obj_offset:e.obj_offset ~inherit_:Address_map.Inherit_copy);
                per_entry rest)))
  in
  per_entry entries

let fork_xmm t x ~task ~dst_node k =
  let src_node = task.tk_node in
  Hashtbl.replace t.pinned src_node "hosts an XMM internal pager (fork source)";
  let child = create_task t ~node:dst_node in
  let entries = Vm.entries t.vms.(src_node) ~task:task.tk_id in
  List.iter
    (fun (e : Address_map.entry) ->
      match e.inherit_ with
      | Address_map.Inherit_none -> ()
      | Address_map.Inherit_share ->
        check_sharer t ~obj:e.obj ~node:dst_node;
        ignore
          (Vm.map t.vms.(dst_node) ~task:child.tk_id ~obj:e.obj ~start:e.start
             ~npages:e.npages ~obj_offset:e.obj_offset
             ~inherit_:Address_map.Inherit_share)
      | Address_map.Inherit_copy ->
        if Hashtbl.mem t.registered e.obj then
          (* NMK13 XMM cannot combine shared and inherited memory
             (paper section 2.3) *)
          failwith
            "Cluster.fork (XMM): copy-inheritance of shared memory is not \
             supported by NMK13 XMM";
        let src_obj = Vm.get_object t.vms.(src_node) e.obj in
        let size = src_obj.Vm_object.size_pages in
        (* local copy of the source address space, as in a local fork *)
        let c_local = Vm.make_asymmetric_copy t.vms.(src_node) ~src:e.obj in
        (* the internal pager exports a fresh object to the remote node,
           fronted by a local anonymous shadow for the child's writes *)
        let d = Vm.create_object t.vms.(dst_node) ~id:(Ids.Alloc.fresh t.ids) ~size_pages:size ~temporary:false in
        let l = Vm.create_object t.vms.(dst_node) ~id:(Ids.Alloc.fresh t.ids) ~size_pages:size ~temporary:true in
        l.Vm_object.shadow <- Some (d.Vm_object.id, 0);
        Xmm.export_copy x ~src_node ~src_obj:c_local.Vm_object.id ~dst_node
          ~dst_obj:d.Vm_object.id;
        ignore
          (Vm.map t.vms.(dst_node) ~task:child.tk_id ~obj:l.Vm_object.id
             ~start:e.start ~npages:e.npages ~obj_offset:e.obj_offset
             ~inherit_:Address_map.Inherit_copy))
    entries;
  (* remote task creation costs a NORMA round trip *)
  Engine.schedule t.engine ~delay:2.0 (fun () -> k child)

let fork t ~task ~dst_node k =
  match t.backend with
  | B_asvm a -> fork_asvm t a ~task ~dst_node k
  | B_xmm x -> fork_xmm t x ~task ~dst_node k

(* ------------------------------------------------------------------ *)
(* Barrier                                                            *)
(* ------------------------------------------------------------------ *)

module Barrier = struct
  type cluster = t

  type t = {
    cl : cluster;
    parties : int;
    mutable waiting : (unit -> unit) list;
  }

  let create cl ~parties =
    if parties <= 0 then invalid_arg "Barrier.create: parties <= 0";
    { cl; parties; waiting = [] }

  let arrive b k =
    b.waiting <- k :: b.waiting;
    if List.length b.waiting >= b.parties then begin
      let ws = b.waiting in
      b.waiting <- [];
      List.iter
        (fun k -> Engine.schedule b.cl.engine ~delay:b.cl.config.barrier_ms k)
        ws
    end
end

(* ------------------------------------------------------------------ *)
(* Crash and rejoin                                                   *)
(* ------------------------------------------------------------------ *)

let node_down t ~node = Network.is_down t.net node

let crashable t ~node =
  node >= 0 && node < t.config.nodes
  && (not (Hashtbl.mem t.pinned node))
  && not (Network.is_down t.net node)

let crash_node t ~node =
  if node < 0 || node >= t.config.nodes then
    invalid_arg (Printf.sprintf "Cluster.crash_node: no node %d" node);
  (match Hashtbl.find_opt t.pinned node with
  | Some role ->
    invalid_arg (Printf.sprintf "Cluster.crash_node: node %d %s" node role)
  | None -> ());
  if Network.is_down t.net node then
    invalid_arg (Printf.sprintf "Cluster.crash_node: node %d is already down" node);
  (* order matters: mark the node down first so the recovery traffic the
     backend generates cannot be routed through (or delivered to) the
     victim, then drop its kernel state, then recover the shared
     protocol state *)
  Network.set_down t.net node;
  Vm.crash_reset t.vms.(node);
  (match t.backend with
  | B_asvm a -> Asvm.crash_node a ~node
  | B_xmm x -> Xmm.crash_node x ~node);
  Metrics.Counter.incr (Metrics.Registry.counter t.metrics "chaos.crashes");
  Trace.emit t.trace ~time:(now t) ~node
    (Trace.Note
       { category = "crash"; detail = Printf.sprintf "node %d crashed" node })

let rejoin_node t ~node =
  if node < 0 || node >= t.config.nodes then
    invalid_arg (Printf.sprintf "Cluster.rejoin_node: no node %d" node);
  if not (Network.is_down t.net node) then
    invalid_arg (Printf.sprintf "Cluster.rejoin_node: node %d is not down" node);
  Network.set_up t.net node;
  (match t.backend with
  | B_asvm a -> Asvm.rejoin_node a ~node
  | B_xmm x -> Xmm.rejoin_node x ~node);
  Metrics.Counter.incr (Metrics.Registry.counter t.metrics "chaos.rejoins");
  Trace.emit t.trace ~time:(now t) ~node
    (Trace.Note
       { category = "crash"; detail = Printf.sprintf "node %d rejoined" node })

(* ------------------------------------------------------------------ *)
(* Statistics                                                         *)
(* ------------------------------------------------------------------ *)

let object_pagers t obj =
  match Hashtbl.find_opt t.pagers obj with Some l -> l | None -> []

let registered_objects t =
  Hashtbl.fold (fun obj sharers acc -> (obj, sharers) :: acc) t.registered []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Range locking (ASVM only; paper section 6)                         *)
(* ------------------------------------------------------------------ *)

let lock_range t ~task ~start ~npages k =
  let a =
    match t.backend with
    | B_asvm a -> a
    | B_xmm _ -> failwith "Cluster.lock_range: XMM has no locking primitive"
  in
  let vm = t.vms.(task.tk_node) in
  let rec acquire vpage k =
    if vpage >= start + npages then k ()
    else
      (* gain write ownership, then pin it; retry if ownership raced
         away between the fault and the hold *)
      Vm.touch vm ~task:task.tk_id ~vpage ~want:Prot.Read_write (fun () ->
          match Vm.translate_vpage vm ~task:task.tk_id ~vpage with
          | Some (obj, page) ->
            if Asvm.hold_page a ~node:task.tk_node ~obj ~page then
              acquire (vpage + 1) k
            else acquire vpage k
          | None -> failwith "Cluster.lock_range: unmapped page")
  in
  acquire start k

let unlock_range t ~task ~start ~npages =
  let a =
    match t.backend with
    | B_asvm a -> a
    | B_xmm _ -> failwith "Cluster.unlock_range: XMM has no locking primitive"
  in
  let vm = t.vms.(task.tk_node) in
  for vpage = start to start + npages - 1 do
    match Vm.translate_vpage vm ~task:task.tk_id ~vpage with
    | Some (obj, page) -> Asvm.release_page a ~node:task.tk_node ~obj ~page
    | None -> ()
  done

let protocol_messages t =
  match t.backend with
  | B_asvm a -> Asvm.sts_messages a
  | B_xmm x -> Xmm.ipc_messages x

let network_bytes t = Network.bytes_sent t.net
