(** Minimal JSON values, printing, and parsing.

    The observability layer emits JSONL (one JSON object per line) for
    traces and metric snapshots.  The simulator deliberately avoids
    external JSON dependencies, so this module provides the small
    subset we need: a value type, a compact printer whose output is
    valid JSON, and a recursive-descent parser used by the round-trip
    tests and by consumers that want to read traces back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Object fields, in emission order.  Duplicate keys are not
          rejected; [member] returns the first match. *)

val to_string : t -> string
(** [to_string v] prints [v] as compact (single-line) JSON.  Floats
    are printed with up to 12 significant digits and always parse back
    as JSON numbers (never ["1."]).  Non-finite floats print as
    [null]. *)

val of_string : string -> (t, string) result
(** [of_string s] parses one JSON value from [s].  Trailing
    whitespace is allowed; trailing garbage is an error.  Numbers
    without [.], [e] or [E] parse as [Int], others as [Float]. *)

val member : string -> t -> t option
(** [member key v] is the value of field [key] if [v] is an [Obj]
    containing it. *)

val to_int : t -> int option
(** [Int]s, and [Float]s that are exact integers. *)

val to_float : t -> float option
(** [Float]s and [Int]s, as a float. *)

val to_bool : t -> bool option
val to_str : t -> string option
