type msg = {
  proto : string;
  cls : string;
  group : string;
  src : int;
  dst : int;
  carries_page : bool;
  bytes : int;
}

type kind =
  | Msg of msg
  | Ownership of { obj : int; page : int; owner : int }
  | Note of { category : string; detail : string }

type event = { time : float; node : int; kind : kind }

type t = {
  ring : event array;
  capacity : int;
  mutable next : int;  (* total emitted; ring slot is [next mod capacity] *)
  mutable jsonl : out_channel option;
}

let dummy_event =
  { time = 0.; node = 0; kind = Note { category = ""; detail = "" } }

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  { ring = Array.make capacity dummy_event; capacity; next = 0; jsonl = None }

let set_jsonl t oc = t.jsonl <- oc

let event_to_json ev =
  let kind_fields =
    match ev.kind with
    | Msg m ->
      [
        ("ev", Json.String "msg");
        ("proto", Json.String m.proto);
        ("class", Json.String m.cls);
        ("group", Json.String m.group);
        ("src", Json.Int m.src);
        ("dst", Json.Int m.dst);
        ("page", Json.Bool m.carries_page);
        ("bytes", Json.Int m.bytes);
      ]
    | Ownership { obj; page; owner } ->
      [
        ("ev", Json.String "owner");
        ("obj", Json.Int obj);
        ("page", Json.Int page);
        ("owner", Json.Int owner);
      ]
    | Note { category; detail } ->
      [
        ("ev", Json.String "note");
        ("category", Json.String category);
        ("detail", Json.String detail);
      ]
  in
  Json.Obj (("t", Json.Float ev.time) :: ("node", Json.Int ev.node) :: kind_fields)

let event_of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event_of_json: bad or missing %S" name)
  in
  let* time = field "t" Json.to_float in
  let* node = field "node" Json.to_int in
  let* ev = field "ev" Json.to_str in
  let* kind =
    match ev with
    | "msg" ->
      let* proto = field "proto" Json.to_str in
      let* cls = field "class" Json.to_str in
      let* group = field "group" Json.to_str in
      let* src = field "src" Json.to_int in
      let* dst = field "dst" Json.to_int in
      let* carries_page = field "page" Json.to_bool in
      let* bytes = field "bytes" Json.to_int in
      Ok (Msg { proto; cls; group; src; dst; carries_page; bytes })
    | "owner" ->
      let* obj = field "obj" Json.to_int in
      let* page = field "page" Json.to_int in
      let* owner = field "owner" Json.to_int in
      Ok (Ownership { obj; page; owner })
    | "note" ->
      let* category = field "category" Json.to_str in
      let* detail = field "detail" Json.to_str in
      Ok (Note { category; detail })
    | k -> Error (Printf.sprintf "event_of_json: unknown event %S" k)
  in
  Ok { time; node; kind }

let emit t ~time ~node kind =
  match t with
  | None -> ()
  | Some t ->
    let ev = { time; node; kind } in
    t.ring.(t.next mod t.capacity) <- ev;
    t.next <- t.next + 1;
    (match t.jsonl with
    | Some oc ->
      output_string oc (Json.to_string (event_to_json ev));
      output_char oc '\n';
      flush oc
    | None -> ())

let emitted t = t.next

let events t =
  let n = min t.next t.capacity in
  List.init n (fun i -> t.ring.((t.next - n + i) mod t.capacity))

let clear t = t.next <- 0

let pp_event ppf ev =
  match ev.kind with
  | Msg m ->
    Format.fprintf ppf "[%8.3f] %s %-14s %d->%d group=%s%s (%d B)" ev.time
      m.proto m.cls m.src m.dst m.group
      (if m.carries_page then " +page" else "")
      m.bytes
  | Ownership { obj; page; owner } ->
    Format.fprintf ppf "[%8.3f] node %d: obj %d page %d owned by %d" ev.time
      ev.node obj page owner
  | Note { category; detail } ->
    Format.fprintf ppf "[%8.3f] node %d: %s: %s" ev.time ev.node category
      detail

let dump ppf t =
  List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) (events t)
