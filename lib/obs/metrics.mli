(** Typed metric registry: labeled counters, gauges, and latency
    histograms.

    A {!Registry.t} is a flat namespace of metrics keyed by
    [(name, labels)].  Labels are normalized (sorted by key) before
    lookup, so [counter r "m" ~labels:["a","1";"b","2"]] and
    [counter r "m" ~labels:["b","2";"a","1"]] merge into the same
    series.  Handles returned by the registry are cheap to hold and
    cheap to bump, so protocol hot paths can look them up per event or
    cache them.

    Naming conventions (see [docs/OBSERVABILITY.md]):
    - dot-separated, lowest component first: ["asvm.msgs"],
      ["sts.bytes"], ["engine.events"];
    - label keys and values are lowercase strings;
    - latency histograms end in [_ms] and record simulated
      milliseconds.

    A {!snapshot} is an immutable, sorted view of every series — the
    unit of export ({!snapshot_to_jsonl}), display ({!pp_snapshot})
    and comparison ({!diff}). *)

type labels = (string * string) list
(** Label set as key/value pairs.  Order is irrelevant; keys should be
    unique (if not, the last binding wins during normalization). *)

(** Monotone integer counter. *)
module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  (** Add [by] (default 1) to the counter. *)

  val value : t -> int
end

(** Instantaneous float value. *)
module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

(** Append-only distribution of float samples with exact percentiles
    (all samples are retained — fine at simulation scale). *)
module Histogram : sig
  type t

  val create : unit -> t
  (** A free-standing empty histogram, not attached to any registry —
      per-shard/per-job collectors that are later {!merge}d. *)

  val observe : t -> float -> unit
  val count : t -> int

  val percentile : t -> float -> float
  (** [percentile h p] for [p] in \[0,100\], by linear interpolation
      between order statistics.  Raises [Invalid_argument] when the
      histogram is empty or [p] is out of range. *)

  val mean : t -> float
  (** 0 when empty. *)

  val values : t -> float array
  (** Sorted copy of every observed sample (empty array when empty) —
      for CDF plots and exactness checks against pooled samples. *)

  val merge : t -> t -> t
  (** [merge a b] is a fresh histogram holding the pooled samples of
      [a] and [b]: exactly the histogram that would have resulted from
      observing every sample into one collector, so percentiles of the
      merge equal percentiles of the pooled sample set (the aggregation
      step for per-shard / per-job latency collectors).  [a] and [b]
      are unchanged. *)
end

(** The value of one series at snapshot time. *)
type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

type sample = { name : string; labels : labels; value : value }

type snapshot = sample list
(** Sorted by [(name, labels)]. *)

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> ?labels:labels -> string -> Counter.t
  (** Find-or-create.  Raises [Invalid_argument] if the series exists
      with a different metric type. *)

  val gauge : t -> ?labels:labels -> string -> Gauge.t
  val histogram : t -> ?labels:labels -> string -> Histogram.t

  val snapshot : t -> snapshot
end

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter-only delta: each counter series of [after] minus its value
    in [before] (0 if absent), with zero deltas dropped.  Gauges and
    histograms are point-in-time and are omitted. *)

val counter_total : ?where:(labels -> bool) -> snapshot -> string -> int
(** Sum of all counter series named [name] whose labels satisfy
    [where] (default: all). *)

val find : snapshot -> string -> labels -> value option
(** Exact series lookup (labels normalized first). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable table, one series per line. *)

val sample_to_json : sample -> Json.t
val sample_of_json : Json.t -> (sample, string) result

val snapshot_to_jsonl : snapshot -> string
(** One JSON object per line, newline-terminated; empty string for an
    empty snapshot. *)
