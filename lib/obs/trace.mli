(** Structured protocol traces.

    Replaces the free-form string ring buffer of
    [Asvm_simcore.Tracer]: events carry a stable variant type
    ({!kind}) so tools can filter and diff traces without parsing
    display strings.  A trace always keeps a bounded in-memory ring of
    the most recent events; optionally it also streams every event to
    a JSONL sink (one JSON object per line) as it is emitted.

    Emission is nullable by design: protocol code holds a [t option]
    and calls {!emit} unconditionally — with [None] the call is a
    no-op, so tracing costs nothing when disabled. *)

(** One protocol message on (or within) a node.

    [proto] is the protocol that sent it (["asvm"], ["xmm"]); [cls] is
    the message class (e.g. ["request"], ["reply"], ["lock"]); [group]
    buckets classes into the paper's accounting categories
    (["transfer"], ["invalidation"], ["pageout"], ["copy"],
    ["pager"]).  [carries_page] is true when page contents ride along;
    [src = dst] marks a local (loopback) hop.  [bytes] is the on-wire
    size. *)
type msg = {
  proto : string;
  cls : string;
  group : string;
  src : int;
  dst : int;
  carries_page : bool;
  bytes : int;
}

type kind =
  | Msg of msg
  | Ownership of { obj : int; page : int; owner : int }
      (** [owner] became the owner of [page] of object [obj]. *)
  | Note of { category : string; detail : string }
      (** Escape hatch for events without a dedicated constructor. *)

type event = { time : float; node : int; kind : kind }
(** [time] is simulated milliseconds; [node] is where the event
    happened (for [Msg], the sender). *)

type t

val create : ?capacity:int -> unit -> t
(** A trace retaining the last [capacity] (default 4096) events in
    memory. *)

val set_jsonl : t -> out_channel option -> unit
(** Attach (or detach) a JSONL sink.  Every subsequently emitted event
    is written to the channel as one JSON line and flushed. *)

val emit : t option -> time:float -> node:int -> kind -> unit
(** Record an event.  [emit None] is a no-op. *)

val events : t -> event list
(** Retained events, oldest first (at most [capacity]). *)

val emitted : t -> int
(** Total events emitted over the trace's lifetime, including those
    evicted from the ring. *)

val clear : t -> unit
(** Drop retained events (the lifetime count and sink stay). *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

val pp_event : Format.formatter -> event -> unit
(** One-line human-readable rendering. *)

val dump : Format.formatter -> t -> unit
(** Print all retained events, oldest first. *)
