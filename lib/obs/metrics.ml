type labels = (string * string) list

let normalize labels =
  (* sort by key; last binding for a duplicated key wins *)
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec dedup = function
    | (k1, _) :: ((k2, _) :: _ as rest) when k1 = k2 -> dedup rest
    | kv :: rest -> kv :: dedup rest
    | [] -> []
  in
  dedup sorted

module Counter = struct
  type t = { mutable n : int }

  let incr ?(by = 1) t = t.n <- t.n + by
  let value t = t.n
end

module Gauge = struct
  type t = { mutable v : float }

  let set t v = t.v <- v
  let add t v = t.v <- t.v +. v
  let value t = t.v
end

module Histogram = struct
  type t = {
    mutable samples : float list;  (* reverse order of observation *)
    mutable n : int;
    mutable sum : float;
    mutable sorted : float array option;  (* cache, invalidated on observe *)
  }

  let create () = { samples = []; n = 0; sum = 0.; sorted = None }

  let observe t x =
    t.samples <- x :: t.samples;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    t.sorted <- None

  let count t = t.n

  (* pooled samples, not a sketch: the merged histogram is exactly the
     one a single collector would have produced *)
  let merge a b =
    {
      samples = List.rev_append a.samples b.samples;
      n = a.n + b.n;
      sum = a.sum +. b.sum;
      sorted = None;
    }
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
      let a = Array.of_list t.samples in
      Array.sort compare a;
      t.sorted <- Some a;
      a

  let values t = Array.copy (sorted t)

  let percentile t p =
    if t.n = 0 then invalid_arg "Histogram.percentile: empty";
    if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p";
    let a = sorted t in
    let rank = p /. 100. *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then a.(lo)
    else
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
end

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      count : int;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

type sample = { name : string; labels : labels; value : value }
type snapshot = sample list

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

module Registry = struct
  type t = { table : (string * labels, metric) Hashtbl.t }

  let create () = { table = Hashtbl.create 64 }

  let get t ~name ~labels ~make ~cast ~kind =
    let key = (name, normalize labels) in
    match Hashtbl.find_opt t.table key with
    | Some m -> (
      match cast m with
      | Some x -> x
      | None ->
        invalid_arg
          (Printf.sprintf "Metrics.Registry: %s already registered with a \
                           different type (wanted %s)"
             name kind))
    | None ->
      let x, m = make () in
      Hashtbl.add t.table key m;
      x

  let counter t ?(labels = []) name =
    get t ~name ~labels ~kind:"counter"
      ~make:(fun () ->
        let c = { Counter.n = 0 } in
        (c, M_counter c))
      ~cast:(function M_counter c -> Some c | _ -> None)

  let gauge t ?(labels = []) name =
    get t ~name ~labels ~kind:"gauge"
      ~make:(fun () ->
        let g = { Gauge.v = 0. } in
        (g, M_gauge g))
      ~cast:(function M_gauge g -> Some g | _ -> None)

  let histogram t ?(labels = []) name =
    get t ~name ~labels ~kind:"histogram"
      ~make:(fun () ->
        let h =
          { Histogram.samples = []; n = 0; sum = 0.; sorted = None }
        in
        (h, M_histogram h))
      ~cast:(function M_histogram h -> Some h | _ -> None)

  let snapshot t =
    Hashtbl.fold
      (fun (name, labels) metric acc ->
        let value =
          match metric with
          | M_counter c -> Counter_v (Counter.value c)
          | M_gauge g -> Gauge_v (Gauge.value g)
          | M_histogram h ->
            let count = Histogram.count h in
            if count = 0 then
              Histogram_v
                { count = 0; mean = 0.; min = 0.; max = 0.; p50 = 0.;
                  p90 = 0.; p99 = 0. }
            else
              let a = Histogram.sorted h in
              Histogram_v
                {
                  count;
                  mean = Histogram.mean h;
                  min = a.(0);
                  max = a.(count - 1);
                  p50 = Histogram.percentile h 50.;
                  p90 = Histogram.percentile h 90.;
                  p99 = Histogram.percentile h 99.;
                }
        in
        { name; labels; value } :: acc)
      t.table []
    |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))
end

let diff ~before ~after =
  let prior = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match s.value with
      | Counter_v n -> Hashtbl.replace prior (s.name, s.labels) n
      | _ -> ())
    before;
  List.filter_map
    (fun s ->
      match s.value with
      | Counter_v n ->
        let was =
          Option.value ~default:0 (Hashtbl.find_opt prior (s.name, s.labels))
        in
        if n - was = 0 then None
        else Some { s with value = Counter_v (n - was) }
      | _ -> None)
    after

let counter_total ?(where = fun _ -> true) snapshot name =
  List.fold_left
    (fun acc s ->
      match s.value with
      | Counter_v n when s.name = name && where s.labels -> acc + n
      | _ -> acc)
    0 snapshot

let find snapshot name labels =
  let labels = normalize labels in
  List.find_map
    (fun s ->
      if s.name = name && s.labels = labels then Some s.value else None)
    snapshot

let pp_labels ppf labels =
  if labels <> [] then
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         (fun ppf (k, v) -> Format.fprintf ppf "%s=%s" k v))
      labels

let pp_snapshot ppf snapshot =
  List.iter
    (fun s ->
      match s.value with
      | Counter_v n ->
        Format.fprintf ppf "%s%a  %d@." s.name pp_labels s.labels n
      | Gauge_v v ->
        Format.fprintf ppf "%s%a  %g@." s.name pp_labels s.labels v
      | Histogram_v h ->
        Format.fprintf ppf
          "%s%a  count=%d mean=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f \
           max=%.3f@."
          s.name pp_labels s.labels h.count h.mean h.min h.p50 h.p90 h.p99
          h.max)
    snapshot

let labels_to_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let sample_to_json s =
  let base = [ ("metric", Json.String s.name); ("labels", labels_to_json s.labels) ] in
  match s.value with
  | Counter_v n ->
    Json.Obj (base @ [ ("type", Json.String "counter"); ("value", Json.Int n) ])
  | Gauge_v v ->
    Json.Obj (base @ [ ("type", Json.String "gauge"); ("value", Json.Float v) ])
  | Histogram_v h ->
    Json.Obj
      (base
      @ [
          ("type", Json.String "histogram");
          ("count", Json.Int h.count);
          ("mean", Json.Float h.mean);
          ("min", Json.Float h.min);
          ("max", Json.Float h.max);
          ("p50", Json.Float h.p50);
          ("p90", Json.Float h.p90);
          ("p99", Json.Float h.p99);
        ])

let sample_of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "sample_of_json: bad or missing %S" name)
  in
  let* name = field "metric" Json.to_str in
  let* labels =
    match Json.member "labels" json with
    | Some (Json.Obj fields) ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | (k, Json.String v) :: rest -> conv ((k, v) :: acc) rest
        | (k, _) :: _ -> Error (Printf.sprintf "sample_of_json: label %S" k)
      in
      conv [] fields
    | _ -> Error "sample_of_json: bad or missing labels"
  in
  let labels = normalize labels in
  let* kind = field "type" Json.to_str in
  let* value =
    match kind with
    | "counter" ->
      let* n = field "value" Json.to_int in
      Ok (Counter_v n)
    | "gauge" ->
      let* v = field "value" Json.to_float in
      Ok (Gauge_v v)
    | "histogram" ->
      let* count = field "count" Json.to_int in
      let* mean = field "mean" Json.to_float in
      let* min = field "min" Json.to_float in
      let* max = field "max" Json.to_float in
      let* p50 = field "p50" Json.to_float in
      let* p90 = field "p90" Json.to_float in
      let* p99 = field "p99" Json.to_float in
      Ok (Histogram_v { count; mean; min; max; p50; p90; p99 })
    | k -> Error (Printf.sprintf "sample_of_json: unknown type %S" k)
  in
  Ok { name; labels; value }

let snapshot_to_jsonl snapshot =
  String.concat ""
    (List.map (fun s -> Json.to_string (sample_to_json s) ^ "\n") snapshot)
