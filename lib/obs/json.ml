type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* A float representation that is always a valid JSON number:
   OCaml's [string_of_float] yields "1." which JSON rejects, while
   "%g" never prints a trailing '.'. *)
let number_of_float f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (number_of_float f)
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
           in
           (* we only emit ASCII escapes; decode BMP code points as
              UTF-8 so round-trips of control chars work *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then (
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
           else (
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if
      String.contains tok '.' || String.contains tok 'e'
      || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        List [])
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
