(** Seed-reproducible open-loop arrival processes.

    The serving workload ({!Serve}) is {e open-loop}: every request's
    arrival instant is fixed before the simulation starts, computed
    here as a pure function of the experiment seed.  Clients do not
    wait for earlier requests to finish before issuing new ones, so a
    saturated memory system grows a queue instead of silently slowing
    the offered load — the difference between measuring latency and
    measuring the generator (see docs/SERVING.md).

    Because the whole schedule is materialized up front from one
    {!Asvm_simcore.Rng.t}, the event sequence is identical at any
    parallel-runner [--jobs] setting. *)

type op = Read | Write

type key_dist =
  | Uniform  (** every key equally popular *)
  | Zipf of float
      (** rank-[k] key has weight [1/k^a] — the skew of real caches;
          [a] around 0.9–1.1 is the classic web/KV shape *)

type process =
  | Poisson of { rate_per_s : float }
      (** memoryless arrivals at a constant mean rate *)
  | Bursty of {
      on_rate_per_s : float;
      off_rate_per_s : float;
      on_ms : float;
      off_ms : float;
    }
      (** on/off modulated Poisson (a 2-state MMPP with deterministic
          phase lengths): arrivals at [on_rate_per_s] for [on_ms], then
          at [off_rate_per_s] for [off_ms], repeating.  Same mean load
          as a Poisson of {!mean_rate_per_s} but with standing bursts
          that probe tail latency. *)

type request = { at_ms : float; node : int; key : int; op : op }
(** One pre-scheduled request: at [at_ms] a client task on [node]
    reads or writes (per [op]) the page behind [key]. *)

val process_name : process -> string
(** ["poisson"] or ["bursty"] — the label used in benchmark cells. *)

val mean_rate_per_s : process -> float
(** Long-run mean arrival rate (time-weighted over phases for
    {!Bursty}). *)

val schedule :
  process ->
  seed:int ->
  duration_ms:float ->
  nodes:int ->
  keys:int ->
  read_fraction:float ->
  key_dist:key_dist ->
  request array
(** The full request schedule for one run, sorted by arrival time.
    Pure in [seed]: same arguments, same array, on any host and at any
    [--jobs].  Arrival instants, issuing nodes, keys and ops are drawn
    from four independent split streams, so (for tests) the arrival
    {e times} do not depend on how keys or ops are sampled.

    @raise Invalid_argument on non-positive [nodes]/[keys]/rates, a
    [read_fraction] outside [0,1], or a {!Bursty} with [on_ms <= 0] or
    negative [off_ms]. *)
