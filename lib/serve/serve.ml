module Engine = Asvm_simcore.Engine
module Stats = Asvm_simcore.Stats
module Vm = Asvm_machvm.Vm
module Vm_config = Asvm_machvm.Vm_config
module Address_map = Asvm_machvm.Address_map
module Store_pager = Asvm_pager.Store_pager
module Asvm = Asvm_core.Asvm
module Config = Asvm_cluster.Config
module Cluster = Asvm_cluster.Cluster
module Metrics = Asvm_obs.Metrics

type params = {
  nodes : int;
  memory_pages : int;
  oversub : float;
  duration_ms : float;
  process : Arrival.process;
  read_fraction : float;
  key_dist : Arrival.key_dist;
  pageout_low : int;
  pageout_high : int;
  seed : int;
  queue_samples : int;
}

let default_params =
  {
    nodes = 4;
    memory_pages = 64;
    oversub = 1.5;
    duration_ms = 1000.;
    process = Arrival.Poisson { rate_per_s = 1000. };
    read_fraction = 0.8;
    key_dist = Arrival.Zipf 0.9;
    pageout_low = 8;
    pageout_high = 16;
    seed = 42;
    queue_samples = 24;
  }

type result = {
  mm : Config.mm;
  requests : int;
  completions : int;
  sim_ms : float;
  goodput_rps : float;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
  queue_depth : (float * int) list;
  evictions : int;
  pageout_runs : int;
  pageout_evictions : int;
  pager_stores : int;
  reader_handoffs : int;
  internode_pageouts : int;
  pageouts_to_pager : int;
  latency_values : float array;
  merged_count : int;
  registry_count : int;
  metrics : Metrics.snapshot;
}

let working_set_pages p =
  int_of_float
    (Float.ceil (p.oversub *. float_of_int (p.nodes * p.memory_pages)))

let run ~mm ?(tweak = Fun.id) ?(inspect = ignore) ?(on_start = ignore) p =
  if p.oversub <= 0. then invalid_arg "Serve.run: oversub";
  if p.duration_ms <= 0. then invalid_arg "Serve.run: duration_ms";
  let total_pages = working_set_pages p in
  let reqs =
    Arrival.schedule p.process ~seed:p.seed ~duration_ms:p.duration_ms
      ~nodes:p.nodes ~keys:total_pages ~read_fraction:p.read_fraction
      ~key_dist:p.key_dist
  in
  let config = Config.with_mm (Config.default ~nodes:p.nodes) mm in
  let config = Config.with_memory_pages config p.memory_pages in
  let config =
    {
      config with
      Config.vm =
        Vm_config.with_pageout config.Config.vm ~low:p.pageout_low
          ~high:p.pageout_high;
    }
  in
  let config = tweak config in
  let cl = Cluster.create config in
  let obj =
    Cluster.create_shared_object cl ~size_pages:total_pages
      ~sharers:(List.init p.nodes Fun.id) ()
  in
  let tasks =
    Array.init p.nodes (fun node ->
        let t = Cluster.create_task cl ~node in
        Cluster.map cl ~task:t ~obj ~start:0 ~npages:total_pages
          ~inherit_:Address_map.Inherit_share;
        t)
  in
  let words = config.Config.vm.Vm_config.words_per_page in
  (* Warm-up: fault the whole working set in once (each key from its
     home node) before the measured window, so the caches start full
     and the run measures serving under standing memory pressure, not
     cold-start compulsory misses.  Past oversub 1.0 this alone drives
     free memory through the watermarks and starts the pageout daemon. *)
  let warm_pending = ref 0 in
  for key = 0 to total_pages - 1 do
    incr warm_pending;
    Cluster.write_word cl
      ~task:tasks.(key mod p.nodes)
      ~addr:(key * words) ~value:(key + 1)
      (fun () -> decr warm_pending)
  done;
  Cluster.run cl;
  assert (!warm_pending = 0);
  let t0 = Cluster.now cl in
  let metrics = Cluster.metrics cl in
  let completions_c = Metrics.Registry.counter metrics "serve.completions" in
  let reads_c =
    Metrics.Registry.counter metrics ~labels:[ ("op", "read") ]
      "serve.requests"
  in
  let writes_c =
    Metrics.Registry.counter metrics ~labels:[ ("op", "write") ]
      "serve.requests"
  in
  let lat_h = Metrics.Registry.histogram metrics "serve.request_ms" in
  let depth_g = Metrics.Registry.gauge metrics "serve.queue_depth" in
  (* per-node latency shards, merged at the end — demonstrates (and the
     result certifies) that Histogram.merge is exact pooling *)
  let shards = Array.init p.nodes (fun _ -> Metrics.Histogram.create ()) in
  let inflight = ref 0 in
  let engine = Cluster.engine cl in
  let samples = ref [] in
  if p.queue_samples > 0 then begin
    let step = p.duration_ms /. float_of_int p.queue_samples in
    for i = 1 to p.queue_samples do
      let at = step *. float_of_int i in
      Engine.schedule_at engine ~time:(t0 +. at) (fun () ->
          Metrics.Gauge.set depth_g (float_of_int !inflight);
          samples := (at, !inflight) :: !samples)
    done
  end;
  Array.iter
    (fun (r : Arrival.request) ->
      let issue_at = t0 +. r.at_ms in
      Engine.schedule_at engine ~time:issue_at (fun () ->
          incr inflight;
          let finish () =
            decr inflight;
            let lat = Engine.now engine -. issue_at in
            Metrics.Histogram.observe shards.(r.node) lat;
            Metrics.Histogram.observe lat_h lat;
            Metrics.Counter.incr completions_c
          in
          let task = tasks.(r.node) in
          let addr = r.key * words in
          match r.op with
          | Arrival.Read ->
            Metrics.Counter.incr reads_c;
            Cluster.read_word cl ~task ~addr (fun _ -> finish ())
          | Arrival.Write ->
            Metrics.Counter.incr writes_c;
            Cluster.write_word cl ~task ~addr ~value:(r.key + 1) finish))
    reqs;
  on_start cl;
  Cluster.run cl;
  inspect cl;
  let merged =
    Array.fold_left Metrics.Histogram.merge (Metrics.Histogram.create ())
      shards
  in
  let pct p =
    if Metrics.Histogram.count merged = 0 then 0.
    else Metrics.Histogram.percentile merged p
  in
  let sum_vm f =
    let acc = ref 0 in
    for node = 0 to p.nodes - 1 do
      acc := !acc + f (Cluster.node_vm cl node)
    done;
    !acc
  in
  let asvm_counter name =
    match Cluster.backend cl with
    | `Asvm a -> Stats.Counters.get (Asvm.counters a) name
    | `Xmm _ -> 0
  in
  let completions = Metrics.Counter.value completions_c in
  let sim_ms = Cluster.now cl -. t0 in
  {
    mm;
    requests = Array.length reqs;
    completions;
    sim_ms;
    goodput_rps =
      (if sim_ms <= 0. then 0.
       else float_of_int completions /. (sim_ms /. 1000.));
    mean_ms = Metrics.Histogram.mean merged;
    p50_ms = pct 50.;
    p99_ms = pct 99.;
    p999_ms = pct 99.9;
    max_ms = pct 100.;
    queue_depth = List.rev !samples;
    evictions = sum_vm Vm.evictions;
    pageout_runs = sum_vm Vm.pageout_runs;
    pageout_evictions = sum_vm Vm.pageout_evictions;
    pager_stores = Store_pager.stores (Cluster.default_pager cl);
    reader_handoffs = asvm_counter "pageout.reader_handoffs";
    internode_pageouts = asvm_counter "pageout.internode";
    pageouts_to_pager = asvm_counter "pageout.to_pager";
    latency_values = Metrics.Histogram.values merged;
    merged_count = Metrics.Histogram.count merged;
    registry_count = Metrics.Histogram.count lat_h;
    metrics = Cluster.metrics_snapshot cl;
  }
