(** Open-loop heavy-traffic serving workload with SLO percentiles.

    Models a production serving fleet on the multicomputer: client
    tasks on every node hammer one shared key-value / page-cache
    region whose working set is sized {e past} aggregate node memory
    (the [oversub] ratio), so the §3.6 four-step eviction path, the
    adaptive pageout cycling counter and the watermark pageout daemon
    ({!Asvm_machvm.Vm_config.with_pageout}) are the bottleneck, not
    the generator.  Requests arrive on a pre-materialized open-loop
    schedule ({!Arrival.schedule}); each one faults the page behind
    its key, completes through the usual continuation path, and
    reports end-to-end latency into per-node shard histograms that are
    {!Asvm_obs.Metrics.Histogram.merge}d for exact p50/p99/p999.

    See docs/SERVING.md for the model and a worked p99 trace. *)

module Config = Asvm_cluster.Config
module Cluster = Asvm_cluster.Cluster
module Metrics = Asvm_obs.Metrics

type params = {
  nodes : int;
  memory_pages : int;  (** per-node resident-page capacity *)
  oversub : float;
      (** working-set pages = [oversub * nodes * memory_pages]; above
          1.0 the fleet cannot hold the working set and must page *)
  duration_ms : float;  (** arrival window (the run drains past it) *)
  process : Arrival.process;
  read_fraction : float;
  key_dist : Arrival.key_dist;
  pageout_low : int;
      (** watermark daemon low/high (pages per node); [low = 0]
          disables the daemon, leaving only the synchronous backstop *)
  pageout_high : int;
  seed : int;
  queue_samples : int;
      (** queue-depth time-series samples across [duration_ms] *)
}

val default_params : params
(** 4 nodes x 64 pages, oversub 1.5, 1 s of Poisson arrivals at
    1000 req/s, 80% reads, Zipf 0.9, daemon watermarks 8/16, 24
    queue samples, seed 42. *)

type result = {
  mm : Config.mm;
  requests : int;
  completions : int;  (** open loop drains: equals [requests] *)
  sim_ms : float;  (** serving window start (post warm-up) to drain *)
  goodput_rps : float;  (** completions per simulated second *)
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
  queue_depth : (float * int) list;  (** (sim time, in-flight) samples *)
  evictions : int;  (** {!Asvm_machvm.Vm.evictions} summed over nodes *)
  pageout_runs : int;
  pageout_evictions : int;
  pager_stores : int;  (** default-pager page returns (eviction step 4) *)
  reader_handoffs : int;  (** ASVM §3.6 step-2 counters; 0 under XMM *)
  internode_pageouts : int;
  pageouts_to_pager : int;
  latency_values : float array;
      (** every request latency, sorted — the material for CDF plots *)
  merged_count : int;
      (** samples in the merged shard histograms — the
          {!Asvm_obs.Metrics.Histogram.merge} aggregation; always
          equals [registry_count] (merge is exact, not a sketch) *)
  registry_count : int;  (** samples in the registry's [serve.request_ms] *)
  metrics : Metrics.snapshot;
}

val run :
  mm:Config.mm ->
  ?tweak:(Config.t -> Config.t) ->
  ?inspect:(Cluster.t -> unit) ->
  ?on_start:(Cluster.t -> unit) ->
  params ->
  result
(** One serving cell: build a cluster ([tweak] may rewrite the config
    first, e.g. to install a chaos interposer), fault the whole working
    set in once (warm-up, so the measured window serves from full
    caches under standing pressure), pre-schedule every arrival, call
    [on_start] (e.g. to schedule crashes), run to drain, call [inspect]
    (e.g. the chaos invariant checker), and collect the SLO report.
    Deterministic in [params.seed].
    @raise Invalid_argument on nonsense parameters (see
    {!Arrival.schedule}; also [oversub <= 0] or watermarks violating
    [0 <= low <= high <= memory_pages]). *)

val working_set_pages : params -> int
(** [oversub * nodes * memory_pages], rounded up — the key count. *)
