module Rng = Asvm_simcore.Rng

type op = Read | Write
type key_dist = Uniform | Zipf of float

type process =
  | Poisson of { rate_per_s : float }
  | Bursty of {
      on_rate_per_s : float;
      off_rate_per_s : float;
      on_ms : float;
      off_ms : float;
    }

type request = { at_ms : float; node : int; key : int; op : op }

let process_name = function Poisson _ -> "poisson" | Bursty _ -> "bursty"

let mean_rate_per_s = function
  | Poisson { rate_per_s } -> rate_per_s
  | Bursty { on_rate_per_s; off_rate_per_s; on_ms; off_ms } ->
    ((on_rate_per_s *. on_ms) +. (off_rate_per_s *. off_ms))
    /. (on_ms +. off_ms)

(* inverse-CDF exponential; [Rng.float rng 1.] is in [0,1), so the
   argument of [log] stays in (0,1] and the sample is finite *)
let exp_sample rng ~rate_per_ms = -.Float.log (1. -. Rng.float rng 1.) /. rate_per_ms

let validate process ~nodes ~keys ~read_fraction =
  if nodes <= 0 then invalid_arg "Arrival.schedule: nodes";
  if keys <= 0 then invalid_arg "Arrival.schedule: keys";
  if read_fraction < 0. || read_fraction > 1. then
    invalid_arg "Arrival.schedule: read_fraction";
  match process with
  | Poisson { rate_per_s } ->
    if rate_per_s <= 0. then invalid_arg "Arrival.schedule: rate_per_s"
  | Bursty { on_rate_per_s; off_rate_per_s; on_ms; off_ms } ->
    if on_rate_per_s <= 0. || off_rate_per_s < 0. then
      invalid_arg "Arrival.schedule: burst rates";
    if on_ms <= 0. || off_ms < 0. then invalid_arg "Arrival.schedule: phases"

let arrival_times rng process ~duration_ms =
  let buf = ref [] in
  (match process with
  | Poisson { rate_per_s } ->
    let rate = rate_per_s /. 1000. in
    let t = ref (exp_sample rng ~rate_per_ms:rate) in
    while !t < duration_ms do
      buf := !t :: !buf;
      t := !t +. exp_sample rng ~rate_per_ms:rate
    done
  | Bursty { on_rate_per_s; off_rate_per_s; on_ms; off_ms } ->
    (* piecewise-constant rate; by memorylessness the residual draw is
       simply resampled when a phase boundary truncates it *)
    let t = ref 0. and phase_start = ref 0. and on = ref true in
    let running = ref true in
    while !running do
      let rate_s = if !on then on_rate_per_s else off_rate_per_s in
      let phase_end = !phase_start +. (if !on then on_ms else off_ms) in
      let arrival =
        if rate_s <= 0. then None
        else
          let dt = exp_sample rng ~rate_per_ms:(rate_s /. 1000.) in
          if !t +. dt < phase_end then Some (!t +. dt) else None
      in
      match arrival with
      | Some at ->
        t := at;
        if at < duration_ms then buf := at :: !buf else running := false
      | None ->
        t := phase_end;
        phase_start := phase_end;
        on := not !on;
        if !t >= duration_ms then running := false
    done);
  Array.of_list (List.rev !buf)

let key_sampler rng ~keys = function
  | Uniform -> fun () -> Rng.int rng keys
  | Zipf alpha ->
    let cum = Array.make keys 0. in
    let total = ref 0. in
    for k = 0 to keys - 1 do
      total := !total +. (1. /. Float.pow (float_of_int (k + 1)) alpha);
      cum.(k) <- !total
    done;
    fun () ->
      (* first rank whose cumulative weight exceeds the draw *)
      let u = Rng.float rng !total in
      let lo = ref 0 and hi = ref (keys - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cum.(mid) > u then hi := mid else lo := mid + 1
      done;
      !lo

let schedule process ~seed ~duration_ms ~nodes ~keys ~read_fraction ~key_dist =
  validate process ~nodes ~keys ~read_fraction;
  let root = Rng.create seed in
  let times_rng = Rng.split root in
  let node_rng = Rng.split root in
  let key_rng = Rng.split root in
  let op_rng = Rng.split root in
  let next_key = key_sampler key_rng ~keys key_dist in
  let times = arrival_times times_rng process ~duration_ms in
  Array.map
    (fun at_ms ->
      {
        at_ms;
        node = Rng.int node_rng nodes;
        key = next_key ();
        op = (if Rng.float op_rng 1. < read_fraction then Read else Write);
      })
    times
