(** Measurement collection: tallies, counters and (x, y) series.

    These are the simulator's internal bookkeeping primitives; the
    user-facing export path is the labeled registry of
    [Asvm_obs.Metrics]. *)

(** Moments of a sample set, as computed by {!Tally.summary}. *)
type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
  total : float;
}

(** One-line rendering: count, mean, bounds, standard deviation. *)
val pp_summary : Format.formatter -> summary -> unit

(** Streaming tally of float samples (Welford's algorithm). *)
module Tally : sig
  type t

  val create : unit -> t

  (** Fold one sample into the running moments. *)
  val add : t -> float -> unit

  val count : t -> int

  (** 0 when empty. *)
  val mean : t -> float

  val total : t -> float

  (** All moments at once. *)
  val summary : t -> summary
end

(** Named integer counters. *)
module Counters : sig
  type t

  val create : unit -> t

  (** Add [by] (default 1); the counter springs into existence at 0. *)
  val incr : ?by:int -> t -> string -> unit

  (** 0 for a name never incremented. *)
  val get : t -> string -> int

  (** All counters, sorted by name. *)
  val to_list : t -> (string * int) list
end

(** Sample store with percentile queries, for latency distributions. *)
module Histogram : sig
  type t

  val create : unit -> t

  (** Record one sample. *)
  val add : t -> float -> unit

  val count : t -> int

  (** [percentile t p] for [p] in [\[0, 100\]]; linear interpolation
      between ranked samples. @raise Invalid_argument if empty or [p]
      out of range. *)
  val percentile : t -> float -> float

  (** The 50th percentile. *)
  val median : t -> float
end

(** An (x, y) series, e.g. latency as a function of reader count. *)
module Series : sig
  type t

  (** A named, empty series. *)
  val create : string -> t

  val name : t -> string

  (** Append one point. *)
  val add : t -> x:float -> y:float -> unit

  (** Points in insertion order. *)
  val points : t -> (float * float) list

  (** Least-squares linear fit [(intercept, slope)] — used to extract the
      paper's [lb + n * la] model from Figure 11 data.
      @raise Invalid_argument on fewer than two points. *)
  val linear_fit : t -> float * float
end
