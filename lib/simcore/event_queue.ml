type entry = { time : float; seq : int; run : unit -> unit }

type t = { mutable heap : entry array; mutable len : int }

let dummy = { time = 0.; seq = 0; run = ignore }

let create () = { heap = Array.make 64 dummy; len = 0 }

let is_empty t = t.len = 0

let size t = t.len

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 heap 0 t.len;
  t.heap <- heap

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.len && precedes t.heap.(l) t.heap.(i) then l else i in
  let smallest =
    if r < t.len && precedes t.heap.(r) t.heap.(smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(smallest);
    t.heap.(smallest) <- tmp;
    sift_down t smallest
  end

let add t ~time ~seq run =
  if t.len = Array.length t.heap then grow t;
  t.heap.(t.len) <- { time; seq; run };
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let min_time t = if t.len = 0 then None else Some t.heap.(0).time

type slot = { mutable s_time : float; mutable s_seq : int; mutable s_run : unit -> unit }

let slot () = { s_time = 0.; s_seq = 0; s_run = ignore }

(* The event hot path: [pop] allocates an option + tuple per event, so
   the engine's step loop drains through a caller-owned slot instead. *)
let pop_into t s =
  t.len > 0
  && begin
       let e = t.heap.(0) in
       t.len <- t.len - 1;
       t.heap.(0) <- t.heap.(t.len);
       t.heap.(t.len) <- dummy;
       if t.len > 0 then sift_down t 0;
       s.s_time <- e.time;
       s.s_seq <- e.seq;
       s.s_run <- e.run;
       true
     end

let pop t =
  if t.len = 0 then None
  else begin
    let e = t.heap.(0) in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- dummy;
    if t.len > 0 then sift_down t 0;
    Some (e.time, e.seq, e.run)
  end
