(** Discrete-event simulation engine.

    The engine owns a virtual clock (milliseconds, [float]) and a queue of
    events. Every cross-node interaction in the simulator is expressed as
    events scheduled on a single engine, which makes runs sequential and
    deterministic: two runs with the same seed execute the same events in
    the same order. *)

type t

(** A fresh engine with an empty queue at time 0. *)
val create : unit -> t

(** Current virtual time in milliseconds. *)
val now : t -> float

(** [schedule t ~delay k] fires [k] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** [schedule_at t ~time k] fires [k] at absolute [time].
    @raise Invalid_argument if [time] is in the past. *)
val schedule_at : t -> time:float -> (unit -> unit) -> unit

(** Execute the next event. Returns [false] when the queue is empty. *)
val step : t -> bool

(** Run until the queue drains, [until] is reached, or [max_events]
    have executed. [max_events] counts events executed by this call,
    not cumulatively over the engine's lifetime. *)
val run : ?until:float -> ?max_events:int -> t -> unit

(** Number of events executed so far. *)
val events_executed : t -> int

(** Number of events still queued. *)
val pending : t -> int

(** Profiling counters accumulated across all calls to {!run}.

    [cpu_s] is host CPU time (via [Sys.time]) spent inside the event
    loop; [cpu_us_per_sim_ms] relates it to simulated progress —
    microseconds of host CPU burned per simulated millisecond (0 when
    no virtual time has passed).  These feed the [engine.*] gauges of
    the observability registry (see [docs/OBSERVABILITY.md]). *)
type profile = {
  events : int;  (** same as {!events_executed} *)
  sim_ms : float;  (** current virtual time, same as {!now} *)
  cpu_s : float;
  cpu_us_per_sim_ms : float;
}

val profile : t -> profile
