(** Bounded event tracing for protocol monitoring.

    A ring buffer of timestamped events, cheap enough to leave compiled
    in: emitting to an absent tracer is a no-op.

    {b Deprecated in favour of [Asvm_obs.Trace]}: the protocol layers
    now emit structured events (typed message/ownership variants, JSONL
    export) through the observability library rather than the free-form
    strings of this module.  This module remains for generic string
    tracing in small tools; new code should use [Asvm_obs.Trace]. *)

type event = {
  time : float;  (** simulated ms *)
  node : int;
  category : string;  (** e.g. "asvm", "xmm", "owner" *)
  detail : string;
}

type t

(** [create ~capacity] keeps the most recent [capacity] events. *)
val create : capacity:int -> t

val emit : t option -> time:float -> node:int -> category:string -> detail:string -> unit

(** Events in emission order (oldest first). *)
val events : t -> event list

(** Total events ever emitted (including overwritten ones). *)
val emitted : t -> int

val clear : t -> unit
val pp_event : Format.formatter -> event -> unit

(** Dump the buffer, oldest first, one event per line. *)
val dump : Format.formatter -> t -> unit
