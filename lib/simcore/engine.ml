type t = {
  queue : Event_queue.t;
  (* reused by [step] so the event loop never allocates per event *)
  slot : Event_queue.slot;
  mutable now : float;
  mutable seq : int;
  mutable executed : int;
  mutable cpu_s : float;
}

let create () =
  {
    queue = Event_queue.create ();
    slot = Event_queue.slot ();
    now = 0.;
    seq = 0;
    executed = 0;
    cpu_s = 0.;
  }

let now t = t.now

let schedule_at t ~time k =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: time not finite";
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time ~seq:t.seq k;
  t.seq <- t.seq + 1

let schedule t ~delay k =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) k

let step t =
  Event_queue.pop_into t.queue t.slot
  && begin
       t.now <- t.slot.Event_queue.s_time;
       t.executed <- t.executed + 1;
       t.slot.Event_queue.s_run ();
       true
     end

let run ?until ?max_events t =
  let wall0 = Sys.time () in
  (* [max_events] bounds the events executed by THIS call: comparing
     against cumulative [t.executed] would make a second bounded [run]
     on the same engine silently execute nothing *)
  let executed0 = t.executed in
  let continue () =
    (match max_events with
    | Some m -> t.executed - executed0 < m
    | None -> true)
    && (match until, Event_queue.min_time t.queue with
       | Some u, Some next -> next <= u
       | _, None -> false
       | None, Some _ -> true)
  in
  while continue () && step t do
    ()
  done;
  t.cpu_s <- t.cpu_s +. (Sys.time () -. wall0);
  match until with
  | Some u when Event_queue.is_empty t.queue || Option.value ~default:u (Event_queue.min_time t.queue) > u ->
    if u > t.now then t.now <- u
  | _ -> ()

let events_executed t = t.executed

let pending t = Event_queue.size t.queue

type profile = {
  events : int;
  sim_ms : float;
  cpu_s : float;
  cpu_us_per_sim_ms : float;
}

let profile t =
  {
    events = t.executed;
    sim_ms = t.now;
    cpu_s = t.cpu_s;
    cpu_us_per_sim_ms = (if t.now > 0. then t.cpu_s *. 1e6 /. t.now else 0.);
  }
