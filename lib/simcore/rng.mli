(** Deterministic splitmix64 pseudo-random generator.

    The simulator never uses the global [Random] state: every source of
    randomness is an explicit [Rng.t] derived from the experiment seed, so
    that runs are reproducible bit-for-bit. *)

type t

(** [create seed] builds a generator whose stream is a pure function
    of [seed]. *)
val create : int -> t

(** Uniform integer in [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** Fair coin flip. *)
val bool : t -> bool

(** Derive an independent stream (for per-node generators). *)
val split : t -> t

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
