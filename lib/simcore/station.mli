(** Single-server FIFO service station.

    Stations model a sequential resource — a node's message-handling
    processor, a pager thread, a disk arm. Work submitted while the server
    is busy queues behind it; this is what turns the XMM centralized
    manager into the bottleneck the paper describes. *)

type t

(** An idle station serving jobs on the given engine's clock. *)
val create : Engine.t -> t

(** [submit t ~service k] enqueues a job needing [service] ms of the
    server; [k] fires when the job completes.
    @raise Invalid_argument if [service] is negative. *)
val submit : t -> service:float -> (unit -> unit) -> unit

(** Time at which the server will next be idle (>= now). *)
val busy_until : t -> float

(** Total service time ever accepted, for utilization accounting. *)
val busy_total : t -> float

(** Number of jobs ever submitted. *)
val jobs : t -> int
