(** Priority queue of timestamped events.

    Events are ordered by time; ties are broken by the insertion sequence
    number so that runs are fully deterministic. *)

type t

(** An empty queue. *)
val create : unit -> t

(** No events queued. *)
val is_empty : t -> bool

(** Number of events queued. *)
val size : t -> int

(** [add q ~time ~seq k] inserts event [k] firing at [time]. *)
val add : t -> time:float -> seq:int -> (unit -> unit) -> unit

(** Smallest timestamp currently queued, if any. *)
val min_time : t -> float option

(** Remove and return the earliest event as [(time, seq, k)]. *)
val pop : t -> (float * int * (unit -> unit)) option

(** Reusable destination for {!pop_into}: lets the event loop drain the
    queue without allocating an option + tuple per event. *)
type slot = {
  mutable s_time : float;
  mutable s_seq : int;
  mutable s_run : unit -> unit;
}

(** A fresh slot (time 0, no-op closure). *)
val slot : unit -> slot

(** [pop_into q s] removes the earliest event into [s] and returns
    [true], or returns [false] leaving [s] untouched when the queue is
    empty. Equivalent to {!pop} but allocation-free. *)
val pop_into : t -> slot -> bool
