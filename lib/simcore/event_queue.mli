(** Priority queue of timestamped events.

    Events are ordered by time; ties are broken by the insertion sequence
    number so that runs are fully deterministic. *)

type t

(** An empty queue. *)
val create : unit -> t

(** No events queued. *)
val is_empty : t -> bool

(** Number of events queued. *)
val size : t -> int

(** [add q ~time ~seq k] inserts event [k] firing at [time]. *)
val add : t -> time:float -> seq:int -> (unit -> unit) -> unit

(** Smallest timestamp currently queued, if any. *)
val min_time : t -> float option

(** Remove and return the earliest event as [(time, seq, k)]. *)
val pop : t -> (float * int * (unit -> unit)) option
