module Engine = Asvm_simcore.Engine

type task_rec = { id : Ids.task_id; amap : Address_map.t; pmap : Pmap.t }

type pending = {
  mutable desired : Prot.t;
  mutable waiters : (unit -> unit) list;
}

(* Per-fault context: tracks whether the fault ever left the node, for the
   local/remote fault statistics. *)
type fault_ctx = { mutable went_to_manager : bool }

type t = {
  engine : Engine.t;
  node : int;
  config : Vm_config.t;
  backing : Backing.t;
  ids : Ids.Alloc.t;
  objects : (Ids.obj_id, Vm_object.t) Hashtbl.t;
  tasks : (Ids.task_id, task_rec) Hashtbl.t;
  (* (object, page) -> set of (task, vpage) translations backed by it *)
  reverse : (Ids.obj_id * int, (Ids.task_id * int, unit) Hashtbl.t) Hashtbl.t;
  pending : (Ids.obj_id * int, pending) Hashtbl.t;
  (* pages of temporary objects that live in the default pager's store *)
  swapped : (Ids.obj_id * int, unit) Hashtbl.t;
  fifo : (Ids.obj_id * int) Queue.t;
  mutable resident_total : int;
  mutable faults : int;
  mutable local_faults : int;
  mutable evictions : int;
  (* watermark pageout daemon (docs/SERVING.md): at most one scan is in
     flight; [pageout_armed] is the wakeup latch *)
  mutable pageout_armed : bool;
  mutable pageout_runs : int;
  mutable pageout_evictions : int;
}

let create ~engine ~node ~config ~backing ~ids =
  {
    engine;
    node;
    config;
    backing;
    ids;
    objects = Hashtbl.create 64;
    tasks = Hashtbl.create 8;
    reverse = Hashtbl.create 256;
    pending = Hashtbl.create 32;
    swapped = Hashtbl.create 64;
    fifo = Queue.create ();
    resident_total = 0;
    faults = 0;
    local_faults = 0;
    evictions = 0;
    pageout_armed = false;
    pageout_runs = 0;
    pageout_evictions = 0;
  }

let engine t = t.engine
let node t = t.node
let config t = t.config

(* ------------------------------------------------------------------ *)
(* Objects                                                            *)
(* ------------------------------------------------------------------ *)

let create_object t ~id ~size_pages ~temporary =
  if Hashtbl.mem t.objects id then
    invalid_arg "Vm.create_object: id already present on this node";
  let o = Vm_object.create ~id ~size_pages ~temporary () in
  Hashtbl.add t.objects id o;
  o

let find_object t id = Hashtbl.find_opt t.objects id

let get_object t id =
  match find_object t id with
  | Some o -> o
  | None ->
    failwith
      (Printf.sprintf "Vm.get_object: node %d has no representation of obj#%d"
         t.node id)

let set_manager t id manager = (get_object t id).Vm_object.manager <- manager

let task_rec t task =
  match Hashtbl.find_opt t.tasks task with
  | Some tr -> tr
  | None -> failwith (Printf.sprintf "Vm: unknown task#%d on node %d" task t.node)

(* ------------------------------------------------------------------ *)
(* Reverse map and translation maintenance                            *)
(* ------------------------------------------------------------------ *)

let add_reverse t obj index task vpage =
  let key = (obj, index) in
  let set =
    match Hashtbl.find_opt t.reverse key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 4 in
      Hashtbl.add t.reverse key s;
      s
  in
  Hashtbl.replace set (task, vpage) ()

let remove_translations t obj index =
  match Hashtbl.find_opt t.reverse (obj, index) with
  | None -> ()
  | Some set ->
    Hashtbl.iter
      (fun (task, vpage) () ->
        match Hashtbl.find_opt t.tasks task with
        | Some tr -> Pmap.remove tr.pmap ~vpage
        | None -> ())
      set;
    Hashtbl.remove t.reverse (obj, index)

let downgrade_translations t obj index =
  match Hashtbl.find_opt t.reverse (obj, index) with
  | None -> ()
  | Some set ->
    Hashtbl.iter
      (fun (task, vpage) () ->
        match Hashtbl.find_opt t.tasks task with
        | Some tr -> (
          match Pmap.lookup tr.pmap ~vpage with
          | Some trn -> trn.prot <- Prot.min trn.prot Prot.Read_only
          | None -> ())
        | None -> ())
      set

(* ------------------------------------------------------------------ *)
(* Residency, eviction                                                *)
(* ------------------------------------------------------------------ *)

let resident_total t = t.resident_total
let capacity_pages t = t.config.memory_pages
let free_pages t = t.config.memory_pages - t.resident_total

let frame_of t obj index =
  match find_object t obj with
  | Some o -> Vm_object.frame o index
  | None -> None

let is_resident t ~obj ~page = Option.is_some (frame_of t obj page)

let frame_access t ~obj ~page =
  Option.map (fun (fr : Vm_object.frame) -> fr.access) (frame_of t obj page)

let frame_contents t ~obj ~page =
  Option.map
    (fun (fr : Vm_object.frame) -> Contents.snapshot fr.contents)
    (frame_of t obj page)

let frame_dirty t ~obj ~page =
  match frame_of t obj page with Some fr -> fr.dirty | None -> false

(* checksums the frame in place — no handle allocation, and the memo
   on the frame's buffer survives, so repeated audits of a quiescent
   page are cache hits *)
let frame_checksum t ~obj ~page =
  Option.map
    (fun (fr : Vm_object.frame) -> Contents.checksum fr.contents)
    (frame_of t obj page)

let wake t obj page =
  match Hashtbl.find_opt t.pending (obj, page) with
  | None -> ()
  | Some p ->
    Hashtbl.remove t.pending (obj, page);
    List.iter (fun k -> Engine.schedule t.engine ~delay:0. k) p.waiters

let evict_frame t (o : Vm_object.t) index (fr : Vm_object.frame) =
  t.evictions <- t.evictions + 1;
  remove_translations t o.id index;
  Vm_object.remove o ~page:index;
  t.resident_total <- t.resident_total - 1;
  match o.manager with
  | Some m ->
    Engine.schedule t.engine ~delay:t.config.emmi_call_ms (fun () ->
        m.m_data_return ~page:index ~contents:fr.contents ~dirty:fr.dirty)
  | None ->
    if fr.dirty && o.temporary then begin
      Hashtbl.replace t.swapped (o.id, index) ();
      t.backing.store ~obj:o.id ~page:index ~contents:fr.contents ~k:ignore
    end
(* clean pages are re-derivable: zero-fill, the shadow chain, or the
   backing store already holds them *)

let evict_one t =
  let attempts = Queue.length t.fifo in
  let rec loop n =
    if n <= 0 then false
    else
      match Queue.take_opt t.fifo with
      | None -> false
      | Some (oid, index) -> (
        match frame_of t oid index with
        | None -> loop (n - 1)
        | Some fr ->
          if fr.wired then begin
            Queue.push (oid, index) t.fifo;
            loop (n - 1)
          end
          else begin
            evict_frame t (get_object t oid) index fr;
            true
          end)
  in
  loop attempts


let ensure_capacity t =
  while t.resident_total > t.config.memory_pages && evict_one t do
    ()
  done

(* Watermark pageout daemon (docs/SERVING.md): when an allocation drops
   free memory to the low watermark, one scan is scheduled after
   [pageout_scan_delay_ms]; the scan evicts back up to the high
   watermark.  The daemon is woken only by allocations, never by
   itself, so a node whose every frame is wired cannot livelock —
   the next allocation re-arms it. *)
let pageout_scan t () =
  t.pageout_armed <- false;
  if
    t.config.pageout_low_pages > 0
    && free_pages t <= t.config.pageout_low_pages
  then begin
    t.pageout_runs <- t.pageout_runs + 1;
    let progress = ref true in
    while !progress && free_pages t < t.config.pageout_high_pages do
      if evict_one t then t.pageout_evictions <- t.pageout_evictions + 1
      else progress := false
    done
  end

let maybe_wake_pageout t =
  if
    t.config.pageout_low_pages > 0
    && (not t.pageout_armed)
    && free_pages t <= t.config.pageout_low_pages
  then begin
    t.pageout_armed <- true;
    Engine.schedule t.engine ~delay:t.config.pageout_scan_delay_ms
      (pageout_scan t)
  end

let install_frame t (o : Vm_object.t) index contents ~dirty ~access =
  match Vm_object.frame o index with
  | Some fr ->
    fr.contents <- contents;
    fr.dirty <- dirty;
    fr.access <- access;
    fr
  | None ->
    let fr : Vm_object.frame = { contents; dirty; access; wired = false } in
    Vm_object.install o ~page:index fr;
    t.resident_total <- t.resident_total + 1;
    Queue.push (o.id, index) t.fifo;
    ensure_capacity t;
    maybe_wake_pageout t;
    fr

let try_accept_page t ~obj ~page ~contents ~dirty ~access =
  (* A page a parked fault is waiting for is never bounced for lack of
     memory: one synchronous eviction (the fault path's [ensure_capacity]
     backstop) makes room, so the fault completes here instead of
     detouring through the pager.  Pure placement traffic — internode
     pageout, push-to-copy — still answers [false] when full; that
     refusal is what lets the 4-step eviction algorithm converge on the
     pager when the whole machine is out of memory, instead of
     circulating evicted pages between full nodes forever. *)
  let fault_waiting = Hashtbl.mem t.pending (obj, page) in
  if free_pages t <= 0 && not (fault_waiting && evict_one t) then false
  else begin
    let o = get_object t obj in
    ignore (install_frame t o page (Contents.snapshot contents) ~dirty ~access);
    wake t obj page;
    true
  end

let wire t ~obj ~page =
  match frame_of t obj page with
  | Some fr -> fr.wired <- true
  | None -> ()

let unwire t ~obj ~page =
  match frame_of t obj page with
  | Some fr -> fr.wired <- false
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Copy machinery                                                     *)
(* ------------------------------------------------------------------ *)

let write_protect_object t oid =
  Hashtbl.iter
    (fun (o, index) _set -> if o = oid then downgrade_translations t o index)
    t.reverse

let make_asymmetric_copy t ~src =
  let o = get_object t src in
  let c =
    create_object t ~id:(Ids.Alloc.fresh t.ids) ~size_pages:o.size_pages
      ~temporary:true
  in
  c.shadow <- Some (src, 0);
  (match o.copy with
  | Some head_id ->
    let head = get_object t head_id in
    head.shadow <- Some (c.id, 0);
    c.copy <- Some head_id;
    (* the old head now snapshots through the new copy: the new copy
       must push its pre-modification contents down before any write,
       exactly as if the old head had been copied from it *)
    c.version <- c.version + 1
  | None -> ());
  o.copy <- Some c.id;
  o.version <- o.version + 1;
  write_protect_object t src;
  c

let unsplice_copy t ~src ~copy =
  let rec remove_from prev_id =
    let prev = get_object t prev_id in
    match prev.Vm_object.copy with
    | None -> ()
    | Some cid when cid = copy ->
      let c = get_object t copy in
      prev.copy <- c.copy;
      (match c.copy with
      | Some older_id ->
        let older = get_object t older_id in
        (* the older copy now shadows [prev] directly: rebase its
           offset through the removed link *)
        let o_off = match older.shadow with Some (_, o) -> o | None -> 0 in
        let c_off = match c.shadow with Some (_, o) -> o | None -> 0 in
        older.shadow <- Some (prev_id, o_off + c_off)
      | None -> ());
      c.copy <- None
    | Some cid -> remove_from cid
  in
  remove_from src

let lock_object_readonly t oid =
  let o = get_object t oid in
  Hashtbl.iter
    (fun index (fr : Vm_object.frame) ->
      fr.access <- Prot.min fr.access Prot.Read_only;
      downgrade_translations t oid index)
    o.resident

(* ------------------------------------------------------------------ *)
(* Tasks and mappings                                                 *)
(* ------------------------------------------------------------------ *)

let create_task t =
  let id = Ids.Alloc.fresh t.ids in
  Hashtbl.add t.tasks id { id; amap = Address_map.create (); pmap = Pmap.create () };
  id

let task_exists t task = Hashtbl.mem t.tasks task

let map t ~task ~obj ~start ~npages ~obj_offset ~inherit_ =
  let tr = task_rec t task in
  ignore (get_object t obj);
  Address_map.map tr.amap ~start ~npages ~obj ~obj_offset ~inherit_

let entries t ~task = Address_map.entries (task_rec t task).amap

let mark_needs_copy t ~task ~start =
  let tr = task_rec t task in
  match List.find_opt (fun (e : Address_map.entry) -> e.start = start)
          (Address_map.entries tr.amap)
  with
  | None -> invalid_arg "Vm.mark_needs_copy: no entry at start"
  | Some e ->
    e.needs_copy <- true;
    for vpage = e.start to e.start + e.npages - 1 do
      match Pmap.lookup tr.pmap ~vpage with
      | Some trn -> trn.prot <- Prot.min trn.prot Prot.Read_only
      | None -> ()
    done

let entry_at t ~task ~start =
  let tr = task_rec t task in
  match
    List.find_opt
      (fun (e : Address_map.entry) -> e.start = start)
      (Address_map.entries tr.amap)
  with
  | Some e -> (tr, e)
  | None ->
    invalid_arg (Printf.sprintf "Vm: task#%d has no entry at vpage %d" task start)

let unmap t ~task ~start =
  let tr, e = entry_at t ~task ~start in
  for vpage = e.start to e.start + e.npages - 1 do
    match Pmap.lookup tr.pmap ~vpage with
    | Some trn ->
      (match Hashtbl.find_opt t.reverse (trn.backing_obj, trn.index) with
      | Some set -> Hashtbl.remove set (task, vpage)
      | None -> ());
      Pmap.remove tr.pmap ~vpage
    | None -> ()
  done;
  Address_map.unmap tr.amap ~start

let protect t ~task ~start ~max_prot =
  let tr, e = entry_at t ~task ~start in
  e.max_prot <- max_prot;
  for vpage = e.start to e.start + e.npages - 1 do
    match Pmap.lookup tr.pmap ~vpage with
    | Some trn ->
      if Prot.compare trn.prot max_prot > 0 then
        if Prot.equal max_prot Prot.No_access then Pmap.remove tr.pmap ~vpage
        else trn.prot <- max_prot
    | None -> ()
  done

let terminate_object t oid =
  let o = get_object t oid in
  if Vm_object.has_manager o then
    invalid_arg "Vm.terminate_object: object is managed";
  List.iter
    (fun page ->
      remove_translations t oid page;
      Vm_object.remove o ~page;
      t.resident_total <- t.resident_total - 1)
    (Vm_object.resident_pages o);
  Hashtbl.iter
    (fun (obj, page) () -> if obj = oid then Hashtbl.remove t.swapped (obj, page))
    (Hashtbl.copy t.swapped);
  Hashtbl.remove t.objects oid

let translate_vpage t ~task ~vpage =
  let tr = task_rec t task in
  match Address_map.lookup tr.amap ~vpage with
  | None -> None
  | Some e -> Some (e.obj, vpage - e.start + e.obj_offset)

(* ------------------------------------------------------------------ *)
(* Chain lookup                                                       *)
(* ------------------------------------------------------------------ *)

type lookup =
  | L_found of Vm_object.t * int
  | L_zero of Vm_object.t * int
  | L_swapped of Vm_object.t * int
  | L_manager of Vm_object.t * int

let rec lookup_chain t (o : Vm_object.t) index =
  if Vm_object.is_resident o index then L_found (o, index)
  else if Hashtbl.mem t.swapped (o.id, index) then L_swapped (o, index)
  else if Vm_object.has_manager o then L_manager (o, index)
  else
    match o.shadow with
    | Some (sid, off) -> lookup_chain t (get_object t sid) (index + off)
    | None ->
      if o.temporary then L_zero (o, index)
      else
        failwith
          (Printf.sprintf
             "Vm.lookup_chain: obj#%d is neither temporary nor managed" o.id)

(* ------------------------------------------------------------------ *)
(* Manager requests                                                   *)
(* ------------------------------------------------------------------ *)

let manager_of t (o : Vm_object.t) =
  match o.manager with
  | Some m -> m
  | None ->
    failwith (Printf.sprintf "Vm: obj#%d has no manager (node %d)" o.id t.node)

let issue_request t (o : Vm_object.t) index desired =
  let m = manager_of t o in
  let resident = Vm_object.is_resident o index in
  Engine.schedule t.engine ~delay:t.config.emmi_call_ms (fun () ->
      if resident then m.m_data_unlock ~page:index ~desired
      else m.m_data_request ~page:index ~desired)

let park t ctx (o : Vm_object.t) index want retry =
  ctx.went_to_manager <- true;
  match Hashtbl.find_opt t.pending (o.id, index) with
  | Some p ->
    p.waiters <- retry :: p.waiters;
    if Prot.compare want p.desired > 0 then begin
      p.desired <- want;
      issue_request t o index want
    end
  | None ->
    Hashtbl.add t.pending (o.id, index) { desired = want; waiters = [ retry ] };
    issue_request t o index want

(* ------------------------------------------------------------------ *)
(* Fault handling                                                     *)
(* ------------------------------------------------------------------ *)

let resolve_symmetric t (entry : Address_map.entry) =
  let o = get_object t entry.obj in
  let s =
    create_object t ~id:(Ids.Alloc.fresh t.ids) ~size_pages:entry.npages
      ~temporary:true
  in
  s.shadow <- Some (o.id, entry.obj_offset);
  entry.obj <- s.id;
  entry.obj_offset <- 0;
  entry.needs_copy <- false

let rec fault t ctx task vpage want k =
  let tr = task_rec t task in
  match Address_map.lookup tr.amap ~vpage with
  | None ->
    failwith
      (Printf.sprintf "Vm.fault: task#%d vpage %d unmapped (node %d)" task vpage
         t.node)
  | Some entry ->
    if Prot.compare want entry.max_prot > 0 then
      failwith
        (Printf.sprintf
           "Vm.fault: protection violation: task#%d vpage %d wants %s, max %s"
           task vpage (Prot.to_string want)
           (Prot.to_string entry.max_prot));
    if Prot.equal want Prot.Read_write && entry.needs_copy then
      resolve_symmetric t entry;
    let o = get_object t entry.obj in
    let index = vpage - entry.start + entry.obj_offset in
    (match want with
    | Prot.Read_only -> fault_read t ctx task vpage o index k
    | Prot.Read_write -> fault_write t ctx task vpage o index k
    | Prot.No_access -> assert false)

and retry t ctx task vpage want k () = fault t ctx task vpage want k

and finish t ctx task vpage want ~backing_obj ~index k =
  Engine.schedule t.engine ~delay:t.config.pmap_enter_ms (fun () ->
      match frame_of t backing_obj index with
      | Some fr when Prot.allows fr.access want ->
        let tr = task_rec t task in
        Pmap.enter tr.pmap ~vpage ~backing_obj ~index ~prot:want;
        add_reverse t backing_obj index task vpage;
        if not ctx.went_to_manager then t.local_faults <- t.local_faults + 1;
        k ()
      | Some _ | None ->
        (* invalidated while the translation was being installed *)
        fault t ctx task vpage want k)

and fault_read t ctx task vpage (o : Vm_object.t) index k =
  let want = Prot.Read_only in
  match lookup_chain t o index with
  | L_found (bo, bi) -> finish t ctx task vpage want ~backing_obj:bo.id ~index:bi k
  | L_zero (base, bi) ->
    Engine.schedule t.engine ~delay:t.config.zero_fill_ms (fun () ->
        if not (Vm_object.is_resident base bi) then
          ignore
            (install_frame t base bi
               (Contents.zero ~words:t.config.words_per_page)
               ~dirty:false ~access:Prot.Read_write);
        fault t ctx task vpage want k)
  | L_swapped (base, bi) ->
    ctx.went_to_manager <- true;
    t.backing.fetch ~obj:base.id ~page:bi ~k:(fun contents ->
        (match contents with
        | Some c ->
          ignore (install_frame t base bi c ~dirty:false ~access:Prot.Read_write)
        | None ->
          failwith "Vm.fault_read: swapped page missing from backing store");
        fault t ctx task vpage want k)
  | L_manager (mo, mi) ->
    park t ctx mo mi want (retry t ctx task vpage want k)

and fault_write t ctx task vpage (o : Vm_object.t) index k =
  let want = Prot.Read_write in
  match Vm_object.frame o index with
  | Some fr when Prot.allows fr.access Prot.Read_write ->
    if
      Option.is_some o.copy
      && (not (Vm_object.has_manager o))
      && Vm_object.needs_push o index
    then
      local_push t o index (fun () -> fault t ctx task vpage want k)
    else begin
      fr.dirty <- true;
      finish t ctx task vpage want ~backing_obj:o.id ~index k
    end
  | Some _ ->
    (* resident but insufficient access: managed page, ask for upgrade *)
    park t ctx o index want (retry t ctx task vpage want k)
  | None -> materialize_for_write t ctx task vpage o index k

(* Get the pre-modification contents into [o] as a clean frame, then
   re-run the fault (which will push / dirty / map). *)
and materialize_for_write t ctx task vpage (o : Vm_object.t) index k =
  let want = Prot.Read_write in
  let again () = fault t ctx task vpage want k in
  if Hashtbl.mem t.swapped (o.id, index) then begin
    ctx.went_to_manager <- true;
    t.backing.fetch ~obj:o.id ~page:index ~k:(fun contents ->
        (match contents with
        | Some c ->
          ignore (install_frame t o index c ~dirty:false ~access:Prot.Read_write)
        | None -> failwith "Vm: swapped page missing from backing store");
        again ())
  end
  else if Vm_object.has_manager o then
    park t ctx o index want (retry t ctx task vpage want k)
  else
    match o.shadow with
    | None ->
      if o.temporary then
        Engine.schedule t.engine ~delay:t.config.zero_fill_ms (fun () ->
            if not (Vm_object.is_resident o index) then
              ignore
                (install_frame t o index
                   (Contents.zero ~words:t.config.words_per_page)
                   ~dirty:false ~access:Prot.Read_write);
            again ())
      else
        failwith
          (Printf.sprintf "Vm: obj#%d not temporary and not managed" o.id)
    | Some (sid, off) -> (
      match lookup_chain t (get_object t sid) (index + off) with
      | L_found (bo, bi) ->
        let src = Vm_object.frame bo bi in
        Engine.schedule t.engine ~delay:t.config.copy_page_ms (fun () ->
            (match (src, Vm_object.is_resident o index) with
            | Some fr, false ->
              ignore
                (install_frame t o index
                   (Contents.snapshot fr.contents)
                   ~dirty:false ~access:Prot.Read_write)
            | _ -> ());
            again ())
      | L_zero (_, _) ->
        Engine.schedule t.engine ~delay:t.config.zero_fill_ms (fun () ->
            if not (Vm_object.is_resident o index) then
              ignore
                (install_frame t o index
                   (Contents.zero ~words:t.config.words_per_page)
                   ~dirty:false ~access:Prot.Read_write);
            again ())
      | L_swapped (base, bi) ->
        ctx.went_to_manager <- true;
        t.backing.fetch ~obj:base.id ~page:bi ~k:(fun contents ->
            (match contents with
            | Some c ->
              ignore
                (install_frame t base bi c ~dirty:false ~access:Prot.Read_write)
            | None -> failwith "Vm: swapped page missing from backing store");
            again ())
      | L_manager (mo, mi) ->
        park t ctx mo mi Prot.Read_only (retry t ctx task vpage want k))

(* Push the frozen contents of (o, index) into the head of o's copy
   chain before the page is modified (paper 2.2, local case). All
   translations of the source frame are removed: tasks that mapped it
   directly through a shadow-chain read hold a snapshot view and must
   re-resolve through the chain, where they will find the pushed copy. *)
and local_push t (o : Vm_object.t) index then_k =
  let head_id =
    match o.copy with Some id -> id | None -> assert false
  in
  let head = get_object t head_id in
  let off = match head.shadow with Some (_, off) -> off | None -> 0 in
  let head_index = index - off in
  Engine.schedule t.engine ~delay:t.config.copy_page_ms (fun () ->
      (match Vm_object.frame o index with
      | Some fr ->
        if
          head_index >= 0
          && head_index < head.size_pages
          && (not (Vm_object.is_resident head head_index))
          && not (Hashtbl.mem t.swapped (head.id, head_index))
          (* a page evicted to the backing store still belongs to the
             copy: pushing would clobber its snapshot *)
        then
          ignore
            (install_frame t head head_index
               (Contents.snapshot fr.contents)
               ~dirty:true ~access:Prot.Read_write);
        Vm_object.set_page_version o index o.version;
        remove_translations t o.id index
      | None -> ());
      then_k ())

let touch t ~task ~vpage ~want k =
  if Prot.equal want Prot.No_access then invalid_arg "Vm.touch: want = No_access";
  let tr = task_rec t task in
  match Pmap.lookup tr.pmap ~vpage with
  | Some trn when Prot.allows trn.prot want -> Engine.schedule t.engine ~delay:0. k
  | Some _ | None ->
    t.faults <- t.faults + 1;
    let ctx = { went_to_manager = false } in
    Engine.schedule t.engine ~delay:t.config.fault_entry_ms (fun () ->
        fault t ctx task vpage want k)

let page_contents t ~task ~vpage =
  let tr = task_rec t task in
  match Pmap.lookup tr.pmap ~vpage with
  | None -> None
  | Some trn ->
    Option.map
      (fun (fr : Vm_object.frame) -> Contents.snapshot fr.contents)
      (frame_of t trn.backing_obj trn.index)

let set_frame_dirty t ~obj ~page =
  match frame_of t obj page with
  | Some fr -> fr.dirty <- true
  | None -> ()

let read_word t ~task ~addr k =
  let wpp = t.config.words_per_page in
  let vpage = addr / wpp and word = addr mod wpp in
  let tr = task_rec t task in
  let rec attempt () =
    match Pmap.lookup tr.pmap ~vpage with
    | Some trn when Prot.allows trn.prot Prot.Read_only -> (
      match frame_of t trn.backing_obj trn.index with
      | Some fr -> k (Contents.get fr.contents word)
      | None ->
        Pmap.remove tr.pmap ~vpage;
        touch t ~task ~vpage ~want:Prot.Read_only attempt)
    | Some _ | None -> touch t ~task ~vpage ~want:Prot.Read_only attempt
  in
  attempt ()

let write_word t ~task ~addr ~value k =
  let wpp = t.config.words_per_page in
  let vpage = addr / wpp and word = addr mod wpp in
  let tr = task_rec t task in
  let rec attempt () =
    match Pmap.lookup tr.pmap ~vpage with
    | Some trn when Prot.allows trn.prot Prot.Read_write -> (
      match frame_of t trn.backing_obj trn.index with
      | Some fr ->
        Contents.set fr.contents word value;
        fr.dirty <- true;
        k ()
      | None ->
        Pmap.remove tr.pmap ~vpage;
        touch t ~task ~vpage ~want:Prot.Read_write attempt)
    | Some _ | None -> touch t ~task ~vpage ~want:Prot.Read_write attempt
  in
  attempt ()

(* ------------------------------------------------------------------ *)
(* Kernel EMMI entry points                                           *)
(* ------------------------------------------------------------------ *)

let push_into_copy_chain t (o : Vm_object.t) page contents =
  match o.copy with
  | None -> ()
  | Some head_id ->
    let head = get_object t head_id in
    let off = match head.shadow with Some (_, off) -> off | None -> 0 in
    let head_index = page - off in
    if
      head_index >= 0
      && head_index < head.size_pages
      && (not (Vm_object.is_resident head head_index))
      && not (Hashtbl.mem t.swapped (head.id, head_index))
    then begin
      ignore
        (install_frame t head head_index (Contents.snapshot contents) ~dirty:true
           ~access:Prot.Read_write);
      wake t head_id head_index
    end;
    Vm_object.set_page_version o page o.version;
    (* snapshot views of the source frame must re-resolve (see
       [local_push]) *)
    remove_translations t o.id page

let data_supply t ~obj ~page ~contents ~lock ~mode =
  Engine.schedule t.engine ~delay:t.config.emmi_call_ms (fun () ->
      let o = get_object t obj in
      match (mode : Emmi.supply_mode) with
      | Supply_normal ->
        ignore
          (install_frame t o page (Contents.snapshot contents) ~dirty:false
             ~access:lock);
        wake t obj page
      | Supply_push -> push_into_copy_chain t o page contents)

let lock_request t ~obj ~page ~op ~reply =
  Engine.schedule t.engine ~delay:t.config.emmi_call_ms (fun () ->
      let o = get_object t obj in
      let answer result =
        Engine.schedule t.engine ~delay:t.config.emmi_call_ms (fun () ->
            reply result)
      in
      match Vm_object.frame o page with
      | None -> (
        match (op.Emmi.mode, o.copy) with
        | Emmi.Lock_push_first, Some _ ->
          (* a local copy needs the frozen contents, but the page is not
             cached here: the manager must send them (paper 3.7.2) *)
          answer Emmi.Lock_not_present
        | _ -> answer (Emmi.Lock_done { returned = None }))
      | Some fr ->
        (match op.Emmi.mode with
        | Emmi.Lock_push_first -> push_into_copy_chain t o page fr.contents
        | Emmi.Lock_plain -> ());
        let returned =
          if op.Emmi.clean && fr.dirty then begin
            fr.dirty <- false;
            Some (Contents.snapshot fr.contents)
          end
          else None
        in
        (match (op.Emmi.max_access : Prot.t) with
        | No_access ->
          remove_translations t obj page;
          Vm_object.remove o ~page;
          t.resident_total <- t.resident_total - 1
        | Read_only ->
          fr.access <- Prot.min fr.access Prot.Read_only;
          downgrade_translations t obj page
        | Read_write ->
          fr.access <- Prot.Read_write;
          wake t obj page);
        answer (Emmi.Lock_done { returned }))

let pull_request t ~obj ~page ~reply =
  Engine.schedule t.engine ~delay:t.config.emmi_call_ms (fun () ->
      let answer result =
        Engine.schedule t.engine ~delay:t.config.emmi_call_ms (fun () ->
            reply result)
      in
      let rec descend (s : Vm_object.t) index =
        match Vm_object.frame s index with
        | Some fr -> answer (Emmi.Pull_contents (Contents.snapshot fr.contents))
        | None ->
          if Hashtbl.mem t.swapped (s.id, index) then
            t.backing.fetch ~obj:s.id ~page:index ~k:(function
              | Some c -> answer (Emmi.Pull_contents c)
              | None -> answer Emmi.Pull_zero_fill)
          else if Vm_object.has_manager s then answer (Emmi.Pull_ask_shadow s.id)
          else
            match s.shadow with
            | Some (sid, off) -> descend (get_object t sid) (index + off)
            | None ->
              if s.temporary then answer Emmi.Pull_zero_fill
              else answer (Emmi.Pull_ask_shadow s.id)
      in
      let o = get_object t obj in
      match Vm_object.frame o page with
      | Some fr -> answer (Emmi.Pull_contents (Contents.snapshot fr.contents))
      | None ->
        if Hashtbl.mem t.swapped (o.id, page) then
          t.backing.fetch ~obj ~page ~k:(function
            | Some c -> answer (Emmi.Pull_contents c)
            | None -> answer Emmi.Pull_zero_fill)
        else
          (match o.shadow with
          | Some (sid, off) -> descend (get_object t sid) (page + off)
          | None ->
            if o.temporary then answer Emmi.Pull_zero_fill
            else answer (Emmi.Pull_ask_shadow o.id)))

(* ------------------------------------------------------------------ *)
(* Crash and rejoin                                                   *)
(* ------------------------------------------------------------------ *)

let crash_reset t =
  (* Volatile state dies with the node: every resident frame, every
     hardware translation, the eviction queue, and the record of pages
     parked in the default pager's swap.  What survives is the address
     space structure (tasks, their address maps, the object table) —
     the restarted-application idealization: the same program resumes
     with cold memory.  Fault continuations parked in [pending] also
     survive, so [redrive_pending] can restart them at rejoin. *)
  Hashtbl.iter
    (fun _id (o : Vm_object.t) ->
      List.iter (fun page -> Vm_object.remove o ~page) (Vm_object.resident_pages o))
    t.objects;
  Hashtbl.reset t.reverse;
  Hashtbl.reset t.swapped;
  Queue.clear t.fifo;
  t.resident_total <- 0;
  t.pageout_armed <- false;
  Hashtbl.iter
    (fun _id tr ->
      List.iter (fun vpage -> Pmap.remove tr.pmap ~vpage) (Pmap.vpages tr.pmap))
    t.tasks

let redrive_pending t =
  (* Restart every fault that was waiting on a manager reply when the
     node crashed.  The pending entry is removed *before* its waiters
     run: each waiter re-faults from scratch, and [park] then creates a
     fresh entry (and a fresh manager request) rather than appending to
     the stale one. *)
  let entries = Hashtbl.fold (fun key p acc -> (key, p) :: acc) t.pending [] in
  List.iter
    (fun (key, p) ->
      Hashtbl.remove t.pending key;
      List.iter (fun k -> Engine.schedule t.engine ~delay:0. k) p.waiters)
    entries

let pending_faults t = Hashtbl.length t.pending

let pending_pages t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.pending []
  |> List.sort_uniq compare

let faults t = t.faults
let local_faults t = t.local_faults
let evictions t = t.evictions
let pageout_runs t = t.pageout_runs
let pageout_evictions t = t.pageout_evictions
