type t = {
  words_per_page : int;
  memory_pages : int;
  fault_entry_ms : float;
  pmap_enter_ms : float;
  emmi_call_ms : float;
  copy_page_ms : float;
  zero_fill_ms : float;
  pageout_low_pages : int;
  pageout_high_pages : int;
  pageout_scan_delay_ms : float;
}

let default =
  {
    words_per_page = 16;
    memory_pages = 1152;
    fault_entry_ms = 0.45;
    pmap_enter_ms = 0.05;
    emmi_call_ms = 0.04;
    copy_page_ms = 0.12;
    zero_fill_ms = 0.08;
    pageout_low_pages = 0;
    pageout_high_pages = 0;
    pageout_scan_delay_ms = 0.25;
  }

let with_memory t pages = { t with memory_pages = pages }

let with_pageout t ~low ~high =
  if low < 0 || high < low || high > t.memory_pages then
    invalid_arg "Vm_config.with_pageout: need 0 <= low <= high <= memory";
  { t with pageout_low_pages = low; pageout_high_pages = high }
