type t = {
  store :
    obj:Ids.obj_id -> page:int -> contents:Contents.t -> k:(unit -> unit) -> unit;
  fetch :
    obj:Ids.obj_id -> page:int -> k:(Contents.t option -> unit) -> unit;
}

let in_memory () =
  let table : (Ids.obj_id * int, Contents.t) Hashtbl.t = Hashtbl.create 64 in
  {
    store =
      (fun ~obj ~page ~contents ~k ->
        Hashtbl.replace table (obj, page) (Contents.snapshot contents);
        k ());
    fetch =
      (fun ~obj ~page ~k ->
        k (Option.map Contents.snapshot (Hashtbl.find_opt table (obj, page))));
  }

let none =
  {
    store = (fun ~obj:_ ~page:_ ~contents:_ ~k:_ -> failwith "Backing.none: store");
    fetch = (fun ~obj:_ ~page:_ ~k:_ -> failwith "Backing.none: fetch");
  }
