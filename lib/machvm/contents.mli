(** Modeled contents of one 8 KB virtual-memory page, stored
    copy-on-write.

    Pages carry a configurable number of 63-bit words instead of 8192
    raw bytes: enough to express real data (file bytes, EM3D cell
    values, coherence stamps) while keeping a 64-node simulation in
    memory.

    A [t] is a handle onto a shared, refcounted buffer. {!copy} (alias
    {!snapshot}) is O(1): it bumps the refcount and shares the buffer;
    the word copy is deferred until a {!set} hits a shared buffer.
    Observable behaviour is exactly that of an eager deep copy — a
    snapshot is immutable under later writes to its source, and writes
    to a snapshot never reach the source — so aliasing a page across
    two simulated nodes still cannot break the coherence invariants the
    test suite checks. All-zero fresh pages ({!zero}) alias a single
    interned zero page per word size (the paper's [fresh] static hint:
    no payload needed), and {!checksum} is memoized per buffer write
    generation, so repeated audits of quiescent pages are cache hits.

    Sharing accounting is domain-local (see {!stats}); handles must not
    be mutated concurrently from two domains, which the parallel runner
    already guarantees by building every cell inside its own domain. *)

type t

(** Fresh zero-filled page, aliasing the interned zero page for this
    word size. @raise Invalid_argument if [words <= 0]. *)
val zero : words:int -> t

val words : t -> int
val get : t -> int -> int

(** Write one word. If the underlying buffer is shared (or is the
    interned zero page), it is first materialized: the deferred O(words)
    copy happens here, exactly once per shared-buffer write burst. *)
val set : t -> int -> int -> unit

(** O(1) snapshot (page transfer / push / copy-on-write): shares the
    buffer and defers the word copy to the first [set] on either side. *)
val copy : t -> t

(** [snapshot] is [copy] under its honest name. *)
val snapshot : t -> t

val equal : t -> t -> bool
val is_zero : t -> bool

(** Order-sensitive checksum, used by tests and the chaos invariant
    checker to compare page images. Memoized on the buffer and
    invalidated by {!set}, so auditing an unchanged page is O(1). *)
val checksum : t -> int

val pp : Format.formatter -> t -> unit

(** Cumulative page-store accounting for the calling domain, feeding
    the [contents.*] registry counters (see docs/OBSERVABILITY.md). *)
type stats = {
  snapshots : int;  (** O(1) {!copy}/{!snapshot} operations *)
  cow_materializations : int;
      (** deferred word copies actually performed by {!set} *)
  checksum_cache_hits : int;  (** {!checksum} calls served from the memo *)
}

val stats : unit -> stats
