type t = int array

let zero ~words =
  if words <= 0 then invalid_arg "Contents.zero: words <= 0";
  Array.make words 0

let words = Array.length

let get t i = t.(i)
let set t i v = t.(i) <- v

let copy = Array.copy

(* monomorphic int loops: polymorphic [( = )] and the fold closure both
   sit on page-copy/validation paths, and the generic versions cost a
   C call per word (and a closure allocation for the fold) *)
let equal a b =
  a == b
  ||
  let n = Array.length a in
  n = Array.length b
  &&
  let rec eq_from i = i >= n || (a.(i) = b.(i) && eq_from (i + 1)) in
  eq_from 0

let is_zero t =
  let n = Array.length t in
  let rec zero_from i = i >= n || (t.(i) = 0 && zero_from (i + 1)) in
  zero_from 0

let checksum t =
  let acc = ref (Array.length t) in
  for i = 0 to Array.length t - 1 do
    acc := (!acc * 1000003) lxor t.(i)
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list t)
