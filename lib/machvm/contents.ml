(* Copy-on-write page store.

   A [t] is a handle onto a shared, refcounted word buffer. Taking a
   snapshot ([copy]) is an O(1) refcount bump; the O(words) copy is
   deferred until a [set] hits a buffer someone else can still see
   (refcount > 1, or the interned zero page). This mirrors the paper's
   message economy — page contents move only when a request demands
   them — applied to the simulator's own hot path: transfers, shadow
   pushes and pager round-trips all "copy" pages far more often than
   anyone writes them afterwards.

   The refcount over-approximates sharing: handles are reclaimed by the
   GC, not finalized, so a dropped snapshot still counts until a writer
   materializes away from the buffer. Over-approximation is safe — it
   can only cause an extra copy, never aliasing. *)

type buf = {
  mutable data : int array;
  (* handles known to share this buffer; stale-high after handles are
     GC'd, which at worst costs one extra materialization *)
  mutable refs : int;
  (* interned zero page: immortal, never written in place, shared by
     every [zero] handle of this word size in the domain *)
  frozen : bool;
  (* checksum memo for the current write generation; any [set]
     invalidates it, so a valid cached sum always matches the data *)
  mutable sum : int;
  mutable sum_valid : bool;
  (* [true] implies the buffer is all zero (never the converse) *)
  mutable known_zero : bool;
}

type t = { mutable buf : buf }

type stats = {
  snapshots : int;
  cow_materializations : int;
  checksum_cache_hits : int;
}

(* Counters and the zero-page intern table are domain-local: parallel
   runner cells each live entirely inside one domain, so per-domain
   state keeps both the counters race-free and the per-cell metric
   deltas exact. *)
type dstate = {
  mutable s_snapshots : int;
  mutable s_cow : int;
  mutable s_sum_hits : int;
  zeros : (int, buf) Hashtbl.t; (* words -> interned zero buffer *)
}

let dstate_key =
  Domain.DLS.new_key (fun () ->
      { s_snapshots = 0; s_cow = 0; s_sum_hits = 0; zeros = Hashtbl.create 4 })

let dstate () = Domain.DLS.get dstate_key

let stats () =
  let d = dstate () in
  {
    snapshots = d.s_snapshots;
    cow_materializations = d.s_cow;
    checksum_cache_hits = d.s_sum_hits;
  }

let zero ~words =
  if words <= 0 then invalid_arg "Contents.zero: words <= 0";
  let d = dstate () in
  let b =
    match Hashtbl.find_opt d.zeros words with
    | Some b -> b
    | None ->
      let b =
        {
          data = Array.make words 0;
          refs = 1;
          frozen = true;
          sum = 0;
          sum_valid = false;
          known_zero = true;
        }
      in
      Hashtbl.add d.zeros words b;
      b
  in
  { buf = b }

let words t = Array.length t.buf.data

let get t i = t.buf.data.(i)

(* First write into a shared (or interned-zero) buffer: pay the word
   copy that [copy] deferred. *)
let materialize t =
  let b = t.buf in
  if not b.frozen then b.refs <- b.refs - 1;
  t.buf <-
    {
      data = Array.copy b.data;
      refs = 1;
      frozen = false;
      sum = 0;
      sum_valid = false;
      known_zero = false;
    };
  let d = dstate () in
  d.s_cow <- d.s_cow + 1

let set t i v =
  (match t.buf with
  | b when b.frozen || b.refs > 1 -> materialize t
  | _ -> ());
  let b = t.buf in
  b.data.(i) <- v;
  b.sum_valid <- false;
  b.known_zero <- false

let snapshot t =
  let b = t.buf in
  if not b.frozen then b.refs <- b.refs + 1;
  let d = dstate () in
  d.s_snapshots <- d.s_snapshots + 1;
  { buf = b }

let copy = snapshot

(* monomorphic int loops: polymorphic [( = )] and the fold closure both
   sit on page-copy/validation paths, and the generic versions cost a
   C call per word (and a closure allocation for the fold) *)
let equal ta tb =
  ta == tb || ta.buf == tb.buf
  ||
  let a = ta.buf.data and b = tb.buf.data in
  let n = Array.length a in
  n = Array.length b
  &&
  let rec eq_from i = i >= n || (a.(i) = b.(i) && eq_from (i + 1)) in
  eq_from 0

let is_zero t =
  let b = t.buf in
  b.known_zero
  ||
  let a = b.data in
  let n = Array.length a in
  let rec zero_from i = i >= n || (a.(i) = 0 && zero_from (i + 1)) in
  let z = zero_from 0 in
  if z then b.known_zero <- true;
  z

let checksum t =
  let b = t.buf in
  if b.sum_valid then begin
    let d = dstate () in
    d.s_sum_hits <- d.s_sum_hits + 1;
    b.sum
  end
  else begin
    let a = b.data in
    let acc = ref (Array.length a) in
    for i = 0 to Array.length a - 1 do
      acc := (!acc * 1000003) lxor a.(i)
    done;
    b.sum <- !acc;
    b.sum_valid <- true;
    !acc
  end

let pp ppf t =
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list t.buf.data)
