(** Per-node VM cost and capacity parameters. *)

type t = {
  words_per_page : int;  (** modeled words in one 8 KB page *)
  memory_pages : int;  (** resident-page capacity of the node *)
  fault_entry_ms : float;  (** trap + map lookup + fault setup *)
  pmap_enter_ms : float;  (** install one translation *)
  emmi_call_ms : float;  (** kernel <-> manager boundary crossing *)
  copy_page_ms : float;  (** local page memcpy (push / COW) *)
  zero_fill_ms : float;  (** clear a fresh page *)
  pageout_low_pages : int;
      (** wake the pageout daemon when free pages drop to this level;
          0 (the default) disables the daemon entirely — eviction then
          happens only as the synchronous backstop when the cache is
          full, the pre-daemon behaviour *)
  pageout_high_pages : int;
      (** a daemon scan evicts until this many pages are free (must be
          [>= pageout_low_pages] when the daemon is enabled) *)
  pageout_scan_delay_ms : float;
      (** latency between crossing the low watermark and the daemon
          scan actually running — the daemon is a background task, not
          an interrupt handler *)
}

(** Paragon-GP-like defaults: 16 MB node of which ~9 MB (1152 pages)
    are available to user memory; costs from DESIGN.md section 5.
    The pageout daemon is disabled ([pageout_low_pages = 0]). *)
val default : t

(** [with_memory t pages] — same costs, different capacity. *)
val with_memory : t -> int -> t

(** [with_pageout t ~low ~high] — arm the watermark pageout daemon.
    @raise Invalid_argument if [low < 0], [high < low], or [high]
    exceeds the memory size. *)
val with_pageout : t -> low:int -> high:int -> t
