(** The per-node Mach virtual memory system.

    One [Vm.t] models the kernel VM of one node: memory objects with
    shadow/copy chains, task address maps, the physical map, the resident
    page cache with FIFO eviction, and the kernel half of the EMMI
    protocol (including the ASVM extensions).

    All faulting is asynchronous: [touch], [read_word] and [write_word]
    complete through continuations scheduled on the engine, and faults
    that need a manager park until [data_supply] / [lock_request] wakes
    them — there is no thread to block, mirroring ASVM's "asynchronous
    state transitions" design rule. *)

type t

val create :
  engine:Asvm_simcore.Engine.t ->
  node:int ->
  config:Vm_config.t ->
  backing:Backing.t ->
  ids:Ids.Alloc.t ->
  t

val engine : t -> Asvm_simcore.Engine.t
val node : t -> int
val config : t -> Vm_config.t

(** {1 Objects} *)

(** Create an object representation on this node. [id] must be fresh on
    this node (use the shared allocator for cluster-unique ids). *)
val create_object :
  t -> id:Ids.obj_id -> size_pages:int -> temporary:bool -> Vm_object.t

val find_object : t -> Ids.obj_id -> Vm_object.t option

(** @raise Failure if the object is unknown on this node. *)
val get_object : t -> Ids.obj_id -> Vm_object.t

val set_manager : t -> Ids.obj_id -> Emmi.manager option -> unit

(** Make an asymmetric (delayed) copy of [src]: allocates the copy
    object, splices it at the head of [src]'s copy chain, bumps [src]'s
    version counter and write-protects local translations of [src] so
    the next write faults and pushes (paper 2.2 / 3.7). *)
val make_asymmetric_copy : t -> src:Ids.obj_id -> Vm_object.t

(** Downgrade every resident frame of the object to read-only access and
    remove write permission from local translations. Used on all sharing
    nodes when a copy of a distributed object is created. *)
val lock_object_readonly : t -> Ids.obj_id -> unit

(** Remove [copy] from [src]'s kernel copy chain (re-linking any older
    copies to [src]). Used when a node-local copy object becomes shared
    across nodes: from then on its pushes are coordinated by ASVM's
    push-scan machinery instead of the local [Lock_push_first] path. *)
val unsplice_copy : t -> src:Ids.obj_id -> copy:Ids.obj_id -> unit

(** {1 Tasks and mappings} *)

val create_task : t -> Ids.task_id
val task_exists : t -> Ids.task_id -> bool

val map :
  t ->
  task:Ids.task_id ->
  obj:Ids.obj_id ->
  start:int ->
  npages:int ->
  obj_offset:int ->
  inherit_:Address_map.inheritance ->
  Address_map.entry

val entries : t -> task:Ids.task_id -> Address_map.entry list

(** Flag an entry for symmetric copy: the next write through it shadows
    the object first. Write permission is removed from the range's
    translations. *)
val mark_needs_copy : t -> task:Ids.task_id -> start:int -> unit

(** Remove the mapping whose entry begins at [start]; its translations
    are torn down. Accesses to the range fault as unmapped afterwards. *)
val unmap : t -> task:Ids.task_id -> start:int -> unit

(** vm_protect: cap the access the task can gain through the entry at
    [start]. Existing translations are downgraded; faults wanting more
    than [max_prot] raise [Failure] (protection violation). *)
val protect : t -> task:Ids.task_id -> start:int -> max_prot:Prot.t -> unit

(** Tear down a node-local (unmanaged) object: all frames, translations
    and backing-store pages are released.
    @raise Invalid_argument if the object is managed. *)
val terminate_object : t -> Ids.obj_id -> unit

(** Object page backing a virtual page, per the address map (no fault). *)
val translate_vpage : t -> task:Ids.task_id -> vpage:int -> (Ids.obj_id * int) option

(** {1 Access (fault) interface} *)

(** [touch t ~task ~vpage ~want k] ensures the task can access the page
    with [want] access, faulting as needed, then runs [k].
    @raise Invalid_argument if [want] is [No_access].
    @raise Failure on an unmapped address. *)
val touch : t -> task:Ids.task_id -> vpage:int -> want:Prot.t -> (unit -> unit) -> unit

(** Copy of the whole page image backing [vpage], if a translation is
    installed (use after [touch]). *)
val page_contents : t -> task:Ids.task_id -> vpage:int -> Contents.t option

(** Mark the frame backing (obj, page) dirty — used when ownership of a
    modified page is transferred without resending contents. *)
val set_frame_dirty : t -> obj:Ids.obj_id -> page:int -> unit

(** Word-granular accessors layered on [touch]; [addr] is
    [vpage * words_per_page + word]. *)
val read_word : t -> task:Ids.task_id -> addr:int -> (int -> unit) -> unit

val write_word : t -> task:Ids.task_id -> addr:int -> value:int -> (unit -> unit) -> unit

(** {1 Kernel EMMI entry points (called by managers)} *)

val data_supply :
  t ->
  obj:Ids.obj_id ->
  page:int ->
  contents:Contents.t ->
  lock:Prot.t ->
  mode:Emmi.supply_mode ->
  unit

val lock_request :
  t ->
  obj:Ids.obj_id ->
  page:int ->
  op:Emmi.lock_op ->
  reply:(Emmi.lock_result -> unit) ->
  unit

val pull_request :
  t -> obj:Ids.obj_id -> page:int -> reply:(Emmi.pull_result -> unit) -> unit

(** {1 Residency and paging} *)

val is_resident : t -> obj:Ids.obj_id -> page:int -> bool
val frame_access : t -> obj:Ids.obj_id -> page:int -> Prot.t option

(** Copy of the frame contents of (obj, page), if resident. *)
val frame_contents : t -> obj:Ids.obj_id -> page:int -> Contents.t option
val frame_dirty : t -> obj:Ids.obj_id -> page:int -> bool

(** Checksum of the resident frame, without taking a snapshot. The
    result is memoized on the frame's buffer ({!Contents.checksum}),
    so auditing a page that has not been written since the last audit
    is O(1) — the chaos invariant checker's fast path. *)
val frame_checksum : t -> obj:Ids.obj_id -> page:int -> int option

val resident_total : t -> int
val capacity_pages : t -> int
val free_pages : t -> int

(** Accept a page transferred by internode paging.  When a parked
    fault on this node is waiting for exactly this page, a full cache
    triggers one synchronous eviction ({!evict_one}) to make room —
    the fault completes here instead of failing over to a pager
    round-trip.  Placement traffic (no fault waiting) is still refused
    when memory is full, so machine-wide pressure converges on the
    pager rather than circulating pages between full nodes. *)
val try_accept_page :
  t ->
  obj:Ids.obj_id ->
  page:int ->
  contents:Contents.t ->
  dirty:bool ->
  access:Prot.t ->
  bool

(** Pin / unpin a frame against eviction (in-flight protocol state). *)
val wire : t -> obj:Ids.obj_id -> page:int -> unit

val unwire : t -> obj:Ids.obj_id -> page:int -> unit

(** Force eviction of one page if any unwired frame exists (tests and
    the pageout daemon). Returns [false] when nothing can be evicted. *)
val evict_one : t -> bool

(** {1 Crash and rejoin (see [docs/AVAILABILITY.md])} *)

(** Model a whole-node crash: drop every resident frame, hardware
    translation, eviction-queue entry and swap record.  Address-space
    structure (tasks, address maps, object representations) survives —
    the restarted-application idealization — as do fault continuations
    parked on manager replies, which {!redrive_pending} restarts at
    rejoin.  The caller (the cluster layer) is responsible for the
    transport and manager side of the crash. *)
val crash_reset : t -> unit

(** Restart every fault that was parked on a manager reply: each waiter
    re-faults from scratch through a fresh manager request.  Called at
    rejoin, after the transports accept the node again. *)
val redrive_pending : t -> unit

(** Faults currently parked on a manager reply (for tests). *)
val pending_faults : t -> int

(** The (object, page) keys of those parked faults, sorted — the
    recovery layer marks them as recovering so rejoin latency can be
    measured per fault. *)
val pending_pages : t -> (Ids.obj_id * int) list

(** {1 Statistics} *)

val faults : t -> int

(** Faults resolved without any manager involvement. *)
val local_faults : t -> int

(** Pages evicted from the resident cache, by any path (capacity
    backstop, pageout daemon, explicit {!evict_one}). *)
val evictions : t -> int

(** Completed scans of the watermark pageout daemon
    ({!Vm_config.with_pageout}): a scan runs [pageout_scan_delay_ms]
    after an allocation leaves at most [pageout_low_pages] free, and
    evicts until [pageout_high_pages] are free.  At most one scan is
    ever armed; the daemon never re-arms itself, so a fully wired node
    cannot livelock — the next allocation wakes it again. *)
val pageout_runs : t -> int

(** Pages evicted by daemon scans (a subset of {!evictions}). *)
val pageout_evictions : t -> int
