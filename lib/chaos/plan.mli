(** Declarative, seed-reproducible fault plans.

    A plan is a list of fault rules plus a seed.  Compiled into a
    {!Asvm_mesh.Network.interposer} or {!Asvm_sts.Sts.interposer}, the
    plan perturbs message delivery — dropping, delaying or duplicating
    individual transmissions, blacking out nodes for a window of
    simulated time, or slowing every message touching a hot node.

    Every probabilistic decision is a {e pure function} of
    [(seed, message index, rule position)] — no hidden RNG state — so a
    plan produces byte-identical fault sequences no matter how many
    worker domains ([--jobs]) the surrounding sweep uses, and a failure
    found in a soak is replayed exactly from its [(seed, plan)] pair
    alone.  See [docs/RELIABILITY.md]. *)

(** Where a rule applies. *)
type where =
  | Anywhere
  | On_link of { src : int; dst : int }  (** one directed link *)
  | At_node of int  (** any message sent or received by this node *)

type rule =
  | Drop of { p : float; where : where }
      (** suppress the transmission with probability [p] *)
  | Delay of { p : float; ms : float; where : where }
      (** add [ms] of latency with probability [p] *)
  | Duplicate of { p : float; delay_ms : float; where : where }
      (** with probability [p], deliver a second copy [delay_ms] later *)
  | Blackout of { node : int; from_ms : float; until_ms : float }
      (** drop every message touching [node] during the sim-time window *)
  | Slowdown of { node : int; extra_ms : float }
      (** hot node: every message touching [node] pays [extra_ms] *)

(** One whole-node crash event: [c_victim] dies [c_at_ms] of simulated
    time after the schedule is armed ({!schedule_crashes}) and rejoins
    (with empty caches and a fresh incarnation) [c_down_ms] later — or
    never, when [None]. *)
type crash = { c_victim : int; c_at_ms : float; c_down_ms : float option }

type t = { seed : int; label : string; rules : rule list; crashes : crash list }

(** The empty plan: no rules, perturbs nothing. *)
val none : t

(** Uniform [p] drop probability everywhere (default 1%). *)
val lossy : ?p:float -> seed:int -> unit -> t

(** Deterministic rolling-failure schedule: crash the [victims] in
    order, [every_ms] of simulated time apart, each staying down just
    short of [k] crash periods — so [k] victims are down simultaneously
    at steady state (the "k of n" schedules of the availability suite).
    [down_ms] overrides the computed down time.  Purely arithmetic — no
    RNG — so the schedule reads off the plan label.
    @raise Invalid_argument if [k < 1] or [victims] is empty. *)
val rolling :
  victims:int list ->
  k:int ->
  start_ms:float ->
  every_ms:float ->
  ?down_ms:float ->
  unit ->
  t

(** [with_crashes t crashes] appends crash events to a plan — e.g. a
    lossy plan that also kills nodes. *)
val with_crashes : t -> crash list -> t

(** A small randomized rule set derived from [seed].  With
    [lossy:false] only delays and slowdowns are generated — the plan
    never loses or duplicates a message, so it is safe against
    transports with no reliability layer (the XMM baseline runs on
    NORMA datagrams and would hang on a dropped message).  With
    [lossy:true], drop / duplicate / blackout rules join the mix; the
    reliable STS layer is expected to mask them. *)
val random : seed:int -> lossy:bool -> t

val describe : t -> string
val rule_to_string : rule -> string
val crash_to_string : crash -> string

(** Plan as JSON (label, seed, rules rendered as strings) — embedded in
    soak reports so a violation names its exact reproduction recipe. *)
val to_json : t -> Asvm_obs.Json.t

(** {1 Compilation} *)

(** One perturbed transmission, as recorded by the interposers: the
    message [index] at that interposition layer and the delivery-delay
    list that replaced the default [[0.]].  Unperturbed messages are
    not recorded. *)
type event = { index : int; src : int; dst : int; deliveries : float list }

val event_to_string : event -> string

(** The raw decision procedure: delivery delays for transmission
    [index] on [src -> dst] at simulated time [now].  [[]] = dropped.
    Pure — same arguments, same answer, forever. *)
val decide :
  t -> now:float -> index:int -> src:int -> dst:int -> float list

(** Compile the plan for the mesh interposition point
    ({!Asvm_mesh.Network.set_interposer}, usually via
    [Config.net_interposer]).  [record] observes every perturbed
    transmission — the determinism evidence. *)
val net_interposer :
  ?record:(event -> unit) -> t -> Asvm_mesh.Network.interposer

(** Compile the plan for the STS logical interposition point
    ([Sts.config.interposer]).  Decisions are salted differently from
    {!net_interposer} so installing the same plan at both layers does
    not correlate. *)
val sts_interposer :
  ?record:(event -> unit) -> t -> Asvm_sts.Sts.interposer

(** Arm the plan's crash schedule on [engine]: [c_at_ms] after the
    arming point, [crash victim] runs (returning whether the node
    actually went down — e.g. [Cluster.crashable] says no); if it did
    and the event has a [c_down_ms], [rejoin victim] runs that much
    later.  Crash times are relative to the arming point so a schedule
    can be installed after an arbitrarily long setup phase.  Callbacks
    keep this module decoupled from the cluster layer. *)
val schedule_crashes :
  t ->
  engine:Asvm_simcore.Engine.t ->
  crash:(int -> bool) ->
  rejoin:(int -> unit) ->
  unit
