(** The chaos soak: every workload under seeded fault plans, audited by
    {!Invariants.check} after quiesce.

    Each protocol gets the harshest plan it can survive: ASVM runs with
    reliable STS under {e lossy} plans (drops, duplicates, blackouts);
    the XMM baseline has no reliability layer over NORMA, so its plans
    are {e delay-only} ({!Plan.random} with [lossy:false]) — a dropped
    datagram would hang it, which is a finding about the baseline, not
    a bug to hunt.

    Beyond message faults, the soak runs {e crash cells}: rolling
    k-of-n whole-node crash/rejoin schedules ({!Plan.rolling}, k = 1 and
    k = 2 over at least 6 nodes) under every workload and both
    protocols, on a perfect network so every anomaly is attributable to
    recovery itself.  Crash cells report recovery latency percentiles
    (the [asvm.recovery_ms] / [xmm.recovery_ms] histograms) and the
    pages whose sole copy died with a node ([crash.lost_pages] — the
    documented, non-silent loss of [docs/AVAILABILITY.md]).

    Every cell is an independent simulation and runs as a pure job on
    the {!Asvm_runner.Runner} pool; outcomes are independent of [jobs].
    A violation is reported with its [(seed, plan)] pair, which replays
    it exactly ([asvm-sim chaos --seed N --workload W --mm M]). *)

(** One workload under one plan. *)
type outcome = {
  mm : Asvm_cluster.Config.mm;
  workload : string;
  plan : Plan.t;
  reliable : bool;  (** reliable STS enabled (ASVM only) *)
  completed : bool;  (** the workload ran to completion *)
  error : string option;  (** exception text when [not completed] *)
  violations : string list;  (** from {!Invariants.check} after quiesce *)
  retransmits : int;
  timeouts : int;
  duplicates_dropped : int;
  sim_ms : float;
  cpu_s : float;
  crashes : int;  (** whole-node crashes actually executed *)
  rejoins : int;  (** crashed nodes re-admitted *)
  lost_pages : int;
      (** pages whose only copy died with a node (documented loss) *)
  recovery_p50_ms : float option;
      (** median post-rejoin fault recovery latency, when any occurred *)
  recovery_p99_ms : float option;
}

(** Zero-fault cost of the reliability layer on one ASVM workload:
    the same run with reliability off ([base_]) and on ([rel_]). *)
type overhead = {
  oh_workload : string;
  base_sim_ms : float;
  rel_sim_ms : float;
  base_cpu_s : float;
  rel_cpu_s : float;
  rel_retransmits : int;  (** must be 0 on a perfect network *)
}

type report = {
  seeds : int;
  quick : bool;
  outcomes : outcome list;
  crash_outcomes : outcome list;
      (** the rolling crash/rejoin cells, separated for reporting *)
  overheads : overhead list;
  total_violations : int;
  lost_writes : int;
      (** silent losses: live copies disagreeing on contents — must be 0 *)
  incomplete : int;  (** outcomes that crashed or hung *)
}

(** The soak workload names: ["fault"; "chain"; "file"; "em3d"]. *)
val workloads : string list

(** The deterministic rolling crash schedule a crash cell uses for
    [workload]: kill [k] of the workload's crashable victims at a
    cadence matched to its simulated span, each rejoining so that [k]
    nodes are down concurrently at steady state ({!Plan.rolling}).
    @raise Invalid_argument on an unknown workload or [k < 1]. *)
val crash_plan : workload:string -> k:int -> Plan.t

(** Run one cell: [workload] under [plan], with reliable STS iff
    [reliable].  This is the reproduce-by-seed entry point. *)
val run_one :
  ?quick:bool ->
  mm:Asvm_cluster.Config.mm ->
  workload:string ->
  plan:Plan.t ->
  reliable:bool ->
  unit ->
  outcome

(** The full soak: [seeds] random plans per (protocol, workload), the
    zero-fault overhead cells, and the rolling crash cells (k = 1 and
    k = 2 per workload and protocol).  [quick] shrinks the workload
    sizes for CI. *)
val run : ?jobs:int -> ?seeds:int -> ?quick:bool -> unit -> report

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit

(** Schema ["asvm.chaos/v1"]; [total_violations], [lost_writes] and
    [incomplete] are top-level so CI can grep the report without
    parsing it. *)
val to_json : report -> Asvm_obs.Json.t
