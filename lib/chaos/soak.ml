module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Metrics = Asvm_obs.Metrics
module Json = Asvm_obs.Json
module Sts = Asvm_sts.Sts
module Fault_micro = Asvm_workloads.Fault_micro
module Copy_chain = Asvm_workloads.Copy_chain
module File_io = Asvm_workloads.File_io
module Em3d = Asvm_workloads.Em3d
module Runner = Asvm_runner.Runner

type outcome = {
  mm : Config.mm;
  workload : string;
  plan : Plan.t;
  reliable : bool;
  completed : bool;
  error : string option;
  violations : string list;
  retransmits : int;
  timeouts : int;
  duplicates_dropped : int;
  sim_ms : float;
  cpu_s : float;
}

type overhead = {
  oh_workload : string;
  base_sim_ms : float;
  rel_sim_ms : float;
  base_cpu_s : float;
  rel_cpu_s : float;
  rel_retransmits : int;
}

type report = {
  seeds : int;
  quick : bool;
  outcomes : outcome list;
  overheads : overhead list;
  total_violations : int;
  incomplete : int;
}

let workloads = [ "fault"; "chain"; "file"; "em3d" ]

(* Chaos exercises the protocol state machines, not the problem size:
   every cell is a deliberately tiny instance of its workload. *)
let dispatch ?(quick = false) ~mm ~tweak ~inspect = function
  | "fault" ->
    ignore
      (Fault_micro.measure_instrumented ~nodes:8 ~tweak ~inspect ~mm
         (Fault_micro.Write_fault { read_copies = 2 }))
  | "chain" ->
    ignore
      (Copy_chain.measure ~mm ~chain:3 ~pages:(if quick then 4 else 8) ~tweak
         ~inspect ())
  | "file" ->
    ignore (File_io.read_test ~mm ~nodes:4 ~file_mb:1 ~tweak ~inspect ())
  | "em3d" ->
    ignore
      (Em3d.run ~mm ~tweak ~inspect
         {
           Em3d.cells = (if quick then 1000 else 2000);
           nodes = 4;
           iterations = (if quick then 1 else 2);
           seed = 11;
         })
  | w -> invalid_arg (Printf.sprintf "Soak: unknown workload %S" w)

let gauge snap name =
  match Metrics.find snap name [] with Some (Metrics.Gauge_v v) -> v | _ -> 0.

let run_one ?quick ~mm ~workload ~plan ~reliable () =
  let tweak (c : Config.t) =
    let c = { c with net_interposer = Some (Plan.net_interposer plan) } in
    match mm with
    | Config.Mm_xmm -> c
    | Config.Mm_asvm ->
      (* ASVM additionally takes the plan at the STS logical layer and,
         when asked, arms the reliability machinery that must mask it *)
      let sts =
        {
          c.asvm.sts with
          Sts.interposer = Some (Plan.sts_interposer plan);
          reliability = (if reliable then Some Sts.default_reliability else None);
        }
      in
      { c with asvm = { c.asvm with sts } }
  in
  let violations = ref [] in
  let snap = ref [] in
  let inspect cl =
    violations := Invariants.check cl;
    snap := Cluster.metrics_snapshot cl
  in
  let error =
    match dispatch ?quick ~mm ~tweak ~inspect workload with
    | () -> None
    | exception e -> Some (Printexc.to_string e)
  in
  let s = !snap in
  {
    mm;
    workload;
    plan;
    reliable;
    completed = error = None;
    error;
    violations = !violations;
    retransmits = Metrics.counter_total s "sts.retransmits";
    timeouts = Metrics.counter_total s "sts.timeouts";
    duplicates_dropped = Metrics.counter_total s "sts.duplicates_dropped";
    sim_ms = gauge s "engine.sim_ms";
    cpu_s = gauge s "engine.cpu_s";
  }

let run ?jobs ?(seeds = 10) ?(quick = false) () =
  let cells =
    List.concat_map
      (fun seed ->
        List.concat_map
          (fun workload ->
            [
              `Soak
                ( Config.Mm_asvm,
                  workload,
                  Plan.random ~seed ~lossy:true,
                  true );
              `Soak
                ( Config.Mm_xmm,
                  workload,
                  Plan.random ~seed ~lossy:false,
                  false );
            ])
          workloads)
      (List.init seeds (fun i -> i + 1))
    (* zero-fault overhead cells: reliability off vs on, perfect net *)
    @ List.concat_map
        (fun workload ->
          [
            `Soak (Config.Mm_asvm, workload, Plan.none, false);
            `Soak (Config.Mm_asvm, workload, Plan.none, true);
          ])
        workloads
  in
  let outcomes =
    Runner.map ?jobs
      (fun (`Soak (mm, workload, plan, reliable)) ->
        run_one ~quick ~mm ~workload ~plan ~reliable ())
      cells
  in
  let chaos, perfect =
    List.partition (fun o -> o.plan.Plan.rules <> []) outcomes
  in
  let overheads =
    List.map
      (fun w ->
        let pick rel =
          List.find
            (fun o -> o.workload = w && o.reliable = rel)
            perfect
        in
        let base = pick false and rel = pick true in
        {
          oh_workload = w;
          base_sim_ms = base.sim_ms;
          rel_sim_ms = rel.sim_ms;
          base_cpu_s = base.cpu_s;
          rel_cpu_s = rel.cpu_s;
          rel_retransmits = rel.retransmits;
        })
      workloads
  in
  let total_violations =
    List.fold_left (fun acc o -> acc + List.length o.violations) 0 outcomes
  in
  let incomplete =
    List.length (List.filter (fun o -> not o.completed) outcomes)
  in
  { seeds; quick; outcomes = chaos; overheads; total_violations; incomplete }

let pp_outcome ppf o =
  Format.fprintf ppf "%-5s %-6s %-28s %s%s"
    (Config.mm_name o.mm) o.workload
    (Printf.sprintf "%s%s" o.plan.Plan.label
       (if o.reliable then "+rel" else ""))
    (if o.completed then
       Printf.sprintf "ok  sim=%8.1fms retx=%-3d dup=%-3d" o.sim_ms
         o.retransmits o.duplicates_dropped
     else Printf.sprintf "FAILED (%s)" (Option.value ~default:"?" o.error))
    (match o.violations with
    | [] -> ""
    | vs -> Printf.sprintf "  %d VIOLATIONS" (List.length vs))

let pp_report ppf r =
  Format.fprintf ppf "chaos soak: %d seeds%s, %d cells, %d violations, %d incomplete@."
    r.seeds
    (if r.quick then " (quick)" else "")
    (List.length r.outcomes) r.total_violations r.incomplete;
  List.iter (fun o -> Format.fprintf ppf "  %a@." pp_outcome o) r.outcomes;
  List.iter
    (fun o ->
      List.iter (fun v -> Format.fprintf ppf "    violation: %s@." v) o.violations)
    r.outcomes;
  Format.fprintf ppf "zero-fault reliability overhead:@.";
  List.iter
    (fun oh ->
      Format.fprintf ppf
        "  %-6s sim %8.1f -> %8.1f ms (%+.2f%%)  cpu %.3f -> %.3f s  retx=%d@."
        oh.oh_workload oh.base_sim_ms oh.rel_sim_ms
        (if oh.base_sim_ms > 0. then
           (oh.rel_sim_ms -. oh.base_sim_ms) /. oh.base_sim_ms *. 100.
         else 0.)
        oh.base_cpu_s oh.rel_cpu_s oh.rel_retransmits)
    r.overheads

let outcome_to_json o =
  Json.Obj
    [
      ("mm", Json.String (Config.mm_name o.mm));
      ("workload", Json.String o.workload);
      ("plan", Plan.to_json o.plan);
      ("reliable", Json.Bool o.reliable);
      ("completed", Json.Bool o.completed);
      ( "error",
        match o.error with None -> Json.Null | Some e -> Json.String e );
      ("violations", Json.List (List.map (fun v -> Json.String v) o.violations));
      ("retransmits", Json.Int o.retransmits);
      ("timeouts", Json.Int o.timeouts);
      ("duplicates_dropped", Json.Int o.duplicates_dropped);
      ("sim_ms", Json.Float o.sim_ms);
      ("cpu_s", Json.Float o.cpu_s);
    ]

let overhead_to_json oh =
  Json.Obj
    [
      ("workload", Json.String oh.oh_workload);
      ("base_sim_ms", Json.Float oh.base_sim_ms);
      ("rel_sim_ms", Json.Float oh.rel_sim_ms);
      ("base_cpu_s", Json.Float oh.base_cpu_s);
      ("rel_cpu_s", Json.Float oh.rel_cpu_s);
      ("rel_retransmits", Json.Int oh.rel_retransmits);
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "asvm.chaos/v1");
      ("total_violations", Json.Int r.total_violations);
      ("incomplete", Json.Int r.incomplete);
      ("seeds", Json.Int r.seeds);
      ("quick", Json.Bool r.quick);
      ("outcomes", Json.List (List.map outcome_to_json r.outcomes));
      ("overhead", Json.List (List.map overhead_to_json r.overheads));
    ]
