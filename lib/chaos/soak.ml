module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Metrics = Asvm_obs.Metrics
module Json = Asvm_obs.Json
module Sts = Asvm_sts.Sts
module Fault_micro = Asvm_workloads.Fault_micro
module Copy_chain = Asvm_workloads.Copy_chain
module File_io = Asvm_workloads.File_io
module Em3d = Asvm_workloads.Em3d
module Runner = Asvm_runner.Runner

type outcome = {
  mm : Config.mm;
  workload : string;
  plan : Plan.t;
  reliable : bool;
  completed : bool;
  error : string option;
  violations : string list;
  retransmits : int;
  timeouts : int;
  duplicates_dropped : int;
  sim_ms : float;
  cpu_s : float;
  crashes : int;
  rejoins : int;
  lost_pages : int;
  recovery_p50_ms : float option;
  recovery_p99_ms : float option;
}

type overhead = {
  oh_workload : string;
  base_sim_ms : float;
  rel_sim_ms : float;
  base_cpu_s : float;
  rel_cpu_s : float;
  rel_retransmits : int;
}

type report = {
  seeds : int;
  quick : bool;
  outcomes : outcome list;
  crash_outcomes : outcome list;
  overheads : overhead list;
  total_violations : int;
  lost_writes : int;
  incomplete : int;
}

let workloads = [ "fault"; "chain"; "file"; "em3d" ]

(* Chaos exercises the protocol state machines, not the problem size:
   every cell is a deliberately tiny instance of its workload.  The
   [crash] geometry is larger (>= 6 nodes) so a rolling k-of-n schedule
   has victims to pick from while pinned nodes (pagers, XMM managers,
   fork sources) stay up. *)
let dispatch ?(quick = false) ?(crash = false) ~mm ~tweak ~inspect
    ?(on_start = ignore) = function
  | "fault" ->
    ignore
      (Fault_micro.measure_instrumented ~nodes:8 ~tweak ~inspect ~on_start ~mm
         (Fault_micro.Write_fault
            { read_copies = (if crash then 4 else 2) }))
  | "chain" ->
    ignore
      (Copy_chain.measure ~mm ~chain:3 ~pages:(if quick then 4 else 8)
         ~extra_nodes:(if crash then 2 else 0) ~tweak ~inspect ~on_start ())
  | "file" ->
    ignore
      (File_io.read_test ~mm
         ~nodes:(if crash then 6 else 4)
         ~file_mb:1 ~tweak ~inspect ~on_start ())
  | "em3d" ->
    ignore
      (Em3d.run ~mm ~tweak ~inspect ~on_start
         {
           Em3d.cells = (if quick then 1000 else 2000);
           nodes = (if crash then 6 else 4);
           iterations = (if quick then 1 else 2);
           seed = 11;
         })
  | w -> invalid_arg (Printf.sprintf "Soak: unknown workload %S" w)

(* Victims a rolling schedule may kill under [workload]: never node 0
   (I/O node: pager, XMM manager) nor a node whose loss the workload
   cannot tolerate (the chain's fork sources and measured reader, the
   fault cell's initializer and faulter).  [Cluster.crashable] re-checks
   at crash time, so a pinned pick degrades to a skipped crash rather
   than an abort. *)
let crash_victims = function
  | "fault" -> [ 2; 3; 4; 5; 6 ]
  | "chain" -> [ 4; 5 ]
  | "file" | "em3d" -> [ 1; 2; 3; 4; 5 ]
  | w -> invalid_arg (Printf.sprintf "Soak: unknown workload %S" w)

(* Crash cadence matched to each workload's simulated span. *)
let crash_every_ms = function
  | "fault" -> 1.5
  | "chain" -> 3.
  | "file" -> 5.
  | "em3d" -> 10.
  | _ -> 5.

let crash_plan ~workload ~k =
  Plan.rolling ~victims:(crash_victims workload) ~k ~start_ms:0.5
    ~every_ms:(crash_every_ms workload) ()

let gauge snap name =
  match Metrics.find snap name [] with Some (Metrics.Gauge_v v) -> v | _ -> 0.

let histogram_p snap name =
  match Metrics.find snap name [] with
  | Some (Metrics.Histogram_v h) -> (Some h.p50, Some h.p99)
  | _ -> (None, None)

let run_one ?quick ~mm ~workload ~plan ~reliable () =
  let tweak (c : Config.t) =
    let c = { c with net_interposer = Some (Plan.net_interposer plan) } in
    match mm with
    | Config.Mm_xmm -> c
    | Config.Mm_asvm ->
      (* ASVM additionally takes the plan at the STS logical layer and,
         when asked, arms the reliability machinery that must mask it *)
      let sts =
        {
          c.asvm.sts with
          Sts.interposer = Some (Plan.sts_interposer plan);
          reliability = (if reliable then Some Sts.default_reliability else None);
        }
      in
      { c with asvm = { c.asvm with sts } }
  in
  let violations = ref [] in
  let snap = ref [] in
  let lost_pages = ref 0 in
  let inspect cl =
    violations := Invariants.check cl;
    (match Cluster.backend cl with
    | `Asvm a ->
      lost_pages :=
        Asvm_simcore.Stats.Counters.get (Asvm_core.Asvm.counters a)
          "crash.lost_pages"
    | `Xmm _ -> ());
    snap := Cluster.metrics_snapshot cl
  in
  (* arm the plan's crash schedule once the workload's setup phase is
     done and its access loops are about to start *)
  let on_start cl =
    Plan.schedule_crashes plan ~engine:(Cluster.engine cl)
      ~crash:(fun v ->
        if Cluster.crashable cl ~node:v then begin
          Cluster.crash_node cl ~node:v;
          true
        end
        else false)
      ~rejoin:(fun v ->
        if Cluster.node_down cl ~node:v then Cluster.rejoin_node cl ~node:v)
  in
  let crash = plan.Plan.crashes <> [] in
  let error =
    match dispatch ?quick ~crash ~mm ~tweak ~inspect ~on_start workload with
    | () -> None
    | exception e -> Some (Printexc.to_string e)
  in
  let s = !snap in
  let recovery_p50_ms, recovery_p99_ms =
    histogram_p s
      (match mm with
      | Config.Mm_asvm -> "asvm.recovery_ms"
      | Config.Mm_xmm -> "xmm.recovery_ms")
  in
  {
    mm;
    workload;
    plan;
    reliable;
    completed = error = None;
    error;
    violations = !violations;
    retransmits = Metrics.counter_total s "sts.retransmits";
    timeouts = Metrics.counter_total s "sts.timeouts";
    duplicates_dropped = Metrics.counter_total s "sts.duplicates_dropped";
    sim_ms = gauge s "engine.sim_ms";
    cpu_s = gauge s "engine.cpu_s";
    crashes = Metrics.counter_total s "chaos.crashes";
    rejoins = Metrics.counter_total s "chaos.rejoins";
    lost_pages = !lost_pages;
    recovery_p50_ms;
    recovery_p99_ms;
  }

let run ?jobs ?(seeds = 10) ?(quick = false) () =
  let cells =
    List.concat_map
      (fun seed ->
        List.concat_map
          (fun workload ->
            [
              `Soak
                ( Config.Mm_asvm,
                  workload,
                  Plan.random ~seed ~lossy:true,
                  true );
              `Soak
                ( Config.Mm_xmm,
                  workload,
                  Plan.random ~seed ~lossy:false,
                  false );
            ])
          workloads)
      (List.init seeds (fun i -> i + 1))
    (* zero-fault overhead cells: reliability off vs on, perfect net *)
    @ List.concat_map
        (fun workload ->
          [
            `Soak (Config.Mm_asvm, workload, Plan.none, false);
            `Soak (Config.Mm_asvm, workload, Plan.none, true);
          ])
        workloads
    (* crash cells: rolling k-of-n whole-node failures on a perfect
       network, so every violation is attributable to recovery itself *)
    @ List.concat_map
        (fun workload ->
          List.concat_map
            (fun k ->
              let plan = crash_plan ~workload ~k in
              [
                `Soak (Config.Mm_asvm, workload, plan, true);
                `Soak (Config.Mm_xmm, workload, plan, false);
              ])
            [ 1; 2 ])
        workloads
  in
  let outcomes =
    Runner.map ?jobs
      (fun (`Soak (mm, workload, plan, reliable)) ->
        run_one ~quick ~mm ~workload ~plan ~reliable ())
      cells
  in
  let crash_outcomes, rest =
    List.partition (fun o -> o.plan.Plan.crashes <> []) outcomes
  in
  let chaos, perfect =
    List.partition (fun o -> o.plan.Plan.rules <> []) rest
  in
  let overheads =
    List.map
      (fun w ->
        let pick rel =
          List.find
            (fun o -> o.workload = w && o.reliable = rel)
            perfect
        in
        let base = pick false and rel = pick true in
        {
          oh_workload = w;
          base_sim_ms = base.sim_ms;
          rel_sim_ms = rel.sim_ms;
          base_cpu_s = base.cpu_s;
          rel_cpu_s = rel.cpu_s;
          rel_retransmits = rel.retransmits;
        })
      workloads
  in
  let total_violations =
    List.fold_left (fun acc o -> acc + List.length o.violations) 0 outcomes
  in
  let incomplete =
    List.length (List.filter (fun o -> not o.completed) outcomes)
  in
  (* silent data loss: two live copies of a page disagreeing on contents.
     (Physically unavoidable losses — the sole copy died with its node —
     are counted separately as [lost_pages] and are part of the
     documented failure model, not a violation.) *)
  let lost_writes =
    List.fold_left
      (fun acc o ->
        acc
        + List.length
            (List.filter
               (fun v ->
                 (* substring match on the forked-contents diagnostic *)
                 let needle = "forked contents" in
                 let n = String.length needle and l = String.length v in
                 let rec at i =
                   i + n <= l && (String.sub v i n = needle || at (i + 1))
                 in
                 at 0)
               o.violations))
      0 outcomes
  in
  {
    seeds;
    quick;
    outcomes = chaos;
    crash_outcomes;
    overheads;
    total_violations;
    lost_writes;
    incomplete;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%-5s %-6s %-28s %s%s%s"
    (Config.mm_name o.mm) o.workload
    (Printf.sprintf "%s%s" o.plan.Plan.label
       (if o.reliable then "+rel" else ""))
    (if o.completed then
       Printf.sprintf "ok  sim=%8.1fms retx=%-3d dup=%-3d" o.sim_ms
         o.retransmits o.duplicates_dropped
     else Printf.sprintf "FAILED (%s)" (Option.value ~default:"?" o.error))
    (if o.crashes = 0 then ""
     else
       Printf.sprintf " crash=%d rejoin=%d lost_pg=%d%s" o.crashes o.rejoins
         o.lost_pages
         (match (o.recovery_p50_ms, o.recovery_p99_ms) with
         | Some p50, Some p99 ->
           Printf.sprintf " recov p50=%.2fms p99=%.2fms" p50 p99
         | _ -> ""))
    (match o.violations with
    | [] -> ""
    | vs -> Printf.sprintf "  %d VIOLATIONS" (List.length vs))

let pp_report ppf r =
  Format.fprintf ppf
    "chaos soak: %d seeds%s, %d cells, %d violations, %d lost writes, %d \
     incomplete@."
    r.seeds
    (if r.quick then " (quick)" else "")
    (List.length r.outcomes + List.length r.crash_outcomes)
    r.total_violations r.lost_writes r.incomplete;
  List.iter (fun o -> Format.fprintf ppf "  %a@." pp_outcome o) r.outcomes;
  List.iter
    (fun o ->
      List.iter (fun v -> Format.fprintf ppf "    violation: %s@." v) o.violations)
    r.outcomes;
  if r.crash_outcomes <> [] then begin
    Format.fprintf ppf "rolling crash/rejoin cells:@.";
    List.iter
      (fun o -> Format.fprintf ppf "  %a@." pp_outcome o)
      r.crash_outcomes;
    List.iter
      (fun o ->
        List.iter
          (fun v -> Format.fprintf ppf "    violation: %s@." v)
          o.violations)
      r.crash_outcomes
  end;
  Format.fprintf ppf "zero-fault reliability overhead:@.";
  List.iter
    (fun oh ->
      Format.fprintf ppf
        "  %-6s sim %8.1f -> %8.1f ms (%+.2f%%)  cpu %.3f -> %.3f s  retx=%d@."
        oh.oh_workload oh.base_sim_ms oh.rel_sim_ms
        (if oh.base_sim_ms > 0. then
           (oh.rel_sim_ms -. oh.base_sim_ms) /. oh.base_sim_ms *. 100.
         else 0.)
        oh.base_cpu_s oh.rel_cpu_s oh.rel_retransmits)
    r.overheads

let outcome_to_json o =
  Json.Obj
    [
      ("mm", Json.String (Config.mm_name o.mm));
      ("workload", Json.String o.workload);
      ("plan", Plan.to_json o.plan);
      ("reliable", Json.Bool o.reliable);
      ("completed", Json.Bool o.completed);
      ( "error",
        match o.error with None -> Json.Null | Some e -> Json.String e );
      ("violations", Json.List (List.map (fun v -> Json.String v) o.violations));
      ("retransmits", Json.Int o.retransmits);
      ("timeouts", Json.Int o.timeouts);
      ("duplicates_dropped", Json.Int o.duplicates_dropped);
      ("sim_ms", Json.Float o.sim_ms);
      ("cpu_s", Json.Float o.cpu_s);
      ("crashes", Json.Int o.crashes);
      ("rejoins", Json.Int o.rejoins);
      ("lost_pages", Json.Int o.lost_pages);
      ( "recovery_p50_ms",
        match o.recovery_p50_ms with
        | None -> Json.Null
        | Some v -> Json.Float v );
      ( "recovery_p99_ms",
        match o.recovery_p99_ms with
        | None -> Json.Null
        | Some v -> Json.Float v );
    ]

let overhead_to_json oh =
  Json.Obj
    [
      ("workload", Json.String oh.oh_workload);
      ("base_sim_ms", Json.Float oh.base_sim_ms);
      ("rel_sim_ms", Json.Float oh.rel_sim_ms);
      ("base_cpu_s", Json.Float oh.base_cpu_s);
      ("rel_cpu_s", Json.Float oh.rel_cpu_s);
      ("rel_retransmits", Json.Int oh.rel_retransmits);
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "asvm.chaos/v1");
      ("total_violations", Json.Int r.total_violations);
      ("lost_writes", Json.Int r.lost_writes);
      ("incomplete", Json.Int r.incomplete);
      ("seeds", Json.Int r.seeds);
      ("quick", Json.Bool r.quick);
      ("outcomes", Json.List (List.map outcome_to_json r.outcomes));
      ( "crash_outcomes",
        Json.List (List.map outcome_to_json r.crash_outcomes) );
      ("overhead", Json.List (List.map overhead_to_json r.overheads));
    ]
