module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Asvm = Asvm_core.Asvm
module Vm = Asvm_machvm.Vm
module Contents = Asvm_machvm.Contents
module Prot = Asvm_machvm.Prot

(* A resident, accessible copy of a page on one node. *)
type copy = { c_node : int; c_access : Prot.t; c_sum : int }

let copies_of vms ~sharers ~obj ~page =
  List.filter_map
    (fun node ->
      let vm = vms.(node) in
      if not (Vm.is_resident vm ~obj ~page) then None
      else
        match Vm.frame_access vm ~obj ~page with
        | None | Some Prot.No_access -> None
        | Some access ->
          (* in-place, memoized checksum: on a quiesced cluster a
             re-audit of unchanged pages is all cache hits *)
          let sum =
            match Vm.frame_checksum vm ~obj ~page with
            | Some s -> s
            | None -> 0
          in
          Some { c_node = node; c_access = access; c_sum = sum })
    sharers

let check cl =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let nodes = (Cluster.config cl).Config.nodes in
  let vms = Array.init nodes (Cluster.node_vm cl) in
  let asvm =
    match Cluster.backend cl with `Asvm a -> Some a | `Xmm _ -> None
  in
  (* owner-side machine state + buffer-pool balance (ASVM) *)
  (match asvm with
  | None -> ()
  | Some a ->
    List.iter (fun v -> bad "asvm: %s" v) (Asvm.check_invariants a);
    for node = 0 to nodes - 1 do
      let r = Asvm.buffers_reserved a ~node in
      if r <> 0 then
        bad "sts: node %d holds %d reserved page buffers after quiesce" node r
    done);
  (* a node that is currently crashed must be truly silent: its kernel
     was reset and nothing may have repopulated it while it was down *)
  for node = 0 to nodes - 1 do
    if Cluster.node_down cl ~node then begin
      let r = Vm.resident_total vms.(node) in
      if r <> 0 then
        bad "crash: down node %d holds %d resident frames" node r
    end
  done;
  (* per-page copy-set invariants, both backends *)
  List.iter
    (fun (obj, sharers) ->
      let size =
        List.fold_left
          (fun acc node ->
            match (acc, Vm.find_object vms.(node) obj) with
            | None, Some o -> Some o.Asvm_machvm.Vm_object.size_pages
            | acc, _ -> acc)
          None sharers
      in
      match size with
      | None -> bad "obj %d: registered but instantiated on no sharer" obj
      | Some size ->
        for page = 0 to size - 1 do
          let copies = copies_of vms ~sharers ~obj ~page in
          (* single writer, and a writer excludes every other copy *)
          (match List.filter (fun c -> c.c_access = Prot.Read_write) copies with
          | [] -> ()
          | [ w ] ->
            if List.length copies > 1 then
              bad
                "obj %d page %d: writer on node %d coexists with %d other \
                 cop%s"
                obj page w.c_node
                (List.length copies - 1)
                (if List.length copies = 2 then "y" else "ies")
          | ws ->
            bad "obj %d page %d: %d simultaneous writers (nodes %s)" obj page
              (List.length ws)
              (String.concat ","
                 (List.map (fun c -> string_of_int c.c_node) ws)));
          (* no forked pages: all accessible copies agree on contents *)
          (match copies with
          | [] | [ _ ] -> ()
          | first :: rest ->
            List.iter
              (fun c ->
                if c.c_sum <> first.c_sum then
                  bad
                    "obj %d page %d: forked contents (node %d checksum %d <> \
                     node %d checksum %d)"
                    obj page c.c_node c.c_sum first.c_node first.c_sum)
              rest);
          (* reader lists registered at the owner cover reality.  The
             list is an over-approximation by design: a kernel discards
             an evicted read copy silently (§3.6 step 1), so an entry
             for a node that no longer holds the page is normal — it
             costs one wasted invalidation, nothing more.  The unsafe
             direction is a copy the owner does not know about: a
             resident non-owner copy missing from the list would be
             skipped by invalidations and go stale after the next write
             grant. *)
          match asvm with
          | None -> ()
          | Some a -> (
            match Asvm.readers a ~obj ~page with
            | None -> ()
            | Some readers ->
              let owner_nodes =
                List.filter
                  (fun node -> Asvm.is_owner a ~node ~obj ~page)
                  sharers
              in
              List.iter
                (fun r ->
                  if not (List.mem r sharers) then
                    bad "obj %d page %d: registered reader %d is not a sharer"
                      obj page r;
                  if List.mem r owner_nodes then
                    bad "obj %d page %d: owner %d is in its own reader list"
                      obj page r)
                readers;
              if owner_nodes <> [] then
                List.iter
                  (fun c ->
                    if
                      (not (List.mem c.c_node owner_nodes))
                      && not (List.mem c.c_node readers)
                    then
                      bad
                        "obj %d page %d: node %d holds a copy the owner's \
                         reader list does not cover"
                        obj page c.c_node)
                  copies)
        done)
    (Cluster.registered_objects cl);
  List.rev !violations
