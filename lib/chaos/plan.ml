module Json = Asvm_obs.Json
module Rng = Asvm_simcore.Rng

type where = Anywhere | On_link of { src : int; dst : int } | At_node of int

type rule =
  | Drop of { p : float; where : where }
  | Delay of { p : float; ms : float; where : where }
  | Duplicate of { p : float; delay_ms : float; where : where }
  | Blackout of { node : int; from_ms : float; until_ms : float }
  | Slowdown of { node : int; extra_ms : float }

type crash = { c_victim : int; c_at_ms : float; c_down_ms : float option }

type t = { seed : int; label : string; rules : rule list; crashes : crash list }

let none = { seed = 0; label = "none"; rules = []; crashes = [] }

let lossy ?(p = 0.01) ~seed () =
  {
    seed;
    label = Printf.sprintf "lossy(p=%g)" p;
    rules = [ Drop { p; where = Anywhere } ];
    crashes = [];
  }

(* Deterministic rolling schedule: crash the victims in order,
   [every_ms] apart, each staying down just short of [k] crash periods —
   so [k] victims are down simultaneously at steady state.  Purely
   arithmetic, no RNG: the schedule reads off the label. *)
let rolling ~victims ~k ~start_ms ~every_ms ?down_ms () =
  if k < 1 then invalid_arg "Plan.rolling: k < 1";
  if victims = [] then invalid_arg "Plan.rolling: no victims";
  let down =
    match down_ms with
    | Some d -> d
    | None -> (float_of_int k -. 0.1) *. every_ms
  in
  let crashes =
    List.mapi
      (fun i v ->
        {
          c_victim = v;
          c_at_ms = start_ms +. (float_of_int i *. every_ms);
          c_down_ms = Some down;
        })
      victims
  in
  {
    seed = 0;
    label =
      Printf.sprintf "rolling(k=%d,n=%d,every=%gms,down=%gms)" k
        (List.length victims) every_ms down;
    rules = [];
    crashes;
  }

let random ~seed ~lossy =
  (* the rule set is derived from the seed with the shared splitmix
     generator; the per-message decisions below never touch this RNG *)
  let rng = Rng.create ((seed * 2) + if lossy then 1 else 0) in
  let node () = Rng.int rng 3 in
  let base =
    [
      Delay
        {
          p = 0.05 +. Rng.float rng 0.1;
          ms = 0.5 +. Rng.float rng 2.;
          where = Anywhere;
        };
      Slowdown { node = node (); extra_ms = 0.1 +. Rng.float rng 0.4 };
    ]
  in
  let rules =
    if not lossy then base
    else
      base
      @ [
          Drop { p = 0.005 +. Rng.float rng 0.015; where = Anywhere };
          Drop { p = 0.05 +. Rng.float rng 0.1; where = At_node (node ()) };
          Duplicate
            {
              p = 0.005 +. Rng.float rng 0.01;
              delay_ms = Rng.float rng 1.;
              where = Anywhere;
            };
          Blackout
            {
              node = node ();
              from_ms = Rng.float rng 5.;
              until_ms = 5. +. Rng.float rng 10.;
            };
        ]
  in
  {
    seed;
    label =
      Printf.sprintf "random(seed=%d,%s)" seed
        (if lossy then "lossy" else "delay-only");
    rules;
    crashes = [];
  }

let with_crashes t crashes =
  {
    t with
    crashes = t.crashes @ crashes;
    label = Printf.sprintf "%s+crash(%d)" t.label (List.length crashes);
  }

let where_to_string = function
  | Anywhere -> "anywhere"
  | On_link { src; dst } -> Printf.sprintf "link %d->%d" src dst
  | At_node n -> Printf.sprintf "node %d" n

let rule_to_string = function
  | Drop { p; where } -> Printf.sprintf "drop p=%g %s" p (where_to_string where)
  | Delay { p; ms; where } ->
    Printf.sprintf "delay p=%g +%gms %s" p ms (where_to_string where)
  | Duplicate { p; delay_ms; where } ->
    Printf.sprintf "duplicate p=%g +%gms %s" p delay_ms (where_to_string where)
  | Blackout { node; from_ms; until_ms } ->
    Printf.sprintf "blackout node %d [%g,%g)ms" node from_ms until_ms
  | Slowdown { node; extra_ms } ->
    Printf.sprintf "slowdown node %d +%gms" node extra_ms

let crash_to_string c =
  Printf.sprintf "crash node %d @%gms%s" c.c_victim c.c_at_ms
    (match c.c_down_ms with
    | Some d -> Printf.sprintf " rejoin +%gms" d
    | None -> " (no rejoin)")

let describe t =
  let parts =
    List.map rule_to_string t.rules @ List.map crash_to_string t.crashes
  in
  Printf.sprintf "%s seed=%d: %s" t.label t.seed
    (if parts = [] then "(no rules)" else String.concat "; " parts)

let to_json t =
  Json.Obj
    [
      ("label", Json.String t.label);
      ("seed", Json.Int t.seed);
      ( "rules",
        Json.List (List.map (fun r -> Json.String (rule_to_string r)) t.rules)
      );
      ( "crashes",
        Json.List
          (List.map (fun c -> Json.String (crash_to_string c)) t.crashes) );
    ]

type event = { index : int; src : int; dst : int; deliveries : float list }

let event_to_string e =
  Printf.sprintf "#%d %d->%d [%s]" e.index e.src e.dst
    (String.concat ";" (List.map (Printf.sprintf "%.6f") e.deliveries))

(* One probabilistic decision = the splitmix64 finalizer over a mix of
   (seed, message index, salt), mapped to [0,1).  The salt separates
   rules within a plan and the two interposition layers, so decisions
   never correlate — and nothing here carries state, which is what
   makes plans reproducible independent of job count. *)
let hash01 ~seed ~index ~salt =
  let open Int64 in
  let z =
    add
      (mul (of_int index) 0x9E3779B97F4A7C15L)
      (add (of_int seed) (mul (of_int salt) 0xBF58476D1CE4E5B9L))
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_float (shift_right_logical z 11) /. 9007199254740992.

let applies where ~src ~dst =
  match where with
  | Anywhere -> true
  | On_link l -> l.src = src && l.dst = dst
  | At_node n -> n = src || n = dst

let eval ~salt_base t ~now ~index ~src ~dst =
  let step (salt, ds) rule =
    let salt = salt + 1 in
    let hit p = hash01 ~seed:t.seed ~index ~salt < p in
    match (ds, rule) with
    | [], _ -> (salt, [])
    | ds, Drop { p; where } ->
      (salt, if applies where ~src ~dst && hit p then [] else ds)
    | ds, Delay { p; ms; where } ->
      ( salt,
        if applies where ~src ~dst && hit p then List.map (( +. ) ms) ds
        else ds )
    | ds, Duplicate { p; delay_ms; where } ->
      ( salt,
        if applies where ~src ~dst && hit p then
          ds @ List.map (( +. ) delay_ms) ds
        else ds )
    | ds, Blackout { node; from_ms; until_ms } ->
      ( salt,
        if (node = src || node = dst) && now >= from_ms && now < until_ms then
          []
        else ds )
    | ds, Slowdown { node; extra_ms } ->
      ( salt,
        if node = src || node = dst then List.map (( +. ) extra_ms) ds else ds
      )
  in
  snd (List.fold_left step (salt_base, [ 0. ]) t.rules)

let decide t ~now ~index ~src ~dst = eval ~salt_base:0 t ~now ~index ~src ~dst

let recording ?record ds ~index ~src ~dst =
  (match record with
  | Some f when ds <> [ 0. ] -> f { index; src; dst; deliveries = ds }
  | _ -> ());
  ds

let net_interposer ?record t : Asvm_mesh.Network.interposer =
 fun ~now ~index ~src ~dst ~bytes:_ ->
  let ds = eval ~salt_base:0 t ~now ~index ~src ~dst in
  { Asvm_mesh.Network.deliveries = recording ?record ds ~index ~src ~dst }

let schedule_crashes t ~engine ~crash ~rejoin =
  let module E = Asvm_simcore.Engine in
  List.iter
    (fun c ->
      (* crash times are relative to the arming point, so a schedule can
         be installed after an arbitrarily long setup phase *)
      let delay = Float.max 0. c.c_at_ms in
      E.schedule engine ~delay (fun () ->
          if crash c.c_victim then
            match c.c_down_ms with
            | None -> ()
            | Some d ->
              E.schedule engine ~delay:d (fun () -> rejoin c.c_victim)))
    t.crashes

(* the STS layer salts its decisions past every net-layer rule, so a
   plan installed at both layers makes independent choices *)
let sts_interposer ?record t : Asvm_sts.Sts.interposer =
  let salt_base = 1000 * (1 + List.length t.rules) in
  fun ~now ~index ~src ~dst ~carries_page:_ ->
    let ds = eval ~salt_base t ~now ~index ~src ~dst in
    { Asvm_sts.Sts.deliveries = recording ?record ds ~index ~src ~dst }
