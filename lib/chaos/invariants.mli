(** Protocol invariant checking over a quiescent cluster.

    Run the engine dry first ([Cluster.run]); then {!check} audits the
    global safety properties both memory managers must preserve no
    matter what the fault plan did to their messages:

    - {b single writer}: at most one node holds kernel write access to
      any page, and a writer never coexists with other resident copies;
    - {b no forked pages}: every resident, accessible copy of a page
      has identical contents (compared by {!Asvm_machvm.Contents.checksum});
    - {b reader-list consistency} (ASVM): every reader registered at an
      owner is a sharer, holds the page resident, and is not the owner;
    - {b owner-side machine state} (ASVM): delegates
      {!Asvm_core.Asvm.check_invariants} — single owner per page, owner
      residency, no stuck operations, no parked requests;
    - {b STS buffer-pool balance} (ASVM): every page receive buffer
      reserved during the run was released (zero outstanding per node);
    - {b crashed-node silence}: a node that is down holds no resident
      frames — recovery traffic must never repopulate a dead kernel.

    These are the properties that must also hold {e across crash
    epochs}: after {!Asvm_cluster.Cluster.crash_node} /
    [rejoin_node] cycles (the [Plan.crashes] schedule), a quiesced
    cluster must still show one writer per page, unforked contents and
    balanced buffer pools — any write the protocol still exposes to
    survivors is intact (see [docs/AVAILABILITY.md]).

    Violations are human-readable strings; the empty list means the
    system state is coherent.  Callers report violations together with
    the seed and fault plan so they can be replayed exactly. *)

(** Audit [cluster]; must be quiescent. *)
val check : Asvm_cluster.Cluster.t -> string list
