(** XMM — the eXtended Memory Manager of the NMK13 NORMA kernel.

    This is the paper's baseline. Characteristics reproduced faithfully:

    - {b Centralized manager}: every memory object has one manager node
      holding all coherency state and interposing on every remote fault.
    - {b Dense state}: the manager keeps one byte per page {e per node}
      of non-pageable memory ([state_bytes] exposes the footprint the
      paper criticizes).
    - {b XMMI over NORMA-IPC}: every protocol step is a heavyweight
      NORMA message; a write-access transfer takes five messages, two
      carrying page contents.
    - {b Clean-at-pager}: before a request is forwarded, a coherent
      version of the page is created at the pager; the first time a
      dirty page is requested by another node it is written to the
      paging space — a disk write in the fault path (Table 1's 38 ms
      rows).
    - {b No internode paging}: evicted dirty pages always go back to the
      pager's disk.
    - {b Remote fork via internal pagers}: each inherited memory object
      is re-exported by an internal pager on the source node; faults on
      the child cross one full NORMA round trip per copy-chain hop, and
      each in-flight request occupies a pager thread from a bounded pool
      (the deadlock hazard of paper section 3.1). *)

module Vm = Asvm_machvm.Vm
module Prot = Asvm_machvm.Prot

type t

(** [create ~net ~config ~vms ~words_per_page] builds the XMM subsystem
    for a cluster whose node [i] runs [vms.(i)]. [fork_threads] bounds
    each node's internal-pager thread pool.

    [metrics] receives the baseline's counter families — [xmm.msgs]
    (labels [class]/[group]/[contents]) and
    [xmm.msgs.ownership_transfer] — and the [xmm.fault_ms] latency
    histogram, mirroring the ASVM side so the paper's Table 1
    message-count comparison (5 messages / 2 with contents vs. ASVM's
    3 / 1) can be asserted from the registry.  [trace] receives
    structured message and ownership events (proto ["xmm"]). *)
val create :
  net:Asvm_mesh.Network.t ->
  ipc_config:Asvm_norma.Ipc.config ->
  vms:Vm.t array ->
  words_per_page:int ->
  fork_threads:int ->
  ?metrics:Asvm_obs.Metrics.Registry.t ->
  ?trace:Asvm_obs.Trace.t ->
  unit ->
  t

val ipc_messages : t -> int

(** {1 Shared memory objects} *)

(** Register a shared object: representations must already exist on all
    [sharers]' VMs. The manager runs on [manager_node] (co-located with
    the object's pager). Returns the [Emmi.manager] proxy for each
    sharer, and installs it on the VMs. *)
val register_shared_object :
  t ->
  obj:Asvm_machvm.Ids.obj_id ->
  size_pages:int ->
  manager_node:int ->
  pager:Asvm_pager.Store_pager.t ->
  sharers:int list ->
  unit

(** Non-pageable manager memory consumed by one object's page-state
    matrix, in bytes (pages x nodes) — the paper's "limited memory
    requirements" critique. *)
val state_bytes : t -> obj:Asvm_machvm.Ids.obj_id -> int

(** {1 Crash and rejoin (see [docs/AVAILABILITY.md])} *)

(** Recover the manager-side state from a whole-node crash of a
    {e non-manager} node.  The caller must already have marked the node
    down ({!Asvm_mesh.Network.set_down}) and reset its kernel
    ({!Asvm_machvm.Vm.crash_reset}).

    Because the pager always holds a coherent image before any supply,
    recovery is pure bookkeeping: the victim's row of every page-state
    matrix is zeroed, requests it originated are dropped from the
    manager queues, and [Lock_done] replies it owed are synthesized
    (empty — the copy died with it) so manager waits resolve.  Messages
    in flight around the crash divert to the NORMA dead-letter hook.

    A crash of a node that {e hosts a manager} (or a fork source) is
    unsupported: the dense state matrix, wait queues and internal pagers
    die with it.  This single point of failure is the availability
    contrast with ASVM's re-electable distributed ownership that
    [docs/AVAILABILITY.md] documents. *)
val crash_node : t -> node:int -> unit

(** Re-admit a node after {!crash_node}: re-drives the kernel faults
    that survived the crash, each sampled into the [xmm.recovery_ms]
    histogram when it completes. *)
val rejoin_node : t -> node:int -> unit

(** {1 Remote fork (delayed copy via internal pagers)} *)

(** [export_copy t ~src_node ~src_obj ~dst_node ~dst_obj] wires [dst_obj]
    (already created on [dst_node]'s VM) to an internal pager on
    [src_node] that satisfies faults by faulting on [src_obj] locally.
    [src_obj] is the local copy made on the source at fork time. *)
val export_copy :
  t ->
  src_node:int ->
  src_obj:Asvm_machvm.Ids.obj_id ->
  dst_node:int ->
  dst_obj:Asvm_machvm.Ids.obj_id ->
  unit

(** Outstanding internal-pager requests that could not get a thread —
    nonzero after the engine drains means the copy-chain deadlock of
    paper section 3.1 has occurred. *)
val stalled_fork_requests : t -> int
