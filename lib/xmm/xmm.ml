module Ipc = Asvm_norma.Ipc
module Network = Asvm_mesh.Network
module Vm = Asvm_machvm.Vm
module Prot = Asvm_machvm.Prot
module Contents = Asvm_machvm.Contents
module Emmi = Asvm_machvm.Emmi
module Ids = Asvm_machvm.Ids
module Store_pager = Asvm_pager.Store_pager
module Metrics = Asvm_obs.Metrics
module Trace = Asvm_obs.Trace

(* XMMI: the XMM-internal protocol, an extension of EMMI carried over
   NORMA-IPC. *)
type msg =
  | Request of {
      origin : int;
      obj : Ids.obj_id;
      page : int;
      desired : Prot.t;
      upgrade : bool;
    }
  | Lock of { obj : Ids.obj_id; page : int; max_access : Prot.t; clean : bool }
  | Lock_done of {
      node : int;
      obj : Ids.obj_id;
      page : int;
      contents : Contents.t option;
    }
  | Supply of {
      obj : Ids.obj_id;
      page : int;
      contents : Contents.t;
      lock : Prot.t;
    }
  | Grant of { obj : Ids.obj_id; page : int }
  | Returned of {
      node : int;
      obj : Ids.obj_id;
      page : int;
      contents : Contents.t;
      dirty : bool;
    }
  | Fork_request of { dst_node : int; dst_obj : Ids.obj_id; page : int }
  | Fork_supply of { dst_obj : Ids.obj_id; page : int; contents : Contents.t }
  | Pager_hop of { cont : int }
      (** local Mach IPC with the user-level pager task; modeled as a
          loopback NORMA message so the manager node's send/receive
          stations are honestly occupied *)

(* page-state bytes in the manager's dense matrix *)
let st_invalid = '\000'
let st_read = '\001'
let st_write = '\002'

type wait = { mutable remaining : int; finished : unit -> unit }

type mstate = {
  m_obj : Ids.obj_id;
  m_size : int;
  m_node : int;
  m_pager : Store_pager.t;
  m_sharers : int list;
  (* one byte per page per node: the memory cost the paper criticizes *)
  m_state : (int, Bytes.t) Hashtbl.t;
  m_cleaned : Bytes.t;
  m_busy : (int, unit) Hashtbl.t;
  m_queue : (int, msg Queue.t) Hashtbl.t;
  m_waits : (int, wait) Hashtbl.t;
}

(* Metric handles (see docs/PERFORMANCE.md): like the ASVM side, the
   send path resolves each [xmm.msgs] series to its Counter.t once
   (first use) and pays an array load per message afterwards; the
   fixed-cardinality series resolve eagerly at [create]. *)
type handles = {
  hm_msgs : Metrics.Counter.t option array;
      (* xmm.msgs{class,group,contents}: row * 3 + contents index *)
  hm_ot : Metrics.Counter.t option array;
      (* xmm.msgs.ownership_transfer{msg,contents}, transfer rows only *)
  hm_fault_read : Metrics.Histogram.t;
  hm_fault_ownership : Metrics.Histogram.t;
  hm_recovery : Metrics.Histogram.t;  (* xmm.recovery_ms *)
}

type export = { e_src_node : int; e_src_task : Ids.task_id }

type fork_pool = {
  limit : int;
  mutable in_use : int;
  waiting : (unit -> unit) Queue.t;
}

type t = {
  ipc : msg Ipc.t;
  net : Network.t;
  vms : Vm.t array;
  words_per_page : int;
  header_bytes : int;
  mutable ports : msg Ipc.port array;
  managers : (Ids.obj_id, mstate) Hashtbl.t;
  exports : (Ids.obj_id, export) Hashtbl.t;
  pools : fork_pool array;
  conts : (int, unit -> unit) Hashtbl.t;
  mutable next_cont : int;
  metrics : Metrics.Registry.t;
  handles : handles;
  trace : Trace.t option;
  (* (obj, page, origin) -> simulated time the fault left the kernel;
     feeds the xmm.fault_ms latency histogram *)
  fault_starts : (Ids.obj_id * int * int, float) Hashtbl.t;
  (* (obj, page, origin) faults whose previous attempt died in a crash;
     completion of the re-driven fault samples xmm.recovery_ms *)
  recovering : (Ids.obj_id * int * int, float) Hashtbl.t;
  (* answers a node owes for delivered-but-unanswered lock requests:
     (owing node, destination, reply).  A crash inside the async-reply
     window synthesizes the owed reply so the manager is not stranded. *)
  mutable owed : (int * int * msg) list;
}

let now t = Asvm_simcore.Engine.now (Vm.engine t.vms.(0))

let node_state ms node =
  match Hashtbl.find_opt ms.m_state node with
  | Some b -> b
  | None ->
    let b = Bytes.make ms.m_size st_invalid in
    Hashtbl.add ms.m_state node b;
    b

let writer_of ms page ~except =
  List.find_opt
    (fun n -> n <> except && Bytes.get (node_state ms n) page = st_write)
    ms.m_sharers

let readers_of ms page ~except =
  List.filter
    (fun n -> n <> except && Bytes.get (node_state ms n) page = st_read)
    ms.m_sharers

let manager_for t obj =
  match Hashtbl.find_opt t.managers obj with
  | Some ms -> ms
  | None -> failwith (Printf.sprintf "Xmm: obj#%d has no manager" obj)

(* Fixed (class, group) rows of the [xmm.msgs] series — the accounting
   buckets match the ASVM side, so the paper's Table 1 counts can be
   compared label for label.  A [Lock] participates in an ownership
   transfer when it recalls the current writer's copy ([clean = true],
   XMM's clean-at-pager step) but is an invalidation when it merely
   flushes read copies.  [Lock_done] and the pager hops depend on what
   they answer, so their senders pass the row explicitly. *)
let msg_rows =
  [|
    ("request", "transfer");  (* 0 *)
    ("lock", "transfer");  (* 1: clean recall of the writer's copy *)
    ("lock", "invalidation");  (* 2: read-copy flush *)
    ("lock_done", "transfer");  (* 3 *)
    ("lock_done", "invalidation");  (* 4 *)
    ("supply", "transfer");  (* 5 *)
    ("grant", "transfer");  (* 6 *)
    ("returned", "pageout");  (* 7 *)
    ("fork_request", "copy");  (* 8 *)
    ("fork_supply", "copy");  (* 9 *)
    ("pager_hop", "pager");  (* 10 *)
    ("pager_request", "pager");  (* 11: data_request to the pager task *)
    ("pager_supply", "pager");  (* 12: data_supply back *)
    ("pager_write", "transfer");  (* 13: data_write in the critical path *)
  |]

let row_pager_hop = 10
let row_pager_request = 11
let row_pager_supply = 12
let row_pager_write = 13
let row_lock_done ~clean = if clean then 3 else 4

let row_of_msg = function
  | Request _ -> 0
  | Lock { clean = true; _ } -> 1
  | Lock { clean = false; _ } -> 2
  | Lock_done _ -> 3
  | Supply _ -> 5
  | Grant _ -> 6
  | Returned _ -> 7
  | Fork_request _ -> 8
  | Fork_supply _ -> 9
  | Pager_hop _ -> row_pager_hop

let row_is_transfer = Array.map (fun (_, g) -> g = "transfer") msg_rows
let contents_labels = [| "none"; "local"; "wire" |]

let make_handles metrics =
  {
    hm_msgs = Array.make (Array.length msg_rows * 3) None;
    hm_ot = Array.make (Array.length msg_rows * 3) None;
    hm_fault_read =
      Metrics.Registry.histogram metrics "xmm.fault_ms"
        ~labels:[ ("kind", "read") ];
    hm_fault_ownership =
      Metrics.Registry.histogram metrics "xmm.fault_ms"
        ~labels:[ ("kind", "ownership") ];
    hm_recovery = Metrics.Registry.histogram metrics "xmm.recovery_ms";
  }

let msgs_counter t row ci =
  let idx = (row * 3) + ci in
  match t.handles.hm_msgs.(idx) with
  | Some c -> c
  | None ->
    let cls, group = msg_rows.(row) in
    let c =
      Metrics.Registry.counter t.metrics "xmm.msgs"
        ~labels:
          [ ("class", cls); ("group", group);
            ("contents", contents_labels.(ci)) ]
    in
    t.handles.hm_msgs.(idx) <- Some c;
    c

let ot_counter t row ci =
  let idx = (row * 3) + ci in
  match t.handles.hm_ot.(idx) with
  | Some c -> c
  | None ->
    let cls, _ = msg_rows.(row) in
    let c =
      Metrics.Registry.counter t.metrics "xmm.msgs.ownership_transfer"
        ~labels:[ ("msg", cls); ("contents", contents_labels.(ci)) ]
    in
    t.handles.hm_ot.(idx) <- Some c;
    c

let page_bytes = 8192

(* XMM_DEBUG_PAGE=<n>: trace every protocol message touching page n of
   any object to stderr — the counterpart of ASVM_DEBUG_PAGE for the
   baseline protocol. *)
let debug_page =
  match Sys.getenv_opt "XMM_DEBUG_PAGE" with
  | Some s -> ( try int_of_string s with _ -> -1)
  | None -> -1

let page_of_msg = function
  | Request { page; _ }
  | Lock { page; _ }
  | Lock_done { page; _ }
  | Supply { page; _ }
  | Grant { page; _ }
  | Returned { page; _ }
  | Fork_request { page; _ }
  | Fork_supply { page; _ } ->
    page
  | Pager_hop _ -> -1

let send t ~src ~dst_node ?carries_page ?row msg =
  let page = carries_page = Some true in
  let row = match row with Some r -> r | None -> row_of_msg msg in
  let cls, group = msg_rows.(row) in
  if debug_page >= 0 && page_of_msg msg = debug_page then
    Printf.eprintf "[xmm %8.3f] %d -> %d : %s/%s%s\n%!" (now t) src dst_node
      cls group
      (if carries_page = Some true then " [page]" else "");
  let ci = if not page then 0 else if src = dst_node then 1 else 2 in
  Metrics.Counter.incr (msgs_counter t row ci);
  if row_is_transfer.(row) then Metrics.Counter.incr (ot_counter t row ci);
  Trace.emit t.trace ~time:(now t) ~node:src
    (Trace.Msg
       {
         proto = "xmm";
         cls;
         group;
         src;
         dst = dst_node;
         carries_page = page;
         bytes = (t.header_bytes + if page then page_bytes else 0);
       });
  Ipc.send t.ipc ~src ~dst:t.ports.(dst_node) ?carries_page msg

(* One hop of local IPC between the kernel-resident XMM stack and the
   user-level pager task on the same node.  [row] names the Mach
   pager-interface call the hop models (data_request / data_supply /
   data_write). *)
let pager_hop t ~node ~carries_page ~row k =
  let id = t.next_cont in
  t.next_cont <- id + 1;
  Hashtbl.add t.conts id k;
  send t ~src:node ~dst_node:node ~carries_page ~row (Pager_hop { cont = id })

let observe_fault t ~obj ~page ~origin ~write =
  (match Hashtbl.find_opt t.recovering (obj, page, origin) with
  | None -> ()
  | Some t0 ->
    Hashtbl.remove t.recovering (obj, page, origin);
    Metrics.Histogram.observe t.handles.hm_recovery (now t -. t0));
  match Hashtbl.find_opt t.fault_starts (obj, page, origin) with
  | None -> ()
  | Some t0 ->
    Hashtbl.remove t.fault_starts (obj, page, origin);
    Metrics.Histogram.observe
      (if write then t.handles.hm_fault_ownership else t.handles.hm_fault_read)
      (now t -. t0)

(* ------------------------------------------------------------------ *)
(* Manager-side request processing                                    *)
(* ------------------------------------------------------------------ *)

let queue_of ms page =
  match Hashtbl.find_opt ms.m_queue page with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add ms.m_queue page q;
    q

(* Step 1 of the XMM protocol: create a coherent version of the page at
   the pager. If some other node holds the page for writing, its copy is
   downgraded/flushed and — if dirty — written into the paging space.
   The first such write for a page hits the disk in the fault path. *)
let make_coherent t ms ~origin ~page ~desired k =
  match writer_of ms page ~except:origin with
  | None -> k ()
  | Some writer ->
    let max_access =
      if Prot.equal desired Prot.Read_write then Prot.No_access
      else Prot.Read_only
    in
    Hashtbl.replace ms.m_waits page { remaining = 1; finished = k };
    Bytes.set (node_state ms writer) page
      (if Prot.equal max_access Prot.No_access then st_invalid else st_read);
    send t ~src:ms.m_node ~dst_node:writer
      (Lock { obj = ms.m_obj; page; max_access; clean = true })

(* Step 2: for write requests, flush read copies everywhere else. *)
let flush_readers t ms ~origin ~page ~desired k =
  if not (Prot.equal desired Prot.Read_write) then k ()
  else
    match readers_of ms page ~except:origin with
    | [] -> k ()
    | readers ->
      Hashtbl.replace ms.m_waits page
        { remaining = List.length readers; finished = k };
      List.iter
        (fun r ->
          Bytes.set (node_state ms r) page st_invalid;
          send t ~src:ms.m_node ~dst_node:r
            (Lock
               { obj = ms.m_obj; page; max_access = Prot.No_access; clean = false }))
        readers

let rec run_request t ms ~origin ~page ~desired ~upgrade =
  if Network.is_down t.net origin then
    (* the origin crashed while its request was queued: nothing to serve *)
    unbusy t ms page
  else begin
    let obj = ms.m_obj in
    (* captured at service start: a crash (and even a rejoin) of the
       origin while the manager is mid-protocol must not end with a
       supply to a kernel that no longer expects one *)
    let origin_inc = Network.incarnation t.net origin in
    let origin_ok () =
      (not (Network.is_down t.net origin))
      && Network.incarnation t.net origin = origin_inc
    in
    make_coherent t ms ~origin ~page ~desired (fun () ->
        flush_readers t ms ~origin ~page ~desired (fun () ->
            let record_owner () =
              if Prot.equal desired Prot.Read_write then
                Trace.emit t.trace ~time:(now t) ~node:ms.m_node
                  (Trace.Ownership { obj; page; owner = origin })
            in
            (* The contents-free upgrade fast path is only sound while the
               origin still holds the data.  The manager's matrix can be
               stale — the origin's eviction [Returned] may be in flight —
               so a co-resident origin is checked directly, and a remote
               origin re-requests on receiving a [Grant] for a page it no
               longer holds (the messages crossed; see the Grant case of
               [handle]). *)
            if
              upgrade
              && Bytes.get (node_state ms origin) page <> st_invalid
              && (origin <> ms.m_node
                 || Vm.is_resident t.vms.(origin) ~obj ~page)
            then begin
              (* origin already holds the data: grant without contents *)
              if origin_ok () then begin
                Bytes.set (node_state ms origin) page
                  (if Prot.equal desired Prot.Read_write then st_write
                   else st_read);
                record_owner ();
                if origin = ms.m_node then begin
                  Vm.lock_request t.vms.(origin) ~obj ~page
                    ~op:
                      {
                        Emmi.max_access = Prot.Read_write;
                        clean = false;
                        mode = Emmi.Lock_plain;
                      }
                    ~reply:(fun _ -> ());
                  observe_fault t ~obj ~page ~origin ~write:true
                end
                else
                  send t ~src:ms.m_node ~dst_node:origin (Grant { obj; page })
              end;
              unbusy t ms page
            end
            else
              (* Step 3: forward the request to the pager, which now views
                 the origin as the page's only user. Local IPC to the
                 user-level pager task: request out, supply (with page)
                 back. *)
              pager_hop t ~node:ms.m_node ~carries_page:false
                ~row:row_pager_request (fun () ->
                  Store_pager.request ms.m_pager ~obj ~page
                    ~words:t.words_per_page (fun contents ->
                      pager_hop t ~node:ms.m_node ~carries_page:true
                        ~row:row_pager_supply (fun () ->
                          if origin_ok () then begin
                            Bytes.set (node_state ms origin) page
                              (if Prot.equal desired Prot.Read_write then
                                 st_write
                               else st_read);
                            record_owner ();
                            if origin = ms.m_node then begin
                              (* kernel and manager co-resident: plain EMMI *)
                              Vm.data_supply t.vms.(origin) ~obj ~page
                                ~contents ~lock:desired
                                ~mode:Emmi.Supply_normal;
                              observe_fault t ~obj ~page ~origin
                                ~write:(Prot.equal desired Prot.Read_write)
                            end
                            else
                              send t ~src:ms.m_node ~dst_node:origin
                                ~carries_page:true
                                (Supply { obj; page; contents; lock = desired })
                          end;
                          unbusy t ms page)))))
  end

and unbusy t ms page =
  Hashtbl.remove ms.m_busy page;
  let q = queue_of ms page in
  if not (Queue.is_empty q) then
    match Queue.pop q with
    | Request { origin; page; desired; upgrade; _ } ->
      Hashtbl.add ms.m_busy page ();
      run_request t ms ~origin ~page ~desired ~upgrade
    | _ -> assert false

let manager_request t ms ~origin ~page ~desired ~upgrade =
  if Hashtbl.mem ms.m_busy page then
    Queue.push
      (Request { origin; obj = ms.m_obj; page; desired; upgrade })
      (queue_of ms page)
  else begin
    Hashtbl.add ms.m_busy page ();
    run_request t ms ~origin ~page ~desired ~upgrade
  end

let resume_wait ms page =
  match Hashtbl.find_opt ms.m_waits page with
  | None -> ()
  | Some w ->
    w.remaining <- w.remaining - 1;
    if w.remaining <= 0 then begin
      Hashtbl.remove ms.m_waits page;
      w.finished ()
    end

let manager_lock_done t ms ~page ~contents =
  match contents with
  | Some c ->
    (* a dirty copy came back: make it coherent at the pager (one local
       IPC carrying the page — Mach's memory_object_data_write, part of
       the transfer's critical path); the disk write is paid the first
       time the page is cleaned *)
    pager_hop t ~node:ms.m_node ~carries_page:true ~row:row_pager_write
      (fun () ->
        if Bytes.get ms.m_cleaned page = '\000' then begin
          Bytes.set ms.m_cleaned page '\001';
          Store_pager.clean ms.m_pager ~obj:ms.m_obj ~page ~contents:c
            (fun () -> resume_wait ms page)
        end
        else begin
          Store_pager.remember ms.m_pager ~obj:ms.m_obj ~page ~contents:c;
          resume_wait ms page
        end)
  | None -> resume_wait ms page

let manager_returned _t ms ~node ~page ~contents ~dirty =
  Bytes.set (node_state ms node) page st_invalid;
  if dirty then begin
    (* no internode paging in XMM: dirty evictions go to the disk *)
    Bytes.set ms.m_cleaned page '\001';
    Store_pager.store_async ms.m_pager ~obj:ms.m_obj ~page ~contents
  end

(* ------------------------------------------------------------------ *)
(* Node-side (proxy) processing                                       *)
(* ------------------------------------------------------------------ *)

let handle_lock t ~node ~obj ~page ~max_access ~clean =
  let vm = t.vms.(node) in
  let ms = manager_for t obj in
  (* The kernel answers asynchronously; until it does, this node owes the
     manager a Lock_done.  If the node crashes inside the window,
     [crash_node] synthesizes the owed (empty) reply so the manager's
     wait resolves — the copy is simply gone. *)
  let owed = (node, ms.m_node, Lock_done { node; obj; page; contents = None }) in
  t.owed <- owed :: t.owed;
  let inc = Network.incarnation t.net node in
  Vm.lock_request vm ~obj ~page
    ~op:{ Emmi.max_access; clean; mode = Emmi.Lock_plain }
    ~reply:(fun result ->
      if
        Network.incarnation t.net node = inc
        && not (Network.is_down t.net node)
      then begin
        t.owed <- List.filter (fun o -> o != owed) t.owed;
        let contents =
          match result with
          | Emmi.Lock_done { returned } -> returned
          | Emmi.Lock_not_present -> None
        in
        send t ~src:node ~dst_node:ms.m_node
          ~carries_page:(Option.is_some contents)
          ~row:(row_lock_done ~clean)
          (Lock_done { node; obj; page; contents })
      end)

(* ------------------------------------------------------------------ *)
(* Internal pager for remote fork                                     *)
(* ------------------------------------------------------------------ *)

let pool_acquire pool k =
  if pool.in_use < pool.limit then begin
    pool.in_use <- pool.in_use + 1;
    k ()
  end
  else Queue.push k pool.waiting

let pool_release pool =
  pool.in_use <- pool.in_use - 1;
  if not (Queue.is_empty pool.waiting) then begin
    let k = Queue.pop pool.waiting in
    pool.in_use <- pool.in_use + 1;
    k ()
  end

let handle_fork_request t ~dst_node ~dst_obj ~page =
  let e =
    match Hashtbl.find_opt t.exports dst_obj with
    | Some e -> e
    | None ->
      failwith (Printf.sprintf "Xmm: obj#%d is not an exported copy" dst_obj)
  in
  let vm = t.vms.(e.e_src_node) in
  let pool = t.pools.(e.e_src_node) in
  (* the copy-pager thread is held for the duration of the local fault:
     this is the deadlock hazard of paper section 3.1 *)
  pool_acquire pool (fun () ->
      let rec attempt () =
        if
          Network.is_down t.net e.e_src_node || Network.is_down t.net dst_node
        then
          (* source or requester crashed mid-fork: free the pager thread
             and drop — the requester re-faults at rejoin *)
          pool_release pool
        else
          Vm.touch vm ~task:e.e_src_task ~vpage:page ~want:Prot.Read_only
            (fun () ->
              match Vm.page_contents vm ~task:e.e_src_task ~vpage:page with
              | Some contents ->
                pool_release pool;
                send t ~src:e.e_src_node ~dst_node ~carries_page:true
                  (Fork_supply { dst_obj; page; contents })
              | None -> attempt ())
      in
      attempt ())

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let handle t node msg =
  match msg with
  | Request { origin; obj; page; desired; upgrade } ->
    manager_request t (manager_for t obj) ~origin ~page ~desired ~upgrade
  | Lock { obj; page; max_access; clean } ->
    handle_lock t ~node ~obj ~page ~max_access ~clean
  | Lock_done { node = _from; obj; page; contents } ->
    manager_lock_done t (manager_for t obj) ~page ~contents
  | Supply { obj; page; contents; lock } ->
    Vm.data_supply t.vms.(node) ~obj ~page ~contents ~lock
      ~mode:Emmi.Supply_normal;
    observe_fault t ~obj ~page ~origin:node
      ~write:(Prot.equal lock Prot.Read_write)
  | Grant { obj; page } ->
    if Vm.is_resident t.vms.(node) ~obj ~page then begin
      Vm.lock_request t.vms.(node) ~obj ~page
        ~op:
          { Emmi.max_access = Prot.Read_write; clean = false; mode = Emmi.Lock_plain }
        ~reply:(fun _ -> ());
      observe_fault t ~obj ~page ~origin:node ~write:true
    end
    else
      (* the grant crossed this kernel's eviction of the page: the read
         copy the manager meant to upgrade is gone, and a contents-free
         grant cannot complete the parked fault.  Convert it into a full
         request; the eviction's [Returned] reached the manager first
         (same-link FIFO), so the manager now serves it from the pager. *)
      send t ~src:node ~dst_node:(manager_for t obj).m_node
        (Request
           { origin = node; obj; page; desired = Prot.Read_write;
             upgrade = false })
  | Returned { node = from; obj; page; contents; dirty } ->
    manager_returned t (manager_for t obj) ~node:from ~page ~contents ~dirty
  | Fork_request { dst_node; dst_obj; page } ->
    handle_fork_request t ~dst_node ~dst_obj ~page
  | Fork_supply { dst_obj; page; contents } ->
    Vm.data_supply t.vms.(node) ~obj:dst_obj ~page ~contents
      ~lock:Prot.Read_only ~mode:Emmi.Supply_normal
  | Pager_hop { cont } -> (
    match Hashtbl.find_opt t.conts cont with
    | Some k ->
      Hashtbl.remove t.conts cont;
      k ()
    | None -> failwith "Xmm: dangling pager continuation")

let create ~net ~ipc_config ~vms ~words_per_page ~fork_threads ?metrics ?trace
    () =
  let ipc = Ipc.create net ipc_config in
  let n = Array.length vms in
  let metrics =
    match metrics with Some m -> m | None -> Metrics.Registry.create ()
  in
  let t =
    {
      ipc;
      net;
      vms;
      words_per_page;
      header_bytes = ipc_config.Ipc.header_bytes;
      ports = [||];
      managers = Hashtbl.create 16;
      exports = Hashtbl.create 16;
      pools =
        Array.init n (fun _ ->
            { limit = fork_threads; in_use = 0; waiting = Queue.create () });
      conts = Hashtbl.create 32;
      next_cont = 0;
      metrics;
      handles = make_handles metrics;
      trace;
      fault_starts = Hashtbl.create 16;
      recovering = Hashtbl.create 16;
      owed = [];
    }
  in
  t.ports <-
    Array.init n (fun node ->
        Ipc.port ipc ~node ~handler:(fun _port msg -> handle t node msg));
  Ipc.set_on_dead_letter ipc
    (Some
       (fun ~src ~dst ~src_dead ~dst_dead msg ->
         if not dst_dead then begin
           (* only the source died after transmit: the payload is intact.
              A Request names the dead source as its fault origin, so it
              is moot; everything else (Lock_done, Returned, Fork_supply)
              still carries valid state — apply it verbatim. *)
           match msg with
           | Request _ -> ()
           | m -> handle t dst m
         end
         else
           match msg with
           | Lock { obj; page; _ } ->
             (* the recalled node crashed: its copy is gone, so answer
                the manager with an empty Lock_done to resolve the wait
                (the pager image is the coherent version) *)
             if not (Network.is_down t.net src) then
               handle t src (Lock_done { node = dst; obj; page; contents = None })
           | _ ->
             (* Supply / Grant / Fork_supply to a crashed kernel: dropped;
                the node re-faults from the pager at rejoin *)
             ignore src_dead));
  t

let ipc_messages t = Ipc.messages t.ipc

let register_shared_object t ~obj ~size_pages ~manager_node ~pager ~sharers =
  let ms =
    {
      m_obj = obj;
      m_size = size_pages;
      m_node = manager_node;
      m_pager = pager;
      m_sharers = sharers;
      m_state = Hashtbl.create 8;
      m_cleaned = Bytes.make size_pages '\000';
      m_busy = Hashtbl.create 8;
      m_queue = Hashtbl.create 8;
      m_waits = Hashtbl.create 8;
    }
  in
  Hashtbl.replace t.managers obj ms;
  List.iter
    (fun node ->
      ignore (node_state ms node);
      let local = node = manager_node in
      let engine = Vm.engine t.vms.(node) in
      let request ~page ~desired ~upgrade =
        Hashtbl.replace t.fault_starts (obj, page, node)
          (Asvm_simcore.Engine.now engine);
        if local then
          (* the faulting kernel hosts the manager: no NORMA involved *)
          Asvm_simcore.Engine.schedule engine ~delay:0.05 (fun () ->
              manager_request t ms ~origin:node ~page ~desired ~upgrade)
        else
          send t ~src:node ~dst_node:manager_node
            (Request { origin = node; obj; page; desired; upgrade })
      in
      let manager =
        {
          Emmi.m_data_request =
            (fun ~page ~desired -> request ~page ~desired ~upgrade:false);
          m_data_unlock =
            (fun ~page ~desired -> request ~page ~desired ~upgrade:true);
          m_data_return =
            (fun ~page ~contents ~dirty ->
              if local then
                Asvm_simcore.Engine.schedule engine ~delay:0.05 (fun () ->
                    manager_returned t ms ~node ~page ~contents ~dirty)
              else
                send t ~src:node ~dst_node:manager_node ~carries_page:true
                  (Returned { node; obj; page; contents; dirty }));
        }
      in
      Vm.set_manager t.vms.(node) obj (Some manager))
    sharers

(* ------------------------------------------------------------------ *)
(* Crash and rejoin                                                   *)
(* ------------------------------------------------------------------ *)

(* Centralized-manager recovery: because every manager keeps a dense
   per-node page-state row and the pager always holds a coherent image
   before any supply, recovering from a non-manager crash is just
   bookkeeping — zero the victim's row, drop its queued requests,
   resolve the replies it owed.  The price of the simplicity is the
   design's single point of failure: a crash of a manager node itself is
   unrecoverable here (the dense matrix and wait queues die with it),
   which is the availability contrast docs/AVAILABILITY.md draws against
   ASVM's re-electable distributed ownership. *)
let crash_node t ~node =
  Hashtbl.iter
    (fun _ ms ->
      (* the victim's cache is gone: it holds nothing, anywhere *)
      (match Hashtbl.find_opt ms.m_state node with
      | Some row -> Bytes.fill row 0 ms.m_size st_invalid
      | None -> ());
      (* requests the victim originated and never got served are moot *)
      Hashtbl.iter
        (fun _page q ->
          let keep = Queue.create () in
          Queue.iter
            (fun m ->
              match m with
              | Request { origin; _ } when origin = node -> ()
              | m -> Queue.push m keep)
            q;
          Queue.clear q;
          Queue.transfer keep q)
        ms.m_queue)
    t.managers;
  (* resolve the Lock_dones the victim owed: the manager's wait must not
     hang on a kernel that will never answer *)
  let owed_by, rest = List.partition (fun (n, _, _) -> n = node) t.owed in
  t.owed <- rest;
  let eng = Network.engine t.net in
  List.iter
    (fun (_, dst, msg) ->
      Asvm_simcore.Engine.schedule eng ~delay:0. (fun () ->
          if not (Network.is_down t.net dst) then handle t dst msg))
    owed_by;
  (* in-flight fault timing for the victim is meaningless now *)
  let stale =
    Hashtbl.fold
      (fun ((_, _, origin) as key) _ acc ->
        if origin = node then key :: acc else acc)
      t.fault_starts []
  in
  List.iter (Hashtbl.remove t.fault_starts) stale

let rejoin_node t ~node =
  let vm = t.vms.(node) in
  let t0 = now t in
  List.iter
    (fun (obj, page) ->
      if not (Hashtbl.mem t.recovering (obj, page, node)) then
        Hashtbl.replace t.recovering (obj, page, node) t0)
    (Vm.pending_pages vm);
  Vm.redrive_pending vm

let state_bytes t ~obj =
  let ms = manager_for t obj in
  Hashtbl.length ms.m_state * ms.m_size

let export_copy t ~src_node ~src_obj ~dst_node ~dst_obj =
  let vm = t.vms.(src_node) in
  let src_task = Vm.create_task vm in
  let size =
    match Vm.find_object vm src_obj with
    | Some o -> o.Asvm_machvm.Vm_object.size_pages
    | None -> failwith "Xmm.export_copy: unknown source object"
  in
  ignore
    (Vm.map vm ~task:src_task ~obj:src_obj ~start:0 ~npages:size ~obj_offset:0
       ~inherit_:Asvm_machvm.Address_map.Inherit_none);
  Hashtbl.replace t.exports dst_obj
    { e_src_node = src_node; e_src_task = src_task };
  let manager =
    {
      Emmi.m_data_request =
        (fun ~page ~desired:_ ->
          send t ~src:dst_node ~dst_node:src_node
            (Fork_request { dst_node; dst_obj; page }));
      m_data_unlock = (fun ~page:_ ~desired:_ -> ());
      m_data_return = (fun ~page:_ ~contents:_ ~dirty:_ -> ());
    }
  in
  Vm.set_manager t.vms.(dst_node) dst_obj (Some manager)

let stalled_fork_requests t =
  Array.fold_left (fun acc p -> acc + Queue.length p.waiting) 0 t.pools
