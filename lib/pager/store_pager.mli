(** A user-level pager task: the data authority behind memory objects.

    One instance plays both roles the paper needs:
    - the {e default pager} backing anonymous memory (paging space), and
    - a {e file pager} for memory-mapped files (preloaded page images).

    The pager runs on one node. Its CPU is a FIFO station, so a pager
    asked to supply pages for the whole machine serializes — that is the
    ceiling in the paper's Table 2. Writes to the store are write-through
    to disk; a memory-resident image of stored pages means supplies cost
    only service time (a paging-space read from a cold disk would apply
    only after a pager restart, which we do not model). *)

type config = {
  supply_ms : float;  (** CPU time to serve one page request *)
  store_ms : float;  (** CPU time to accept one page return *)
  file_read_ms : float;
      (** extra media time for a cold (disk-resident) file page; paid
          once, after which the page is served from the pager's memory *)
}

val default_config : config

type t

val create :
  Asvm_simcore.Engine.t -> node:int -> disk:Disk.t -> config -> t

val node : t -> int
val disk : t -> Disk.t

(** Preload a page image (file pager contents); the page starts
    disk-resident, so its first supply pays [file_read_ms]. *)
val preload :
  t -> obj:Asvm_machvm.Ids.obj_id -> page:int -> Asvm_machvm.Contents.t -> unit

(** Record a page image in the pager's memory cache without any cost
    (used when a coherent copy passes through the pager anyway). *)
val remember :
  t ->
  obj:Asvm_machvm.Ids.obj_id ->
  page:int ->
  contents:Asvm_machvm.Contents.t ->
  unit

(** Does the store hold a coherent copy of the page? *)
val has : t -> obj:Asvm_machvm.Ids.obj_id -> page:int -> bool

(** [request t ~obj ~page ~words k] supplies page contents after pager
    service time: stored data if present, a zero-filled page otherwise. *)
val request :
  t ->
  obj:Asvm_machvm.Ids.obj_id ->
  page:int ->
  words:int ->
  (Asvm_machvm.Contents.t -> unit) ->
  unit

(** [clean t ~obj ~page ~contents k] makes the page coherent at the
    pager: the contents are written through to the paging disk. This is
    the operation whose first-time cost dominates the XMM rows of
    Table 1. *)
val clean :
  t ->
  obj:Asvm_machvm.Ids.obj_id ->
  page:int ->
  contents:Asvm_machvm.Contents.t ->
  (unit -> unit) ->
  unit

(** Fire-and-forget page return (eviction step 4 / async file write). *)
val store_async :
  t ->
  obj:Asvm_machvm.Ids.obj_id ->
  page:int ->
  contents:Asvm_machvm.Contents.t ->
  unit

(** View this pager as the kernel's anonymous-memory backing store. *)
val as_backing : t -> Asvm_machvm.Backing.t

(** Pages supplied / cleaned so far. *)
val supplies : t -> int

val cleans : t -> int

(** Pages returned into the store by the eviction path ({!store_async}
    and the kernel backing-store interface) — the pageout-daemon /
    eviction write-back traffic, excluding coherence {!clean}s. *)
val stores : t -> int
