module Engine = Asvm_simcore.Engine
module Station = Asvm_simcore.Station
module Contents = Asvm_machvm.Contents

type config = { supply_ms : float; store_ms : float; file_read_ms : float }

(* supply_ms covers the user-level pager's whole turnaround for one page
   request, including its local Mach IPC with the kernel; it is the
   per-page ceiling of the paper's Table 2 write test. file_read_ms is
   the extra cost of bringing a cold file page off the disk (sequential
   media rate, not a full seek — file readers stream). *)
let default_config = { supply_ms = 0.85; store_ms = 0.5; file_read_ms = 2.6 }

type entry = { mutable data : Contents.t; mutable on_disk_only : bool }

type t = {
  engine : Engine.t;
  node : int;
  disk : Disk.t;
  config : config;
  station : Station.t;
  table : (Asvm_machvm.Ids.obj_id * int, entry) Hashtbl.t;
  mutable supplies : int;
  mutable cleans : int;
  mutable stores : int;
}

let create engine ~node ~disk config =
  {
    engine;
    node;
    disk;
    config;
    station = Station.create engine;
    table = Hashtbl.create 256;
    supplies = 0;
    cleans = 0;
    stores = 0;
  }

let node t = t.node
let disk t = t.disk

let preload t ~obj ~page contents =
  Hashtbl.replace t.table (obj, page)
    { data = Contents.snapshot contents; on_disk_only = true }

let has t ~obj ~page = Hashtbl.mem t.table (obj, page)

let request t ~obj ~page ~words k =
  t.supplies <- t.supplies + 1;
  match Hashtbl.find_opt t.table (obj, page) with
  | Some e when e.on_disk_only ->
    (* cold file page: pay the media read once, then serve from memory *)
    Station.submit t.station
      ~service:(t.config.supply_ms +. t.config.file_read_ms)
      (fun () ->
        e.on_disk_only <- false;
        k (Contents.snapshot e.data))
  | Some e ->
    Station.submit t.station ~service:t.config.supply_ms (fun () ->
        k (Contents.snapshot e.data))
  | None ->
    Station.submit t.station ~service:t.config.supply_ms (fun () ->
        k (Contents.zero ~words))

let remember t ~obj ~page ~contents =
  match Hashtbl.find_opt t.table (obj, page) with
  | Some e ->
    e.data <- Contents.snapshot contents;
    e.on_disk_only <- false
  | None ->
    Hashtbl.replace t.table (obj, page)
      { data = Contents.snapshot contents; on_disk_only = false }

let clean t ~obj ~page ~contents k =
  t.cleans <- t.cleans + 1;
  remember t ~obj ~page ~contents;
  Station.submit t.station ~service:t.config.store_ms (fun () ->
      Disk.write t.disk k)

let store_async t ~obj ~page ~contents =
  t.cleans <- t.cleans + 1;
  t.stores <- t.stores + 1;
  remember t ~obj ~page ~contents;
  Station.submit t.station ~service:t.config.store_ms (fun () ->
      Disk.write t.disk ignore)

let as_backing t =
  {
    Asvm_machvm.Backing.store =
      (fun ~obj ~page ~contents ~k ->
        t.stores <- t.stores + 1;
        remember t ~obj ~page ~contents;
        Station.submit t.station ~service:t.config.store_ms (fun () ->
            Disk.write t.disk k));
    fetch =
      (fun ~obj ~page ~k ->
        Station.submit t.station ~service:t.config.supply_ms (fun () ->
            Disk.read t.disk (fun () ->
                k
                  (Option.map
                     (fun e -> Contents.snapshot e.data)
                     (Hashtbl.find_opt t.table (obj, page))))));
  }

let supplies t = t.supplies
let cleans t = t.cleans
let stores t = t.stores
