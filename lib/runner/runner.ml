let default_jobs () = Domain.recommended_domain_count ()

(* A completed job is [Ok v] or the exception it died with (plus its
   backtrace, so re-raising on the submitting domain loses nothing). *)
type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

let sequential thunks =
  (* the ~jobs:1 degenerate path: the calling domain runs the batch in
     submission order, exactly as the pre-pool drivers did *)
  List.map (fun f -> f ()) thunks

let parallel ~jobs thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  let results : 'a outcome option array = Array.make n None in
  let queue = Queue.create () in
  let mutex = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref n in
  Array.iteri (fun i f -> Queue.add (i, f) queue) thunks;
  (* Workers drain the queue; each job writes only its own slot of
     [results], and [Domain.join] publishes those writes back to the
     submitting domain. The queue and the completion count are the only
     shared mutable state, both guarded by [mutex]. *)
  let worker () =
    let rec loop () =
      Mutex.lock mutex;
      if Queue.is_empty queue then begin
        Mutex.unlock mutex
      end
      else begin
        let i, f = Queue.pop queue in
        Mutex.unlock mutex;
        let outcome =
          try Ok (f ())
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some outcome;
        Mutex.lock mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast all_done;
        Mutex.unlock mutex;
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  (* the submitting domain is the pool's first worker *)
  worker ();
  (* barrier: results merge only after every job has completed *)
  Mutex.lock mutex;
  while !remaining > 0 do
    Condition.wait all_done mutex
  done;
  Mutex.unlock mutex;
  Array.iter Domain.join spawned;
  (* submission-ordered merge; the lowest-indexed failure re-raises *)
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
       results)

let run ?jobs thunks =
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some j when j < 1 -> invalid_arg "Runner.run: jobs < 1"
    | Some j -> j
  in
  let jobs = min jobs (List.length thunks) in
  if jobs <= 1 then sequential thunks else parallel ~jobs thunks

let map ?jobs f cells = run ?jobs (List.map (fun c () -> f c) cells)
