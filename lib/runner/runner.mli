(** Domain-based parallel job pool for independent simulation cells.

    Every paper cell — one [(mm, workload, nodes, seed)] point of
    Tables 1–3 / Figures 10–13 — is an independent simulation: it
    builds its own {!Asvm_cluster.Cluster.t}, which owns a private
    event engine and metric registry, runs to completion, and returns
    a plain value (latencies, rates, metric snapshots).  Nothing is
    shared between cells, so a sweep over cells is embarrassingly
    parallel.

    {!run} executes such a batch on [jobs] domains (OCaml 5 [Domain]s
    over a [Mutex]/[Condition] work queue) and returns the results in
    {b submission order}, regardless of which domain finished which
    job first.  Determinism is preserved by construction: each job is
    a pure [unit -> 'a] closure over its own private state, and the
    merge happens after a barrier, so [~jobs:1] and [~jobs:64] produce
    identical result lists.

    Exceptions propagate deterministically too: every job runs to
    completion (or failure), and the exception of the
    {b lowest-indexed} failing job is re-raised with its backtrace. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when
    [?jobs] is omitted. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs thunks] executes the thunks on a pool of [jobs] domains
    and returns their results in submission order.  [~jobs:1] (or a
    batch of one) degenerates to a plain sequential [List.map] on the
    calling domain — no domains are spawned.  [jobs] is clamped to the
    batch size.

    @raise Invalid_argument if [jobs < 1]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f cells] = [run ~jobs (List.map (fun c () -> f c) cells)]. *)
