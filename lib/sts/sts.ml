module Network = Asvm_mesh.Network

type config = {
  sw_send_ms : float;
  sw_recv_ms : float;
  page_extra_ms : float;
  header_bytes : int;
  page_buffers : int;
}

(* Both software paths are thin (a 32-byte untyped block goes straight
   to/from the mesh interface), so back-to-back messages — e.g. the
   owner invalidating a long reader list and absorbing the acks —
   pipeline at ~0.09 ms each: the per-reader slope of the paper's
   figure 10. *)
let default_config =
  {
    sw_send_ms = 0.09;
    sw_recv_ms = 0.09;
    page_extra_ms = 0.45;
    header_bytes = 32;
    page_buffers = 64;
  }

let page_bytes = 8192

module Metrics = Asvm_obs.Metrics

(* Metric handles, resolved once at [create]: the per-message path must
   not pay the registry's string+label hashtable lookup or allocate a
   label list. *)
type handles = {
  h_msgs_plain : Metrics.Counter.t;  (* sts.messages{page=false} *)
  h_msgs_page : Metrics.Counter.t;  (* sts.messages{page=true} *)
  h_bytes : Metrics.Counter.t;
  h_buffers : Metrics.Gauge.t;
}

type 'msg t = {
  net : Network.t;
  config : config;
  handlers : ('msg -> unit) option array;
  reserved : int array;
  mutable messages : int;
  mutable page_messages : int;
  handles : handles option;
}

let create ?metrics net config =
  let n = Asvm_mesh.Topology.nodes (Network.topology net) in
  {
    net;
    config;
    handlers = Array.make n None;
    reserved = Array.make n 0;
    messages = 0;
    page_messages = 0;
    handles =
      Option.map
        (fun m ->
          {
            h_msgs_plain =
              Metrics.Registry.counter m "sts.messages"
                ~labels:[ ("page", "false") ];
            h_msgs_page =
              Metrics.Registry.counter m "sts.messages"
                ~labels:[ ("page", "true") ];
            h_bytes = Metrics.Registry.counter m "sts.bytes";
            h_buffers = Metrics.Registry.gauge m "sts.buffers_reserved";
          })
        metrics;
  }

let register t ~node handler = t.handlers.(node) <- Some handler

let debug = Sys.getenv_opt "STS_DEBUG" <> None

(* current credit-pool pressure, summed over nodes *)
let buffers_gauge t delta =
  match t.handles with
  | None -> ()
  | Some h -> Metrics.Gauge.add h.h_buffers delta

let reserve_buffer t ~node =
  if t.reserved.(node) >= t.config.page_buffers then false
  else begin
    t.reserved.(node) <- t.reserved.(node) + 1;
    buffers_gauge t 1.;
    if debug && node = 0 then
      Printf.eprintf "[sts] reserve node=%d -> %d\n%!" node t.reserved.(node);
    true
  end

let release_buffer t ~node =
  if t.reserved.(node) <= 0 then failwith "Sts.release_buffer: pool underflow";
  t.reserved.(node) <- t.reserved.(node) - 1;
  buffers_gauge t (-1.);
  if debug && node = 0 then
    Printf.eprintf "[sts] release node=%d -> %d\n%!" node t.reserved.(node)

let buffers_reserved t ~node = t.reserved.(node)

let send t ~src ~dst ?(carries_page = false) msg =
  let handler =
    match t.handlers.(dst) with
    | Some h -> h
    | None -> failwith "Sts.send: no handler registered at destination"
  in
  if carries_page && t.reserved.(dst) <= 0 then
    failwith
      (Printf.sprintf
         "Sts.send: page sent without a reserved receive buffer (src=%d \
          dst=%d)"
         src dst);
  t.messages <- t.messages + 1;
  if carries_page then t.page_messages <- t.page_messages + 1;
  let c = t.config in
  let extra = if carries_page then c.page_extra_ms else 0. in
  let bytes = c.header_bytes + if carries_page then page_bytes else 0 in
  (match t.handles with
  | None -> ()
  | Some h ->
    Metrics.Counter.incr (if carries_page then h.h_msgs_page else h.h_msgs_plain);
    Metrics.Counter.incr ~by:bytes h.h_bytes);
  Network.send t.net ~src ~dst ~bytes ~sw_send:(c.sw_send_ms +. extra)
    ~sw_recv:(c.sw_recv_ms +. extra)
    (fun () -> handler msg)

let messages t = t.messages
let page_messages t = t.page_messages
