module Network = Asvm_mesh.Network
module Engine = Asvm_simcore.Engine
module Trace = Asvm_obs.Trace

exception Protocol_violation of { node : int; what : string }

let () =
  Printexc.register_printer (function
    | Protocol_violation { node; what } ->
      Some (Printf.sprintf "Sts.Protocol_violation(node=%d: %s)" node what)
    | _ -> None)

type decision = { deliveries : float list }

let pass = { deliveries = [ 0. ] }

type interposer =
  now:float ->
  index:int ->
  src:int ->
  dst:int ->
  carries_page:bool ->
  decision

type reliability = {
  ack_timeout_ms : float;
  backoff : float;
  max_retransmits : int;
}

(* The worst honest round trip is a page-carrying reply into a busy
   receive station (~1.5 ms); 4 ms leaves headroom without stretching
   the recovery tail, and doubling keeps a congested link from melting
   under its own retransmissions. *)
let default_reliability =
  { ack_timeout_ms = 4.0; backoff = 2.0; max_retransmits = 10 }

type config = {
  sw_send_ms : float;
  sw_recv_ms : float;
  page_extra_ms : float;
  header_bytes : int;
  page_buffers : int;
  reliability : reliability option;
  interposer : interposer option;
}

(* Both software paths are thin (a 32-byte untyped block goes straight
   to/from the mesh interface), so back-to-back messages — e.g. the
   owner invalidating a long reader list and absorbing the acks —
   pipeline at ~0.09 ms each: the per-reader slope of the paper's
   figure 10. *)
let default_config =
  {
    sw_send_ms = 0.09;
    sw_recv_ms = 0.09;
    page_extra_ms = 0.45;
    header_bytes = 32;
    page_buffers = 64;
    reliability = None;
    interposer = None;
  }

let page_bytes = 8192

module Metrics = Asvm_obs.Metrics

(* Metric handles, resolved once at [create]: the per-message path must
   not pay the registry's string+label hashtable lookup or allocate a
   label list. *)
type handles = {
  h_msgs_plain : Metrics.Counter.t;  (* sts.messages{page=false} *)
  h_msgs_page : Metrics.Counter.t;  (* sts.messages{page=true} *)
  h_bytes : Metrics.Counter.t;
  h_buffers : Metrics.Gauge.t;
}

(* Registered only when reliability is on, so the disabled-case metric
   snapshot stays byte-identical to the historical one. *)
type rel_handles = {
  h_retransmits : Metrics.Counter.t;
  h_timeouts : Metrics.Counter.t;
  h_dups : Metrics.Counter.t;
}

(* One logical message awaiting acknowledgment at its sender.
   [p_src_inc] / [p_dst_inc] are the endpoints' crash incarnations at
   send time: a delivery whose endpoint has since crashed is stale even
   if the node has already rejoined. *)
type 'msg pending = {
  p_seq : int;
  p_src : int;
  p_dst : int;
  p_page : bool;
  p_payload : 'msg;
  p_src_inc : int;
  p_dst_inc : int;
  mutable p_acked : bool;
  mutable p_retransmits : int;
}

type 'msg reliable = {
  rel : reliability;
  next_seq : (int * int, int) Hashtbl.t;  (* per (src, dst) link *)
  pending : (int * int * int, 'msg pending) Hashtbl.t;  (* (src, dst, seq) *)
  delivered : (int * int * int, unit) Hashtbl.t;  (* receiver-side dedup *)
  rh : rel_handles option;
  mutable n_retransmits : int;
  mutable n_dups : int;
}

type 'msg dead_letter =
  src:int -> dst:int -> src_dead:bool -> dst_dead:bool -> 'msg -> unit

type 'msg t = {
  net : Network.t;
  config : config;
  handlers : ('msg -> unit) option array;
  reserved : int array;
  mutable messages : int;
  mutable page_messages : int;
  mutable transmissions : int;  (* interposer index: data copies only *)
  reliable : 'msg reliable option;
  handles : handles option;
  trace : Trace.t option;
  mutable on_dead_letter : 'msg dead_letter option;
  mutable n_dead_letters : int;
}

let create ?metrics ?trace net config =
  let n = Asvm_mesh.Topology.nodes (Network.topology net) in
  {
    net;
    config;
    handlers = Array.make n None;
    reserved = Array.make n 0;
    messages = 0;
    page_messages = 0;
    transmissions = 0;
    reliable =
      Option.map
        (fun rel ->
          {
            rel;
            next_seq = Hashtbl.create 64;
            pending = Hashtbl.create 64;
            delivered = Hashtbl.create 256;
            rh =
              Option.map
                (fun m ->
                  {
                    h_retransmits = Metrics.Registry.counter m "sts.retransmits";
                    h_timeouts = Metrics.Registry.counter m "sts.timeouts";
                    h_dups =
                      Metrics.Registry.counter m "sts.duplicates_dropped";
                  })
                metrics;
            n_retransmits = 0;
            n_dups = 0;
          })
        config.reliability;
    handles =
      Option.map
        (fun m ->
          {
            h_msgs_plain =
              Metrics.Registry.counter m "sts.messages"
                ~labels:[ ("page", "false") ];
            h_msgs_page =
              Metrics.Registry.counter m "sts.messages"
                ~labels:[ ("page", "true") ];
            h_bytes = Metrics.Registry.counter m "sts.bytes";
            h_buffers = Metrics.Registry.gauge m "sts.buffers_reserved";
          })
        metrics;
    trace;
    on_dead_letter = None;
    n_dead_letters = 0;
  }

let register t ~node handler = t.handlers.(node) <- Some handler
let set_on_dead_letter t f = t.on_dead_letter <- f

let debug = Sys.getenv_opt "STS_DEBUG" <> None

(* current credit-pool pressure, summed over nodes *)
let buffers_gauge t delta =
  match t.handles with
  | None -> ()
  | Some h -> Metrics.Gauge.add h.h_buffers delta

let reserve_buffer t ~node =
  if t.reserved.(node) >= t.config.page_buffers then false
  else begin
    t.reserved.(node) <- t.reserved.(node) + 1;
    buffers_gauge t 1.;
    if debug && node = 0 then
      Printf.eprintf "[sts] reserve node=%d -> %d\n%!" node t.reserved.(node);
    true
  end

let release_buffer t ~node =
  if t.reserved.(node) <= 0 then
    raise
      (Protocol_violation { node; what = "release_buffer: pool underflow" });
  t.reserved.(node) <- t.reserved.(node) - 1;
  buffers_gauge t (-1.);
  if debug && node = 0 then
    Printf.eprintf "[sts] release node=%d -> %d\n%!" node t.reserved.(node)

let buffers_reserved t ~node = t.reserved.(node)
let engine t = Network.engine t.net
let now t = Engine.now (engine t)

let note t ~node ~category detail =
  Trace.emit t.trace ~time:(now t) ~node (Trace.Note { category; detail })

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

(* An endpoint is dead for a given message when it is currently down or
   has crashed since the message was sent (incarnation mismatch). *)
let endpoint_dead t node inc =
  Network.is_down t.net node || Network.incarnation t.net node <> inc

(* Hand a message that can no longer be delivered to the protocol's
   salvage hook.  Always fired as a fresh engine event: the send path
   may detect a dead destination while the caller is mid-operation, and
   the salvage hook must not reenter protocol state being updated. *)
let dead_letter t ~src ~dst ~src_dead ~dst_dead msg =
  t.n_dead_letters <- t.n_dead_letters + 1;
  note t ~node:src ~category:"sts.dead_letter"
    (Printf.sprintf "dst=%d src_dead=%b dst_dead=%b" dst src_dead dst_dead);
  match t.on_dead_letter with
  | None -> ()
  | Some f ->
    Engine.schedule (engine t) ~delay:0. (fun () ->
        f ~src ~dst ~src_dead ~dst_dead msg)

(* ------------------------------------------------------------------ *)
(* Physical transmission                                               *)
(* ------------------------------------------------------------------ *)

(* Push one copy of a data message through the network, subject to the
   logical-level interposer.  [k] runs at the receiver after transport
   costs, once per copy the interposer lets through. *)
let transmit t ~src ~dst ~carries_page k =
  let c = t.config in
  let extra = if carries_page then c.page_extra_ms else 0. in
  let bytes = c.header_bytes + if carries_page then page_bytes else 0 in
  let net_send () =
    Network.send t.net ~src ~dst ~bytes ~sw_send:(c.sw_send_ms +. extra)
      ~sw_recv:(c.sw_recv_ms +. extra) k
  in
  match c.interposer with
  | None -> net_send ()
  | Some f ->
    let index = t.transmissions in
    t.transmissions <- t.transmissions + 1;
    let d = f ~now:(now t) ~index ~src ~dst ~carries_page in
    List.iter
      (fun delay ->
        if delay <= 0. then net_send ()
        else Engine.schedule (engine t) ~delay net_send)
      d.deliveries

(* Acks are plain 32-byte messages, below the interposer (the network
   layer can still perturb them) — losing an ack is indistinguishable
   from losing the data and triggers the same retransmission. *)
let send_ack t ~src ~dst k =
  let c = t.config in
  Network.send t.net ~src ~dst ~bytes:c.header_bytes ~sw_send:c.sw_send_ms
    ~sw_recv:c.sw_recv_ms k

(* ------------------------------------------------------------------ *)
(* Reliability                                                         *)
(* ------------------------------------------------------------------ *)

let on_ack r key =
  match Hashtbl.find_opt r.pending key with
  | None -> () (* ack of a retransmitted copy that already completed *)
  | Some p ->
    p.p_acked <- true;
    Hashtbl.remove r.pending key

(* Receiver side of a reliable data message: suppress duplicates,
   acknowledge every copy (the sender may have missed earlier acks),
   hand fresh messages to the registered handler. *)
let deliver_reliable t r (p : 'msg pending) =
  let key = (p.p_src, p.p_dst, p.p_seq) in
  let src_dead = endpoint_dead t p.p_src p.p_src_inc
  and dst_dead = endpoint_dead t p.p_dst p.p_dst_inc in
  if src_dead || dst_dead then begin
    (* The delivered table doubles as a dead-letter dedup: only the
       first in-flight copy of the logical message is salvaged.  The
       quiet [on_ack] kills the sender's retransmission timer (if the
       crash purge has not already); the dead letter itself is the
       failure notification. *)
    if not (Hashtbl.mem r.delivered key) then begin
      Hashtbl.replace r.delivered key ();
      on_ack r key;
      dead_letter t ~src:p.p_src ~dst:p.p_dst ~src_dead ~dst_dead p.p_payload
    end
  end
  else begin
  let fresh = not (Hashtbl.mem r.delivered key) in
  if fresh then Hashtbl.replace r.delivered key ()
  else begin
    r.n_dups <- r.n_dups + 1;
    (match r.rh with
    | Some h -> Metrics.Counter.incr h.h_dups
    | None -> ());
    note t ~node:p.p_dst ~category:"sts.duplicate_dropped"
      (Printf.sprintf "src=%d seq=%d" p.p_src p.p_seq)
  end;
  send_ack t ~src:p.p_dst ~dst:p.p_src (fun () -> on_ack r key);
  if fresh then
    match t.handlers.(p.p_dst) with
    | Some handler -> handler p.p_payload
    | None ->
      raise
        (Protocol_violation
           { node = p.p_dst; what = "handler unregistered mid-flight" })
  end

let transmit_reliable t r (p : 'msg pending) =
  transmit t ~src:p.p_src ~dst:p.p_dst ~carries_page:p.p_page (fun () ->
      deliver_reliable t r p)

let rec arm_timer t r (p : 'msg pending) ~timeout =
  Engine.schedule (engine t) ~delay:timeout (fun () ->
      if not p.p_acked then begin
        (match r.rh with
        | Some h -> Metrics.Counter.incr h.h_timeouts
        | None -> ());
        note t ~node:p.p_src ~category:"sts.timeout"
          (Printf.sprintf "dst=%d seq=%d after %.2fms" p.p_dst p.p_seq timeout);
        if p.p_retransmits >= r.rel.max_retransmits then
          raise
            (Protocol_violation
               {
                 node = p.p_src;
                 what =
                   Printf.sprintf
                     "reliable send to node %d gave up after %d retransmits \
                      (seq=%d)"
                     p.p_dst r.rel.max_retransmits p.p_seq;
               })
        else begin
          p.p_retransmits <- p.p_retransmits + 1;
          r.n_retransmits <- r.n_retransmits + 1;
          (match r.rh with
          | Some h -> Metrics.Counter.incr h.h_retransmits
          | None -> ());
          note t ~node:p.p_src ~category:"sts.retransmit"
            (Printf.sprintf "dst=%d seq=%d attempt=%d" p.p_dst p.p_seq
               (p.p_retransmits + 1));
          transmit_reliable t r p;
          arm_timer t r p ~timeout:(timeout *. r.rel.backoff)
        end
      end)

(* ------------------------------------------------------------------ *)
(* Logical send                                                        *)
(* ------------------------------------------------------------------ *)

let send t ~src ~dst ?(carries_page = false) msg =
  (* A dead node sends nothing: protocol closures scheduled before the
     crash may still run, but their messages die silently here. *)
  if Network.is_down t.net src then ()
  else begin
    let handler =
      match t.handlers.(dst) with
      | Some h -> h
      | None ->
        raise
          (Protocol_violation
             { node = dst; what = "send: no handler registered at destination" })
    in
    if Network.is_down t.net dst then
      (* The destination is known dead at send time: the message is
         counted (the sender honestly pays for it) but goes straight to
         the salvage hook.  The reserved-buffer check is skipped — the
         dead node's credit pool was zeroed at the crash. *)
      begin
        t.messages <- t.messages + 1;
        if carries_page then t.page_messages <- t.page_messages + 1;
        (match t.handles with
        | None -> ()
        | Some h ->
          Metrics.Counter.incr
            (if carries_page then h.h_msgs_page else h.h_msgs_plain);
          Metrics.Counter.incr
            ~by:(t.config.header_bytes + if carries_page then page_bytes else 0)
            h.h_bytes);
        dead_letter t ~src ~dst ~src_dead:false ~dst_dead:true msg
      end
    else begin
      if carries_page && t.reserved.(dst) <= 0 then
        raise
          (Protocol_violation
             {
               node = dst;
               what =
                 Printf.sprintf
                   "send: page sent without a reserved receive buffer (src=%d)"
                   src;
             });
      t.messages <- t.messages + 1;
      if carries_page then t.page_messages <- t.page_messages + 1;
      (match t.handles with
      | None -> ()
      | Some h ->
        Metrics.Counter.incr
          (if carries_page then h.h_msgs_page else h.h_msgs_plain);
        Metrics.Counter.incr
          ~by:(t.config.header_bytes + if carries_page then page_bytes else 0)
          h.h_bytes);
      match t.reliable with
      | None ->
        let src_inc = Network.incarnation t.net src
        and dst_inc = Network.incarnation t.net dst in
        transmit t ~src ~dst ~carries_page (fun () ->
            let src_dead = endpoint_dead t src src_inc
            and dst_dead = endpoint_dead t dst dst_inc in
            if src_dead || dst_dead then
              dead_letter t ~src ~dst ~src_dead ~dst_dead msg
            else handler msg)
      | Some r ->
        let link = (src, dst) in
        let seq =
          match Hashtbl.find_opt r.next_seq link with Some s -> s | None -> 0
        in
        Hashtbl.replace r.next_seq link (seq + 1);
        let p =
          {
            p_seq = seq;
            p_src = src;
            p_dst = dst;
            p_page = carries_page;
            p_payload = msg;
            p_src_inc = Network.incarnation t.net src;
            p_dst_inc = Network.incarnation t.net dst;
            p_acked = false;
            p_retransmits = 0;
          }
        in
        Hashtbl.replace r.pending (src, dst, seq) p;
        transmit_reliable t r p;
        arm_timer t r p ~timeout:r.rel.ack_timeout_ms
    end
  end

(* ------------------------------------------------------------------ *)
(* Crash teardown                                                      *)
(* ------------------------------------------------------------------ *)

let crash_node t ~node =
  (* The node's preallocated receive buffers die with it; compensate the
     cluster-wide gauge so live nodes still balance to zero. *)
  buffers_gauge t (-.float_of_int t.reserved.(node));
  t.reserved.(node) <- 0;
  match t.reliable with
  | None -> ()
  | Some r ->
    (* Quietly retire every unacknowledged message the node sent or was
       to receive: marking it acked disarms the retransmission timer
       (see [arm_timer]'s guard) without a protocol violation.  In-flight
       copies are handled by the delivery-time liveness gate. *)
    let stale =
      Hashtbl.fold
        (fun key p acc ->
          if p.p_src = node || p.p_dst = node then (key, p) :: acc else acc)
        r.pending []
    in
    List.iter
      (fun (key, p) ->
        p.p_acked <- true;
        Hashtbl.remove r.pending key)
      stale

let messages t = t.messages
let page_messages t = t.page_messages
let dead_letters t = t.n_dead_letters

let retransmits t =
  match t.reliable with None -> 0 | Some r -> r.n_retransmits

let duplicates_dropped t =
  match t.reliable with None -> 0 | Some r -> r.n_dups
