(** STS — the SVM Transport Service.

    ASVM's dedicated transport (paper section 3.1): messages are a fixed
    32-byte block of untyped data, optionally followed by the contents of
    one 8 KB VM page. Because page contents are only ever transferred in
    response to a request from their receiver, the receiver can
    preallocate page buffers; flow control reduces to a per-node credit
    pool that requesters draw from before asking for data.

    The software path is far cheaper than NORMA's: no typed marshalling,
    no port-right bookkeeping. *)

type config = {
  sw_send_ms : float;
  sw_recv_ms : float;
  page_extra_ms : float;  (** extra cost each side to stage an 8 KB page *)
  header_bytes : int;  (** fixed untyped block, 32 bytes in the paper *)
  page_buffers : int;  (** preallocated receive buffers per node *)
}

val default_config : config

type 'msg t

(** [create ?metrics net config] builds a transport over [net].  When
    [metrics] is given, every send bumps the [sts.messages] (labeled
    [page=true|false]) and [sts.bytes] counters, and the credit pool
    is mirrored in the [sts.buffers_reserved] gauge (summed over
    nodes). *)
val create : ?metrics:Asvm_obs.Metrics.Registry.t -> Asvm_mesh.Network.t -> config -> 'msg t

(** Install the per-node message handler. Must be called once per node
    before any [send] targets it. *)
val register : 'msg t -> node:int -> ('msg -> unit) -> unit

(** [send t ~src ~dst ?carries_page msg] delivers [msg] to [dst]'s
    handler after transport costs.
    @raise Failure if [dst] has no registered handler.
    @raise Failure if [carries_page] and no buffer is reserved at [dst]
    (flow-control violation: pages only flow on behalf of a request). *)
val send : 'msg t -> src:int -> dst:int -> ?carries_page:bool -> 'msg -> unit

(** Reserve a preallocated page receive buffer at [node] before issuing a
    request whose answer carries page contents. Returns [false] when the
    pool is exhausted (the caller must defer its request). *)
val reserve_buffer : 'msg t -> node:int -> bool

(** Return a previously reserved buffer at [node] once the page has been
    consumed. @raise Failure on over-release. *)
val release_buffer : 'msg t -> node:int -> unit

(** Currently reserved buffers at [node] (for invariant checks). *)
val buffers_reserved : 'msg t -> node:int -> int

val messages : 'msg t -> int
val page_messages : 'msg t -> int
