(** STS — the SVM Transport Service.

    ASVM's dedicated transport (paper section 3.1): messages are a fixed
    32-byte block of untyped data, optionally followed by the contents of
    one 8 KB VM page. Because page contents are only ever transferred in
    response to a request from their receiver, the receiver can
    preallocate page buffers; flow control reduces to a per-node credit
    pool that requesters draw from before asking for data.

    The software path is far cheaper than NORMA's: no typed marshalling,
    no port-right bookkeeping.

    Two opt-in extensions support chaos testing (see [lib/chaos] and
    [docs/RELIABILITY.md]):
    - a fault {!interposer} perturbing the logical message stream
      (drop / delay / duplicate), and
    - a {!reliability} layer (sequence numbers, acks, timeout +
      exponential-backoff retransmission via engine timers, receiver-side
      duplicate suppression) that masks such perturbation.
    With both left at their defaults the send path is exactly the
    historical unreliable-datagram one. *)

(** Structured protocol violation: the transport's flow-control or
    addressing contract was broken at [node].  Machine-readable so the
    invariant checker and the reliability layer can report precisely
    which node misbehaved. *)
exception Protocol_violation of { node : int; what : string }

(** {1 Fault interposition} *)

(** Same shape as {!Asvm_mesh.Network.decision}, applied to logical STS
    messages before they hit the network: one entry per transmitted
    copy, each the extra delay (ms) before the copy enters the network;
    [[]] suppresses transmission entirely. *)
type decision = { deliveries : float list }

(** [{ deliveries = [ 0. ] }] — transmit exactly once, unperturbed. *)
val pass : decision

(** [index] is the per-transport ordinal of physical data transmissions
    (retransmissions included, acks excluded), deterministic for a
    fixed workload and seed. *)
type interposer =
  now:float ->
  index:int ->
  src:int ->
  dst:int ->
  carries_page:bool ->
  decision

(** {1 Reliability} *)

type reliability = {
  ack_timeout_ms : float;  (** initial retransmission timeout *)
  backoff : float;  (** timeout multiplier after each retransmission *)
  max_retransmits : int;
      (** per message; exceeding it raises {!Protocol_violation} at the
          sender — the link is considered broken, not slow *)
}

(** 4 ms initial timeout (several times the worst page-carrying round
    trip), doubling per retry, at most 10 retransmissions. *)
val default_reliability : reliability

type config = {
  sw_send_ms : float;
  sw_recv_ms : float;
  page_extra_ms : float;  (** extra cost each side to stage an 8 KB page *)
  header_bytes : int;  (** fixed untyped block, 32 bytes in the paper *)
  page_buffers : int;  (** preallocated receive buffers per node *)
  reliability : reliability option;
      (** [Some r] sequences every message, acknowledges delivery and
          retransmits on timeout; [None] (default) is the historical
          unreliable datagram service *)
  interposer : interposer option;
      (** fault-injection hook over logical STS transmissions;
          [None] (default) leaves the stream untouched *)
}

val default_config : config

type 'msg t

(** [create ?metrics ?trace net config] builds a transport over [net].
    When [metrics] is given, every send bumps the [sts.messages]
    (labeled [page=true|false]) and [sts.bytes] counters, and the credit
    pool is mirrored in the [sts.buffers_reserved] gauge (summed over
    nodes).  With [config.reliability] enabled, [sts.retransmits],
    [sts.timeouts] and [sts.duplicates_dropped] counters appear too, and
    [trace] receives one [Note] event per retransmission, expired timer
    and suppressed duplicate. *)
val create :
  ?metrics:Asvm_obs.Metrics.Registry.t ->
  ?trace:Asvm_obs.Trace.t ->
  Asvm_mesh.Network.t ->
  config ->
  'msg t

(** Install the per-node message handler. Must be called once per node
    before any [send] targets it. *)
val register : 'msg t -> node:int -> ('msg -> unit) -> unit

(** [send t ~src ~dst ?carries_page msg] delivers [msg] to [dst]'s
    handler after transport costs.  Counted once as a logical message
    regardless of how often the reliability layer retransmits it.
    @raise Protocol_violation if [dst] has no registered handler.
    @raise Protocol_violation if [carries_page] and no buffer is
    reserved at [dst] (flow-control violation: pages only flow on
    behalf of a request). *)
val send : 'msg t -> src:int -> dst:int -> ?carries_page:bool -> 'msg -> unit

(** Reserve a preallocated page receive buffer at [node] before issuing a
    request whose answer carries page contents. Returns [false] when the
    pool is exhausted (the caller must defer its request). *)
val reserve_buffer : 'msg t -> node:int -> bool

(** Return a previously reserved buffer at [node] once the page has been
    consumed. @raise Protocol_violation on over-release. *)
val release_buffer : 'msg t -> node:int -> unit

(** Currently reserved buffers at [node] (for invariant checks). *)
val buffers_reserved : 'msg t -> node:int -> int

(** {1 Crash and rejoin (see [docs/AVAILABILITY.md])}

    The transport consults the mesh's liveness registry
    ({!Asvm_mesh.Network.is_down} / [incarnation]) on both the send and
    the delivery path.  A dead sender's messages vanish silently; a
    message whose endpoint died while it was in flight (or is known
    dead at send time) is diverted to the {e dead-letter} hook instead
    of being delivered, exactly once per logical message when
    reliability is on. *)

(** Salvage hook for undeliverable messages.  [src_dead] / [dst_dead]
    say which endpoint's crash killed the message (both can hold).  The
    hook runs as a fresh engine event, never reentering the sender's
    call stack. *)
type 'msg dead_letter =
  src:int -> dst:int -> src_dead:bool -> dst_dead:bool -> 'msg -> unit

val set_on_dead_letter : 'msg t -> 'msg dead_letter option -> unit

(** Tear down the node's per-transport state at a crash: zero its
    receive-buffer credit pool (compensating the
    [sts.buffers_reserved] gauge) and quietly disarm every
    retransmission timer for messages it sent or was to receive.  The
    caller must already have marked the node down in the mesh
    registry. *)
val crash_node : 'msg t -> node:int -> unit

(** Undeliverable messages diverted to the dead-letter hook so far. *)
val dead_letters : 'msg t -> int

(** Logical messages sent (excluding acks and retransmissions). *)
val messages : 'msg t -> int

val page_messages : 'msg t -> int

(** Messages retransmitted by the reliability layer so far (0 when
    reliability is off). *)
val retransmits : 'msg t -> int

(** Duplicate deliveries suppressed by the reliability layer so far. *)
val duplicates_dropped : 'msg t -> int
