(* asvm-sim: command-line driver for the ASVM multicomputer simulator.

   Subcommands run each of the paper's experiments with configurable
   parameters:

     asvm-sim fault  --mm asvm --readers 4 --kind write
     asvm-sim chain  --mm xmm --length 6
     asvm-sim file   --mm asvm --nodes 16 --op read --mb 4
     asvm-sim em3d   --mm asvm --nodes 32 --cells 256000 --iterations 20
     asvm-sim serve  --mm asvm --arrival bursty --oversub 3.0
     asvm-sim sweep  --experiment table1 --jobs 4
     asvm-sim chaos  --seeds 10
     asvm-sim chaos  --seed 3 --workload file --mm asvm *)

open Cmdliner

module Config = Asvm_cluster.Config
module Fault_micro = Asvm_workloads.Fault_micro
module Copy_chain = Asvm_workloads.Copy_chain
module File_io = Asvm_workloads.File_io
module Em3d = Asvm_workloads.Em3d
module Metrics = Asvm_obs.Metrics

let mm_arg =
  let parse = function
    | "asvm" -> Ok Config.Mm_asvm
    | "xmm" -> Ok Config.Mm_xmm
    | s -> Error (`Msg (Printf.sprintf "unknown memory manager %S" s))
  in
  let print ppf mm = Format.pp_print_string ppf (String.lowercase_ascii (Config.mm_name mm)) in
  Arg.conv (parse, print)

let mm_term =
  Arg.(
    value
    & opt mm_arg Config.Mm_asvm
    & info [ "mm" ] ~docv:"MM" ~doc:"Memory manager: $(b,asvm) or $(b,xmm).")

let trace_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Stream the protocol trace to $(docv), one JSON object per line \
           (see docs/OBSERVABILITY.md for the schema).")

let metrics_term =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the metric registry snapshot after the run.")

let print_snapshot ~header snapshot =
  Printf.printf "\n%s\n" header;
  Metrics.pp_snapshot Format.std_formatter snapshot;
  Format.pp_print_flush Format.std_formatter ()

(* ------------------------------- fault ------------------------------ *)

let fault_cmd =
  let kind_term =
    Arg.(
      value
      & opt (enum [ ("write", `Write); ("upgrade", `Upgrade); ("read", `Read) ]) `Write
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Fault kind: $(b,write), $(b,upgrade) or $(b,read).")
  in
  let readers_term =
    Arg.(value & opt int 2 & info [ "readers" ] ~doc:"Read copies in place.")
  in
  let nodes_term =
    Arg.(value & opt int 72 & info [ "nodes" ] ~doc:"Machine size.")
  in
  let run mm kind readers nodes trace_out metrics =
    let fk =
      match kind with
      | `Write -> Fault_micro.Write_fault { read_copies = readers }
      | `Upgrade -> Fault_micro.Write_upgrade { read_copies = readers }
      | `Read -> Fault_micro.Read_fault { nth_reader = readers }
    in
    let r = Fault_micro.measure_instrumented ~nodes ?trace_out ~mm fk in
    Printf.printf "%s under %s: %.2f ms\n" (Fault_micro.describe fk)
      (Config.mm_name mm) r.Fault_micro.latency_ms;
    if metrics then begin
      print_snapshot ~header:"counters over the measured fault:"
        r.Fault_micro.fault_metrics;
      print_snapshot ~header:"full run snapshot:" r.Fault_micro.run_metrics
    end;
    Option.iter
      (fun f -> Printf.printf "\ntrace written to %s\n" f)
      trace_out
  in
  Cmd.v
    (Cmd.info "fault" ~doc:"Page-fault latency microbenchmark (Table 1).")
    Term.(
      const run $ mm_term $ kind_term $ readers_term $ nodes_term
      $ trace_out_term $ metrics_term)

(* ------------------------------- chain ------------------------------ *)

let chain_cmd =
  let length_term =
    Arg.(value & opt int 4 & info [ "length" ] ~doc:"Copy-chain length.")
  in
  let run mm length =
    let r = Copy_chain.measure ~mm ~chain:length () in
    Printf.printf
      "chain of %d under %s: %.2f ms mean fault latency (%d faults, %.2f ms \
       total)\n"
      length (Config.mm_name mm) r.Copy_chain.mean_fault_ms r.Copy_chain.faults
      r.Copy_chain.total_ms
  in
  Cmd.v
    (Cmd.info "chain" ~doc:"Inherited-memory copy-chain benchmark (Figure 11).")
    Term.(const run $ mm_term $ length_term)

(* -------------------------------- file ------------------------------ *)

let file_cmd =
  let nodes_term =
    Arg.(value & opt int 8 & info [ "nodes" ] ~doc:"Nodes accessing the file.")
  in
  let mb_term = Arg.(value & opt int 4 & info [ "mb" ] ~doc:"File size (MB).") in
  let op_term =
    Arg.(
      value
      & opt (enum [ ("read", `Read); ("write", `Write) ]) `Read
      & info [ "op" ] ~doc:"Access type: $(b,read) or $(b,write).")
  in
  let run mm nodes mb op =
    let r =
      match op with
      | `Read -> File_io.read_test ~mm ~nodes ~file_mb:mb ()
      | `Write -> File_io.write_test ~mm ~nodes ~file_mb:mb ()
    in
    Printf.printf
      "%s of a %d MB mapped file on %d nodes under %s: %.2f MB/s per node \
       (%d pager supplies)\n"
      (match op with `Read -> "parallel read" | `Write -> "parallel write")
      mb nodes (Config.mm_name mm) r.File_io.per_node_mb_s
      r.File_io.pager_supplies
  in
  Cmd.v
    (Cmd.info "file" ~doc:"Mapped-file transfer-rate benchmark (Table 2).")
    Term.(const run $ mm_term $ nodes_term $ mb_term $ op_term)

(* -------------------------------- em3d ------------------------------ *)

let em3d_cmd =
  let nodes_term =
    Arg.(value & opt int 16 & info [ "nodes" ] ~doc:"Compute nodes.")
  in
  let cells_term =
    Arg.(value & opt int 64_000 & info [ "cells" ] ~doc:"Total E+H cells.")
  in
  let iter_term =
    Arg.(value & opt int 20 & info [ "iterations" ] ~doc:"Iterations.")
  in
  let big_mem_term =
    Arg.(
      value & flag
      & info [ "big-memory" ]
          ~doc:"Give every node enough memory for the whole data set.")
  in
  let run mm nodes cells iterations big_mem metrics =
    let memory_pages =
      if big_mem then Some (Em3d.data_pages ~cells + 64) else None
    in
    if
      (not big_mem) && nodes > 1
      && not
           (Em3d.fits ~cells ~nodes
              ~memory_pages_per_node:Asvm_machvm.Vm_config.default.memory_pages)
    then
      print_endline
        "data set exceeds the combined memory of the nodes (the paper marks \
         this **); use --big-memory to run anyway"
    else begin
      let r =
        Em3d.run ~mm ?memory_pages
          { (Em3d.default_params ~cells ~nodes) with iterations }
      in
      Printf.printf
        "EM3D %d cells, %d iterations on %d nodes under %s: %.2f s (%d page \
         faults, %d protocol messages)\n"
        cells iterations nodes (Config.mm_name mm) r.Em3d.seconds r.Em3d.faults
        r.Em3d.protocol_messages;
      if metrics then
        print_snapshot ~header:"metric registry snapshot:" r.Em3d.metrics
    end
  in
  Cmd.v
    (Cmd.info "em3d" ~doc:"EM3D application benchmark (Table 3).")
    Term.(
      const run $ mm_term $ nodes_term $ cells_term $ iter_term $ big_mem_term
      $ metrics_term)

(* -------------------------------- sor ------------------------------- *)

let sor_cmd =
  let nodes_term =
    Arg.(value & opt int 8 & info [ "nodes" ] ~doc:"Compute nodes.")
  in
  let grid_term =
    Arg.(value & opt int 1024 & info [ "grid" ] ~doc:"Grid side length.")
  in
  let iter_term =
    Arg.(value & opt int 10 & info [ "iterations" ] ~doc:"Iterations.")
  in
  let run mm nodes grid iterations =
    let r =
      Asvm_workloads.Sor.run ~mm { Asvm_workloads.Sor.grid; nodes; iterations }
    in
    Printf.printf
      "SOR %dx%d, %d iterations on %d nodes under %s: %.3f s (%d page faults)\n"
      grid grid iterations nodes (Config.mm_name mm)
      r.Asvm_workloads.Sor.seconds r.Asvm_workloads.Sor.faults
  in
  Cmd.v
    (Cmd.info "sor" ~doc:"Strip-partitioned SOR stencil (nearest-neighbour SVM).")
    Term.(const run $ mm_term $ nodes_term $ grid_term $ iter_term)

(* -------------------------------- serve ----------------------------- *)

let serve_cmd =
  let module Serve = Asvm_serve.Serve in
  let module Arrival = Asvm_serve.Arrival in
  let nodes_term =
    Arg.(
      value
      & opt int Serve.default_params.Serve.nodes
      & info [ "nodes" ] ~doc:"Serving fleet size.")
  in
  let arrival_term =
    Arg.(
      value
      & opt (enum [ ("poisson", `Poisson); ("bursty", `Bursty) ]) `Poisson
      & info [ "arrival" ] ~docv:"PROCESS"
          ~doc:"Arrival process: $(b,poisson) or $(b,bursty).")
  in
  let rate_term =
    Arg.(
      value & opt float 1000.
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Mean arrival rate (requests/s).  A bursty process runs at \
             2.5x$(docv) for 40 ms then $(docv)/4 for 60 ms.")
  in
  let oversub_term =
    Arg.(
      value
      & opt float Serve.default_params.Serve.oversub
      & info [ "oversub" ] ~docv:"X"
          ~doc:
            "Working set as a multiple of aggregate fleet memory; above \
             1.0 the fleet must page to serve.")
  in
  let duration_term =
    Arg.(
      value
      & opt float Serve.default_params.Serve.duration_ms
      & info [ "duration-ms" ] ~doc:"Arrival window (the run drains past it).")
  in
  let read_fraction_term =
    Arg.(
      value
      & opt float Serve.default_params.Serve.read_fraction
      & info [ "read-fraction" ] ~doc:"Fraction of requests that only read.")
  in
  let zipf_term =
    Arg.(
      value
      & opt (some float) (Some 0.9)
      & info [ "zipf" ] ~docv:"A"
          ~doc:
            "Zipf key-popularity exponent; pass $(b,0) for uniform keys.")
  in
  let seed_term =
    Arg.(
      value
      & opt int Serve.default_params.Serve.seed
      & info [ "seed" ] ~doc:"Experiment seed (the run is pure in it).")
  in
  let run mm nodes arrival rate oversub duration_ms read_fraction zipf seed
      metrics =
    let process =
      match arrival with
      | `Poisson -> Arrival.Poisson { rate_per_s = rate }
      | `Bursty ->
        Arrival.Bursty
          {
            on_rate_per_s = rate *. 2.5;
            off_rate_per_s = rate /. 4.;
            on_ms = 40.;
            off_ms = 60.;
          }
    in
    let key_dist =
      match zipf with
      | None | Some 0. -> Arrival.Uniform
      | Some a -> Arrival.Zipf a
    in
    let p =
      {
        Serve.default_params with
        Serve.nodes;
        oversub;
        duration_ms;
        process;
        read_fraction;
        key_dist;
        seed;
      }
    in
    let r = Serve.run ~mm p in
    Printf.printf
      "%s %s oversub %.1f: %d requests on %d nodes (%d-page working set)\n"
      (Config.mm_name mm)
      (Arrival.process_name process)
      oversub r.Serve.requests nodes
      (Serve.working_set_pages p);
    Printf.printf
      "  latency: p50 %.2f ms, p99 %.2f ms, p999 %.2f ms, max %.2f ms\n"
      r.Serve.p50_ms r.Serve.p99_ms r.Serve.p999_ms r.Serve.max_ms;
    Printf.printf "  goodput: %.0f req/s over %.0f ms served\n"
      r.Serve.goodput_rps r.Serve.sim_ms;
    Printf.printf
      "  paging: %d evictions (%d by daemon over %d scans), %d pager stores\n"
      r.Serve.evictions r.Serve.pageout_evictions r.Serve.pageout_runs
      r.Serve.pager_stores;
    if mm = Config.Mm_asvm then
      Printf.printf
        "  eviction steps: %d reader handoffs, %d internode pageouts, %d to \
         the pager\n"
        r.Serve.reader_handoffs r.Serve.internode_pageouts
        r.Serve.pageouts_to_pager;
    if metrics then
      print_snapshot ~header:"metric registry snapshot:" r.Serve.metrics
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Open-loop serving workload: SLO percentiles under memory \
          oversubscription (see docs/SERVING.md).")
    Term.(
      const run $ mm_term $ nodes_term $ arrival_term $ rate_term
      $ oversub_term $ duration_term $ read_fraction_term $ zipf_term
      $ seed_term $ metrics_term)

(* -------------------------------- chaos ----------------------------- *)

let chaos_cmd =
  let module Plan = Asvm_chaos.Plan in
  let module Soak = Asvm_chaos.Soak in
  let seeds_term =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Random fault plans per (protocol, workload) cell.")
  in
  let seed_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Reproduce one soak cell exactly: the plan is regenerated from \
             $(docv) and replayed against $(b,--workload) under $(b,--mm).")
  in
  let workload_term =
    Arg.(
      value
      & opt (enum (List.map (fun w -> (w, w)) Soak.workloads)) "fault"
      & info [ "workload" ] ~docv:"W"
          ~doc:"Workload for $(b,--seed) mode: fault, chain, file or em3d.")
  in
  let quick_term =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shrink the workload sizes (CI smoke).")
  in
  let crash_term =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Add rolling whole-node crash/rejoin to the run.  Alone: run \
             only the deterministic crash cells (k=1 and k=2 per workload \
             and protocol).  With $(b,--seed): overlay the crash schedule \
             on the seeded message-fault plan (see docs/AVAILABILITY.md).")
  in
  let k_term =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K"
          ~doc:
            "Concurrently-down nodes for $(b,--crash) with $(b,--seed) \
             (default 1).")
  in
  let jobs_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the soak pool; plans and outcomes are \
             independent of $(docv).")
  in
  let print_crash_stats (o : Soak.outcome) =
    if o.Soak.crashes > 0 then begin
      Printf.printf "crashes: %d, rejoins: %d, lost pages (sole copy died): %d\n"
        o.Soak.crashes o.Soak.rejoins o.Soak.lost_pages;
      match (o.Soak.recovery_p50_ms, o.Soak.recovery_p99_ms) with
      | Some p50, Some p99 ->
        Printf.printf "recovery latency: p50=%.2f ms p99=%.2f ms\n" p50 p99
      | _ -> ()
    end
  in
  let run mm seed seeds workload quick crash k jobs =
    match seed with
    | Some seed ->
      (* reproduce-by-seed: one cell, plan printed in full *)
      let lossy = mm = Config.Mm_asvm in
      let plan = Plan.random ~seed ~lossy in
      let plan =
        if crash then
          Plan.with_crashes plan (Soak.crash_plan ~workload ~k).Plan.crashes
        else plan
      in
      Printf.printf "plan: %s\n%!" (Plan.describe plan);
      let o = Soak.run_one ~quick ~mm ~workload ~plan ~reliable:lossy () in
      Printf.printf "%s %s: %s, %d retransmits, %d duplicates dropped\n"
        (Config.mm_name mm) workload
        (if o.Soak.completed then "completed" else "DID NOT COMPLETE")
        o.Soak.retransmits o.Soak.duplicates_dropped;
      print_crash_stats o;
      Option.iter (fun e -> Printf.printf "error: %s\n" e) o.Soak.error;
      List.iter (fun v -> Printf.printf "violation: %s\n" v) o.Soak.violations;
      if o.Soak.violations <> [] || not o.Soak.completed then exit 1
    | None when crash ->
      (* the deterministic crash cells only: rolling k-of-n per workload
         and protocol, perfect network *)
      let cells =
        List.concat_map
          (fun workload ->
            List.concat_map
              (fun k ->
                [ (Config.Mm_asvm, workload, k, true);
                  (Config.Mm_xmm, workload, k, false) ])
              [ 1; 2 ])
          Soak.workloads
      in
      let outcomes =
        Asvm_runner.Runner.map ?jobs
          (fun (mm, workload, k, reliable) ->
            Soak.run_one ~quick ~mm ~workload
              ~plan:(Soak.crash_plan ~workload ~k)
              ~reliable ())
          cells
      in
      List.iter
        (fun o ->
          Format.printf "  %a@." Soak.pp_outcome o;
          List.iter
            (fun v -> Format.printf "    violation: %s@." v)
            o.Soak.violations)
        outcomes;
      Format.pp_print_flush Format.std_formatter ();
      if
        List.exists
          (fun o -> o.Soak.violations <> [] || not o.Soak.completed)
          outcomes
      then exit 1
    | None ->
      let r = Soak.run ?jobs ~seeds ~quick () in
      Soak.pp_report Format.std_formatter r;
      Format.pp_print_flush Format.std_formatter ();
      if r.Soak.total_violations > 0 || r.Soak.incomplete > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fault-injection soak: seeded fault plans and rolling node \
          crash/rejoin schedules against every workload, with protocol \
          invariant checks after quiesce (see docs/RELIABILITY.md and \
          docs/AVAILABILITY.md).")
    Term.(
      const run $ mm_term $ seed_term $ seeds_term $ workload_term $ quick_term
      $ crash_term $ k_term $ jobs_term)

(* -------------------------------- sweep ----------------------------- *)

let sweep_cmd =
  let experiment_term =
    Arg.(
      value
      & opt
          (enum
             [
               ("table1", `Table1);
               ("figure10", `Figure10);
               ("figure11", `Figure11);
               ("table2", `Table2);
             ])
          `Table1
      & info [ "experiment" ] ~docv:"NAME"
          ~doc:
            "Which sweep to run: $(b,table1), $(b,figure10), $(b,figure11) or \
             $(b,table2).")
  in
  let jobs_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the cell pool (default: the recommended \
             domain count; 1 = sequential).  Results are independent of \
             $(docv).")
  in
  let run experiment jobs =
    (match jobs with
    | Some j when j < 1 ->
      prerr_endline "asvm-sim: --jobs expects a positive integer";
      exit 2
    | _ -> ());
    match experiment with
    | `Table1 ->
      Printf.printf "%-52s %8s %8s\n" "fault type" "ASVM" "XMM";
      List.iter
        (fun (label, asvm, xmm) ->
          Printf.printf "%-52s %8.2f %8.2f\n" label asvm xmm)
        (Fault_micro.table1 ?jobs ())
    | `Figure10 ->
      Printf.printf "%8s %12s %14s %12s %14s\n" "readers" "ASVM write"
        "ASVM upgrade" "XMM write" "XMM upgrade";
      List.iter
        (fun (n, aw, au, xw, xu) ->
          Printf.printf "%8d %12.2f %14.2f %12.2f %14.2f\n" n aw au xw xu)
        (Fault_micro.figure10 ?jobs ~readers:[ 1; 2; 4; 8; 16; 32; 64 ] ())
    | `Figure11 ->
      Printf.printf "%8s %14s %14s\n" "chain" "ASVM (ms)" "XMM (ms)";
      let chains = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
      let asvm, _ = Copy_chain.figure11 ?jobs ~mm:Config.Mm_asvm ~chains () in
      let xmm, _ = Copy_chain.figure11 ?jobs ~mm:Config.Mm_xmm ~chains () in
      List.iter2
        (fun (a : Copy_chain.result) (x : Copy_chain.result) ->
          Printf.printf "%8d %14.2f %14.2f\n" a.Copy_chain.chain
            a.Copy_chain.mean_fault_ms x.Copy_chain.mean_fault_ms)
        asvm xmm
    | `Table2 ->
      Printf.printf "%6s %10s %10s %10s %10s\n" "nodes" "ASVM wr" "XMM wr"
        "ASVM rd" "XMM rd";
      List.iter
        (fun (n, aw, xw, ar, xr) ->
          Printf.printf "%6d %10.2f %10.2f %10.2f %10.2f\n" n aw xw ar xr)
        (File_io.table2 ?jobs ~node_counts:[ 1; 2; 4; 8; 16; 32; 64 ] ())
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a whole table/figure as a batch of independent cells on the \
          parallel job pool.")
    Term.(const run $ experiment_term $ jobs_term)

let () =
  let doc = "ASVM multicomputer simulator (USENIX '96 reproduction)" in
  let info = Cmd.info "asvm-sim" ~version:"1.0.0" ~doc in
  match
    Cmd.eval ~catch:false
      (Cmd.group info
         [
           fault_cmd; chain_cmd; file_cmd; em3d_cmd; sor_cmd; serve_cmd;
           sweep_cmd; chaos_cmd;
         ])
  with
  | code -> exit code
  | exception Sys_error msg ->
    (* e.g. an unwritable --trace-out path *)
    Printf.eprintf "asvm-sim: %s\n" msg;
    exit 1
