(* Protocol monitoring: trace every ASVM message and ownership
   transition during a small coherence interaction — the system-level
   monitoring interface the paper's authors built for the Paragon.

   Run with:  dune exec examples/trace_demo.exe *)

module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Address_map = Asvm_machvm.Address_map
module Trace = Asvm_obs.Trace
module Metrics = Asvm_obs.Metrics

let () =
  let config = { (Config.default ~nodes:3) with trace_capacity = Some 64 } in
  let cl = Cluster.create config in
  let obj = Cluster.create_shared_object cl ~size_pages:2 ~sharers:[ 0; 1; 2 ] () in
  let task node =
    let t = Cluster.create_task cl ~node in
    Cluster.map cl ~task:t ~obj ~start:0 ~npages:2
      ~inherit_:Address_map.Inherit_share;
    t
  in
  let t0 = task 0 and t1 = task 1 and t2 = task 2 in
  let wr t v =
    Cluster.write_word cl ~task:t ~addr:0 ~value:v (fun () -> ());
    Cluster.run cl
  in
  let rd t =
    let r = ref 0 in
    Cluster.read_word cl ~task:t ~addr:0 (fun v -> r := v);
    Cluster.run cl;
    !r
  in
  wr t0 1;
  ignore (rd t1);
  ignore (rd t2);
  wr t1 2;
  (* one write fault: zero-grant; two read grants; one upgrade with two
     invalidations — all visible in the trace *)
  (match Cluster.trace cl with
  | Some trace ->
    Printf.printf "protocol trace (%d events total, showing buffer):\n\n"
      (Trace.emitted trace);
    Trace.dump Format.std_formatter trace;
    (* the same events are available as structured data: *)
    let ownership_changes =
      List.length
        (List.filter
           (fun (e : Trace.event) ->
             match e.kind with Trace.Ownership _ -> true | _ -> false)
           (Trace.events trace))
    in
    Printf.printf "\nownership transitions in buffer: %d\n" ownership_changes
  | None -> print_endline "tracing disabled");
  print_endline "\nmetric registry at end of run:";
  Metrics.pp_snapshot Format.std_formatter (Cluster.metrics_snapshot cl);
  Format.pp_print_flush Format.std_formatter ()
