#!/bin/sh
# CI entry point: build everything, run the test suites, and build the
# API docs when odoc is available. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build @all

echo "== dune runtest"
dune runtest

echo "== selfbench smoke (--quick, 2 jobs)"
# selfbench parses the file back through Asvm_obs.Json before exiting,
# so a zero exit already means well-formed JSON; re-check the schema
# tag here so a stale file can't satisfy this step
dune exec bench/main.exe -- --quick selfbench --jobs 2
test -s BENCH_selfbench.json
head -c 64 BENCH_selfbench.json | grep -q '"schema":"asvm.selfbench/v1"'

echo "== pagestore smoke (--quick)"
# the pagestore bench exits nonzero when the COW store is under 1.3x
# the eager baseline or the table2 cell pays as many materializations
# as snapshots, and parses the file back before exiting; re-check the
# schema tag and the sharing verdict on the file itself
dune exec bench/main.exe -- --quick pagestore
test -s BENCH_pagestore.json
head -c 64 BENCH_pagestore.json | grep -q '"schema":"asvm.pagestore/v1"'
grep -q '"cow_lt_snapshots":true' BENCH_pagestore.json

echo "== chaos smoke (--quick, 3 seeds)"
# the chaos experiment exits nonzero on any invariant violation, lost
# write or incomplete cell and validates its JSON by parsing it back;
# re-check the schema tag and the zero-violation verdict on the file
# itself
dune exec bench/main.exe -- --quick chaos --seeds 3
test -s BENCH_chaos.json
head -c 96 BENCH_chaos.json | grep -q '"schema":"asvm.chaos/v1"'
head -c 96 BENCH_chaos.json | grep -q '"total_violations":0'
grep -q '"lost_writes":0' BENCH_chaos.json

echo "== serve smoke (--quick, 2 jobs)"
# the serve bench exits nonzero when any cell fails to drain, reports
# out-of-order percentiles, an inexact shard merge, or an invariant
# violation in the chaos-composed cell, and parses the file back
# before exiting; re-check the schema tag, the percentile ordering
# verdict and the tail-percentile field on the file itself
dune exec bench/main.exe -- --quick serve --jobs 2
test -s BENCH_serve.json
head -c 64 BENCH_serve.json | grep -q '"schema":"asvm.serve/v1"'
grep -q '"percentiles_ordered":true' BENCH_serve.json
grep -q '"p999_ms"' BENCH_serve.json
if grep -q '"percentiles_ordered":false' BENCH_serve.json; then
  echo "serve: a cell reports unordered percentiles" >&2
  exit 1
fi

echo "== crash-soak smoke (--crash --quick)"
# rolling k-of-n whole-node crash/rejoin under every workload and both
# protocols (docs/AVAILABILITY.md); nonzero exit on any violation,
# lost write or incomplete cell
dune exec bin/asvm_sim.exe -- chaos --crash --quick --jobs 2

echo "== docs link check"
# every relative markdown link and every docs/*.md path mentioned in
# the sources must resolve to a file in the repository
for doc in README.md docs/*.md; do
  grep -o '](\([^)#]*\))' "$doc" 2>/dev/null | sed 's/^](//; s/)$//' |
  grep -v '^[a-z]*://' |
  while read -r target; do
    base="$(dirname "$doc")"
    if ! [ -e "$base/$target" ] && ! [ -e "$target" ]; then
      echo "broken link in $doc: $target" >&2
      exit 1
    fi
  done
done
grep -rho 'docs/[A-Z_]*\.md' lib bin bench --include='*.ml*' | sort -u |
while read -r target; do
  if ! [ -e "$target" ]; then
    echo "source code references missing doc: $target" >&2
    exit 1
  fi
done

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc"
  dune build @doc
else
  echo "== odoc not installed; skipping dune build @doc"
fi

echo "== ok"
