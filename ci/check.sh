#!/bin/sh
# CI entry point: build everything, run the test suites, and build the
# API docs when odoc is available. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build @all

echo "== dune runtest"
dune runtest

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc"
  dune build @doc
else
  echo "== odoc not installed; skipping dune build @doc"
fi

echo "== ok"
