(* Minimal ASCII chart renderer for the harness: plots (x, y) series on
   a character grid with per-series markers, linear or log-10 y axis. *)

type series = { label : string; marker : char; points : (float * float) list }

(* Empirical CDF of a sample list as a plottable series: x = value,
   y = cumulative percent <= x.  One point per order statistic (capped
   at [points], default 128, by even subsampling), so a latency tail
   renders faithfully without a thousand columns. *)
let cdf ?(points = 128) ~label ~marker samples =
  let a = Array.copy samples in
  Array.sort compare a;
  let n = Array.length a in
  let pts =
    if n = 0 then []
    else
      let m = min points n in
      List.init m (fun i ->
          (* even coverage of ranks 0..n-1, always including the max *)
          let rank = if m = 1 then n - 1 else i * (n - 1) / (m - 1) in
          (a.(rank), 100. *. float_of_int (rank + 1) /. float_of_int n))
  in
  { label; marker; points = pts }

let render ?(width = 64) ?(height = 16) ?(log_y = false) ~x_label ~y_label
    series =
  let all_points = List.concat_map (fun s -> s.points) series in
  let finite = List.filter (fun (_, y) -> Float.is_finite y) all_points in
  if finite = [] then "(no data)\n"
  else begin
    let xs = List.map fst finite and ys = List.map snd finite in
    let fold f = function [] -> 0. | h :: t -> List.fold_left f h t in
    let x_min = fold min xs and x_max = fold max xs in
    let y_raw_min = fold min ys and y_raw_max = fold max ys in
    let transform y = if log_y then log10 (max y 1e-9) else y in
    let y_min = transform y_raw_min and y_max = transform y_raw_max in
    let x_span = if x_max = x_min then 1. else x_max -. x_min in
    let y_span = if y_max = y_min then 1. else y_max -. y_min in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        List.iter
          (fun (x, y) ->
            if Float.is_finite y then begin
              let cx =
                int_of_float
                  ((x -. x_min) /. x_span *. float_of_int (width - 1))
              in
              let cy =
                int_of_float
                  ((transform y -. y_min) /. y_span *. float_of_int (height - 1))
              in
              let row = height - 1 - cy in
              if grid.(row).(cx) = ' ' then grid.(row).(cx) <- s.marker
              else if grid.(row).(cx) <> s.marker then grid.(row).(cx) <- '#'
            end)
          s.points)
      series;
    let buf = Buffer.create 2048 in
    let y_at row =
      let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
      let v = y_min +. (frac *. y_span) in
      if log_y then 10. ** v else v
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s\n" y_label (if log_y then " (log scale)" else ""));
    Array.iteri
      (fun row line ->
        let tick =
          if row = 0 || row = height - 1 || row = height / 2 then
            Printf.sprintf "%8.2f |" (y_at row)
          else Printf.sprintf "%8s |" ""
        in
        Buffer.add_string buf tick;
        Buffer.add_string buf (String.init width (fun i -> line.(i)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%8s  %-*s%*s   (x: %s)\n" ""
         (width / 2)
         (Printf.sprintf "%.5g" x_min)
         (width / 2)
         (Printf.sprintf "%.6g" x_max)
         x_label);
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "%9s%c = %s\n" "" s.marker s.label))
      series;
    Buffer.contents buf
  end
