(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (section 4) and the DESIGN.md ablations, printing
   simulated results next to the published numbers.

   Run everything:      dune exec bench/main.exe
   One experiment:      dune exec bench/main.exe -- table1
   Quick mode:          dune exec bench/main.exe -- --quick table3
   Parallel cells:      dune exec bench/main.exe -- table3 --jobs 4
   Harness speed:       dune exec bench/main.exe -- selfbench
   Page-store bench:    dune exec bench/main.exe -- pagestore
   Chaos soak:          dune exec bench/main.exe -- chaos --seeds 10
   Serving SLO bench:   dune exec bench/main.exe -- serve
   Microbenchmarks:     dune exec bench/main.exe -- bechamel *)

module Config = Asvm_cluster.Config
module Fault_micro = Asvm_workloads.Fault_micro
module Copy_chain = Asvm_workloads.Copy_chain
module File_io = Asvm_workloads.File_io
module Em3d = Asvm_workloads.Em3d
module Stats = Asvm_simcore.Stats
module Metrics = Asvm_obs.Metrics
module Runner = Asvm_runner.Runner
module Json = Asvm_obs.Json

let pf = Format.printf

let header title =
  pf "@.=== %s ===@." title

let rule () = pf "%s@." (String.make 78 '-')

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

let table1 ?jobs () =
  header "Table 1: page-fault latencies (ms) -- measured vs paper";
  let rows = Fault_micro.table1 ?jobs () in
  pf "%-52s %8s %8s | %8s %8s@." "fault type" "ASVM" "XMM" "ASVM'96" "XMM'96";
  rule ();
  List.iter2
    (fun (label, asvm, xmm) (_, pa, px) ->
      pf "%-52s %8.2f %8.2f | %8.2f %8.2f@." label asvm xmm pa px)
    rows Paper.table1;
  rule ()

(* With --metrics: the message-count columns of Table 1, read off the
   metric registry rather than eyeballed from traces. The paper's
   claim: an ASVM remote ownership transfer takes 3 messages (1 with
   contents); the same operation under XMM takes 5 (2 with contents). *)
let table1_messages () =
  header "Table 1 message counts (per measured fault, from the metric registry)";
  let rows =
    [
      Fault_micro.Write_fault { read_copies = 1 };
      Fault_micro.Write_fault { read_copies = 2 };
      Fault_micro.Write_upgrade { read_copies = 2 };
      Fault_micro.Read_fault { nth_reader = 1 };
      Fault_micro.Read_fault { nth_reader = 2 };
    ]
  in
  let count mm kind =
    let r = Fault_micro.measure_instrumented ~mm kind in
    let name =
      match mm with
      | Config.Mm_asvm -> "asvm.msgs.ownership_transfer"
      | Config.Mm_xmm -> "xmm.msgs.ownership_transfer"
    in
    let wire ls = List.assoc_opt "contents" ls = Some "wire" in
    ( Metrics.counter_total r.Fault_micro.fault_metrics name,
      Metrics.counter_total ~where:wire r.Fault_micro.fault_metrics name )
  in
  pf "%-52s %12s %12s@." "fault type" "ASVM" "XMM";
  pf "%-52s %12s %12s@." "" "msgs (wire)" "msgs (wire)";
  rule ();
  List.iter
    (fun kind ->
      let am, aw = count Config.Mm_asvm kind in
      let xm, xw = count Config.Mm_xmm kind in
      pf "%-52s %8d (%d) %8d (%d)@." (Fault_micro.describe kind) am aw xm xw)
    rows;
  rule ();
  pf "Paper section 3.3: write-access transfer is 3 messages / 1 with@.";
  pf "contents under ASVM, 5 / 2 under the XMM baseline.@."

(* ------------------------------------------------------------------ *)
(* Figure 10                                                          *)
(* ------------------------------------------------------------------ *)

let figure10 ?jobs () =
  header
    "Figure 10: write-fault latency (ms) vs number of nodes with read copies";
  let readers = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let pts = Fault_micro.figure10 ?jobs ~readers () in
  pf "%8s %12s %14s %12s %14s@." "readers" "ASVM write" "ASVM upgrade"
    "XMM write" "XMM upgrade";
  rule ();
  List.iter
    (fun (n, aw, au, xw, xu) ->
      let cell v = if Float.is_nan v then "      -" else Printf.sprintf "%7.2f" v in
      pf "%8d %12s %14s %12s %14s@." n (cell aw) (cell au) (cell xw) (cell xu))
    pts;
  rule ();
  let pick f = List.map (fun p -> let n, _, _, _, _ = p in (float_of_int n, f p)) pts in
  pf "%s@."
    (Ascii_plot.render ~x_label:"read copies" ~y_label:"latency (ms)"
       [
         {
           Ascii_plot.label = "ASVM write fault";
           marker = 'a';
           points = pick (fun (_, aw, _, _, _) -> aw);
         };
         {
           Ascii_plot.label = "ASVM write upgrade";
           marker = 'A';
           points = pick (fun (_, _, au, _, _) -> au);
         };
         {
           Ascii_plot.label = "XMM write fault";
           marker = 'x';
           points = pick (fun (_, _, _, xw, _) -> xw);
         };
         {
           Ascii_plot.label = "XMM write upgrade";
           marker = 'X';
           points = pick (fun (_, _, _, _, xu) -> xu);
         };
       ]);
  pf "Paper: ASVM grows ~0.1 ms/reader; XMM ~1 ms/reader (72.18 ms at 64).@."

(* ------------------------------------------------------------------ *)
(* Figure 11                                                          *)
(* ------------------------------------------------------------------ *)

let figure11 ?jobs () =
  header "Figure 11: inherited-memory fault latency vs copy-chain length";
  let chains = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let asvm, (alb, ala) = Copy_chain.figure11 ?jobs ~mm:Config.Mm_asvm ~chains () in
  let xmm, (xlb, xla) = Copy_chain.figure11 ?jobs ~mm:Config.Mm_xmm ~chains () in
  pf "%8s %14s %14s@." "chain" "ASVM (ms)" "XMM (ms)";
  rule ();
  List.iter2
    (fun (a : Copy_chain.result) (x : Copy_chain.result) ->
      pf "%8d %14.2f %14.2f@." a.chain a.mean_fault_ms x.mean_fault_ms)
    asvm xmm;
  rule ();
  pf "%s@."
    (Ascii_plot.render ~x_label:"copy-chain length" ~y_label:"fault latency (ms)"
       [
         {
           Ascii_plot.label = "ASVM";
           marker = 'a';
           points =
             List.map
               (fun (r : Copy_chain.result) ->
                 (float_of_int r.chain, r.mean_fault_ms))
               asvm;
         };
         {
           Ascii_plot.label = "XMM";
           marker = 'x';
           points =
             List.map
               (fun (r : Copy_chain.result) ->
                 (float_of_int r.chain, r.mean_fault_ms))
               xmm;
         };
       ]);
  let plb_a, pla_a = Paper.fig11_asvm and plb_x, pla_x = Paper.fig11_xmm in
  pf "Fit lb + n*la:  ASVM lb=%.2f la=%.2f (paper %.1f/%.2f)   XMM lb=%.2f la=%.2f (paper %.1f/%.1f)@."
    alb ala plb_a pla_a xlb xla plb_x pla_x

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

let table2 ?jobs () =
  header "Table 2: mapped-file transfer rates (MB/s per node) -- 4 MB file";
  let counts = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let rows = File_io.table2 ?jobs ~node_counts:counts () in
  pf "%6s | %10s %10s %10s %10s | %s@." "nodes" "ASVM wr" "XMM wr" "ASVM rd"
    "XMM rd" "paper (aw/xw/ar/xr)";
  rule ();
  List.iter2
    (fun (n, aw, xw, ar, xr) (_, paw, pxw, par, pxr) ->
      pf "%6d | %10.2f %10.2f %10.2f %10.2f | %.2f/%.2f/%.2f/%.2f@." n aw xw ar
        xr paw pxw par pxr)
    rows Paper.table2;
  rule ();
  let series f = List.map (fun r -> let n, _, _, _, _ = r in (float_of_int n, f r)) rows in
  pf "Figure 13 (writes) and Figure 12 (reads), per-node MB/s vs nodes:@.";
  pf "%s@."
    (Ascii_plot.render ~log_y:true ~x_label:"nodes" ~y_label:"MB/s per node"
       [
         {
           Ascii_plot.label = "ASVM write";
           marker = 'w';
           points = series (fun (_, aw, _, _, _) -> aw);
         };
         {
           Ascii_plot.label = "XMM write";
           marker = 'v';
           points = series (fun (_, _, xw, _, _) -> xw);
         };
         {
           Ascii_plot.label = "ASVM read";
           marker = 'r';
           points = series (fun (_, _, _, ar, _) -> ar);
         };
         {
           Ascii_plot.label = "XMM read";
           marker = 's';
           points = series (fun (_, _, _, _, xr) -> xr);
         };
       ])

(* ------------------------------------------------------------------ *)
(* Table 3                                                            *)
(* ------------------------------------------------------------------ *)

let memory_pages_16mb = Asvm_machvm.Vm_config.default.memory_pages

let table3 ~iterations ?jobs () =
  header
    (Printf.sprintf
       "Table 3: EM3D execution times (seconds, %d iterations scaled to 100)"
       iterations);
  let scale = 100. /. float_of_int iterations in
  let cell_config ~mm ~cells ~nodes =
    if nodes = 1 then
      (* sequential runs used a large-memory node (the paper's footnote) *)
      Some (mm, Some (Em3d.data_pages ~cells + 64),
            { (Em3d.default_params ~cells ~nodes) with iterations })
    else if not (Em3d.fits ~cells ~nodes ~memory_pages_per_node:memory_pages_16mb)
    then None
    else Some (mm, None, { (Em3d.default_params ~cells ~nodes) with iterations })
  in
  (* flatten every fitting (cells, nodes, mm) cell of the table into one
     batch for the pool; non-fitting cells stay "**" and never run *)
  let keyed =
    List.concat_map
      (fun (cells, paper_rows) ->
        List.concat_map
          (fun (nodes, _, _) ->
            List.filter_map
              (fun mm ->
                Option.map
                  (fun cfg -> ((cells, nodes, mm), cfg))
                  (cell_config ~mm ~cells ~nodes))
              [ Config.Mm_asvm; Config.Mm_xmm ])
          paper_rows)
      Paper.table3
  in
  let results = Em3d.sweep ?jobs (List.map snd keyed) in
  let seconds = Hashtbl.create 64 in
  List.iter2
    (fun (key, _) (r : Em3d.result) ->
      Hashtbl.replace seconds key (r.seconds *. scale))
    keyed results;
  List.iter
    (fun (cells, paper_rows) ->
      pf "@.EM3D %d cells%s@." cells
        (if cells >= 64000 then "  (** = data set exceeds combined memory)"
         else "");
      pf "%6s | %12s %12s | %12s %12s@." "nodes" "ASVM" "XMM" "ASVM'96" "XMM'96";
      rule ();
      List.iter
        (fun (nodes, pa, px) ->
          let cell = function
            | Some s -> Printf.sprintf "%10.1f" s
            | None -> "        **"
          in
          let ours mm = Hashtbl.find_opt seconds (cells, nodes, mm) in
          pf "%6d | %12s %12s | %12s %12s@." nodes
            (cell (ours Config.Mm_asvm))
            (cell (ours Config.Mm_xmm))
            (cell pa) (cell px))
        paper_rows;
      rule ())
    Paper.table3

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md A1-A3)                                        *)
(* ------------------------------------------------------------------ *)

let ablation_forwarding () =
  header
    "Ablation A1: forwarding strategies (ownership migrating around 24 nodes)";
  let measure ~forwarding =
    (* ownership of one hot page ping-pongs around the machine; nodes
       that were invalidated hold a dynamic hint pointing straight at
       the new owner, which static forwarding cannot exploit *)
    let nodes = 24 in
    let config = Config.default ~nodes in
    let config = { config with asvm = { config.asvm with forwarding } } in
    let cl = Asvm_cluster.Cluster.create config in
    let sharers = List.init nodes Fun.id in
    let obj =
      Asvm_cluster.Cluster.create_shared_object cl ~size_pages:4 ~sharers
        ~forwarding ()
    in
    let tasks =
      Array.init nodes (fun node ->
          let t = Asvm_cluster.Cluster.create_task cl ~node in
          Asvm_cluster.Cluster.map cl ~task:t ~obj ~start:0 ~npages:4
            ~inherit_:Asvm_machvm.Address_map.Inherit_share;
          t)
    in
    let sync op =
      let ok = ref false in
      op (fun () -> ok := true);
      Asvm_cluster.Cluster.run cl;
      assert !ok
    in
    let tally = Stats.Tally.create () in
    let rounds = 40 in
    for r = 0 to rounds - 1 do
      let writer = tasks.((r * 7) mod nodes) in
      let reader = tasks.(((r * 7) + 3) mod nodes) in
      let t0 = Asvm_cluster.Cluster.now cl in
      sync (fun k ->
          Asvm_cluster.Cluster.touch cl ~task:reader ~vpage:0
            ~want:Asvm_machvm.Prot.Read_only k);
      sync (fun k ->
          Asvm_cluster.Cluster.touch cl ~task:writer ~vpage:0
            ~want:Asvm_machvm.Prot.Read_write k);
      Stats.Tally.add tally (Asvm_cluster.Cluster.now cl -. t0)
    done;
    let msgs = Asvm_cluster.Cluster.protocol_messages cl in
    (Stats.Tally.mean tally, msgs)
  in
  pf "%-24s %20s %16s@." "forwarding" "per-round mean (ms)" "total messages";
  rule ();
  List.iter
    (fun (label, fwd) ->
      let latency, msgs = measure ~forwarding:fwd in
      pf "%-24s %20.2f %16d@." label latency msgs)
    [
      ("dynamic+static+global", { Asvm_core.Asvm.dynamic = true; static = true });
      ("static+global", { Asvm_core.Asvm.dynamic = false; static = true });
      ("dynamic+global", { Asvm_core.Asvm.dynamic = true; static = false });
      ("global only", { Asvm_core.Asvm.dynamic = false; static = false });
    ];
  rule ();
  pf "Any hint layer beats global-only (every miss becomes a ring sweep,@.";
  pf "3-4x the messages). With ownership migrating every round, dynamic@.";
  pf "hints are often one transfer stale and cost an extra forward over@.";
  pf "the static manager's serialized view — why ASVM backs dynamic with@.";
  pf "static rather than relying on either alone (paper 3.4).@."

let ablation_paging ~iterations () =
  header
    "Ablation A2: internode paging on/off (EM3D 256k cells, 8 nodes, tight \
     memory)";
  (* per-node memory covers the node's own pages but not its boundary
     windows: every iteration evicts, so where evicted pages go matters *)
  let cells = 256_000 in
  let memory_pages = (Em3d.data_pages ~cells / 8) + 8 in
  let run ~internode_paging =
    let r =
      Em3d.run ~mm:Config.Mm_asvm ~internode_paging ~memory_pages
        {
          (Em3d.default_params ~cells ~nodes:8) with
          iterations = max 5 (iterations / 10);
        }
    in
    r.seconds
  in
  let on = run ~internode_paging:true in
  let off = run ~internode_paging:false in
  pf "internode paging ON : %8.1f s   (evicted pages move to other nodes)@." on;
  pf "internode paging OFF: %8.1f s   (evictions fall through to the disk)@."
    off;
  rule ()

let ablation_readerlist () =
  header "Ablation A3: reader-list balancing via ownership hand-off";
  (* one page read by many nodes; evicting the owner hands ownership to
     a reader without moving contents (paper section 5, Scalability) *)
  let nodes = 16 in
  let cl = Asvm_cluster.Cluster.create (Config.default ~nodes) in
  let sharers = List.init nodes Fun.id in
  let obj =
    Asvm_cluster.Cluster.create_shared_object cl ~size_pages:2 ~sharers ()
  in
  let tasks =
    Array.init nodes (fun node ->
        let t = Asvm_cluster.Cluster.create_task cl ~node in
        Asvm_cluster.Cluster.map cl ~task:t ~obj ~start:0 ~npages:2
          ~inherit_:Asvm_machvm.Address_map.Inherit_share;
        t)
  in
  let sync op =
    let ok = ref false in
    op (fun () -> ok := true);
    Asvm_cluster.Cluster.run cl;
    assert !ok
  in
  sync (fun k ->
      Asvm_cluster.Cluster.write_word cl ~task:tasks.(0) ~addr:0 ~value:1 k);
  for n = 1 to nodes - 1 do
    sync (fun k ->
        Asvm_cluster.Cluster.touch cl ~task:tasks.(n) ~vpage:0
          ~want:Asvm_machvm.Prot.Read_only k)
  done;
  let a =
    match Asvm_cluster.Cluster.backend cl with
    | `Asvm a -> a
    | `Xmm _ -> assert false
  in
  let owner_before =
    List.find
      (fun n -> Asvm_core.Asvm.is_owner a ~node:n ~obj ~page:0)
      (List.init nodes Fun.id)
  in
  (* evict the page at the owner: ownership must migrate to a reader
     with no page transfer *)
  let vm = Asvm_cluster.Cluster.node_vm cl owner_before in
  ignore (Asvm_machvm.Vm.evict_one vm);
  Asvm_cluster.Cluster.run cl;
  let owner_after =
    List.find_opt
      (fun n -> Asvm_core.Asvm.is_owner a ~node:n ~obj ~page:0)
      (List.init nodes Fun.id)
  in
  let c = Asvm_core.Asvm.counters a in
  pf "owner before eviction: node %d@." owner_before;
  (match owner_after with
  | Some n -> pf "owner after eviction : node %d (reader hand-off)@." n
  | None -> pf "owner after eviction : none (page at pager)@.");
  pf "reader hand-offs: %d, page transfers: %d, pager write-backs: %d@."
    (Stats.Counters.get c "pageout.reader_handoffs")
    (Stats.Counters.get c "pageout.internode")
    (Stats.Counters.get c "pageout.to_pager");
  rule ()

let ablation_memory () =
  header
    "Ablation A5: manager memory footprint (design rule 'limited memory \
     requirements')";
  (* a large, sparsely used shared object: XMM's manager pays for every
     page on every node; ASVM pays only for what is resident *)
  let nodes = 32 in
  let pages = 4096 (* a 32 MB object *) in
  let touched = 64 in
  let run mm =
    let cl = Asvm_cluster.Cluster.create (Config.with_mm (Config.default ~nodes) mm) in
    let sharers = List.init nodes Fun.id in
    let obj =
      Asvm_cluster.Cluster.create_shared_object cl ~size_pages:pages ~sharers ()
    in
    let tasks =
      Array.init nodes (fun node ->
          let t = Asvm_cluster.Cluster.create_task cl ~node in
          Asvm_cluster.Cluster.map cl ~task:t ~obj ~start:0 ~npages:pages
            ~inherit_:Asvm_machvm.Address_map.Inherit_share;
          t)
    in
    (* each node touches a small disjoint slice *)
    let pending = ref 0 in
    Array.iteri
      (fun n task ->
        for j = 0 to (touched / nodes) - 1 do
          incr pending;
          Asvm_cluster.Cluster.write_word cl ~task
            ~addr:(((n * (touched / nodes)) + j) * 16)
            ~value:1
            (fun () -> decr pending)
        done)
      tasks;
    Asvm_cluster.Cluster.run cl;
    assert (!pending = 0);
    match Asvm_cluster.Cluster.backend cl with
    | `Asvm a ->
      let per_node =
        List.map (fun n -> Asvm_core.Asvm.state_bytes a ~node:n ~obj) sharers
      in
      let total = List.fold_left ( + ) 0 per_node in
      let mx = List.fold_left max 0 per_node in
      (total, mx)
    | `Xmm x ->
      let total = Asvm_xmm.Xmm.state_bytes x ~obj in
      (total, total)
  in
  let asvm_total, asvm_max = run Config.Mm_asvm in
  let xmm_total, xmm_max = run Config.Mm_xmm in
  pf "32 MB object (4096 pages) shared by 32 nodes, 64 pages actually used:@.";
  pf "  XMM  centralized manager : %7d bytes total, %7d on one node@."
    xmm_total xmm_max;
  pf "  ASVM distributed state   : %7d bytes total, %7d max per node@."
    asvm_total asvm_max;
  rule ();
  pf "XMM's matrix costs pages x nodes regardless of use (the paper's@.";
  pf "crash scenario for large sparse address spaces); ASVM's state is@.";
  pf "tied to resident pages plus bounded hint caches.@."

let ablation_striping () =
  header
    "Ablation A4 (section 6 extension): file striping over multiple pagers";
  pf "%8s %14s %14s@." "stripes" "write MB/s" "read MB/s";
  rule ();
  List.iter
    (fun stripes ->
      let w =
        (File_io.write_test ~mm:Config.Mm_asvm ~nodes:16 ~file_mb:4 ~stripes ())
          .File_io.per_node_mb_s
      in
      let r =
        (File_io.read_test ~mm:Config.Mm_asvm ~nodes:16 ~file_mb:4 ~stripes ())
          .File_io.per_node_mb_s
      in
      pf "%8d %14.2f %14.2f@." stripes w r)
    [ 1; 2; 4; 8 ];
  rule ();
  pf "One pager is the write ceiling of Table 2; striping the file over@.";
  pf "several I/O nodes raises it — the PFS/UFS merger of section 6.@."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  header "Bechamel microbenchmarks (wall-clock cost of the simulator itself)";
  let open Bechamel in
  let open Toolkit in
  let stage f = Staged.stage f in
  let tests =
    Test.make_grouped ~name:"asvm"
      [
        Test.make ~name:"event_queue/1k add+pop"
          (stage (fun () ->
               let q = Asvm_simcore.Event_queue.create () in
               for i = 0 to 999 do
                 Asvm_simcore.Event_queue.add q
                   ~time:(float_of_int ((i * 7919) mod 1000))
                   ~seq:i ignore
               done;
               while Asvm_simcore.Event_queue.pop q <> None do
                 ()
               done));
        Test.make ~name:"hint_cache/1k put+find"
          (stage (fun () ->
               let c = Asvm_core.Hint_cache.create ~capacity:256 in
               for i = 0 to 999 do
                 Asvm_core.Hint_cache.put c ~page:(i mod 512) i;
                 ignore (Asvm_core.Hint_cache.find c ~page:(i mod 512))
               done));
        Test.make ~name:"table1/one ASVM write fault"
          (stage (fun () ->
               ignore
                 (Fault_micro.measure ~nodes:8 ~mm:Config.Mm_asvm
                    (Fault_micro.Write_fault { read_copies = 2 }))));
        Test.make ~name:"figure10/one upgrade fault"
          (stage (fun () ->
               ignore
                 (Fault_micro.measure ~nodes:8 ~mm:Config.Mm_asvm
                    (Fault_micro.Write_upgrade { read_copies = 2 }))));
        Test.make ~name:"figure11/chain of 3"
          (stage (fun () ->
               ignore
                 (Copy_chain.measure ~mm:Config.Mm_asvm ~chain:3 ~pages:4 ())));
        Test.make ~name:"table2/4-node 1MB file read"
          (stage (fun () ->
               ignore
                 (File_io.read_test ~mm:Config.Mm_asvm ~nodes:4 ~file_mb:1 ())));
        Test.make ~name:"table3/small EM3D"
          (stage (fun () ->
               ignore
                 (Em3d.run ~mm:Config.Mm_asvm
                    { cells = 8000; nodes = 4; iterations = 5; seed = 7 })));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> pf "no results@."
  | Some per_test ->
    let rows =
      Hashtbl.fold (fun name o acc -> (name, o) :: acc) per_test []
      |> List.sort compare
    in
    pf "%-44s %16s@." "benchmark" "time/run";
    rule ();
    List.iter
      (fun (name, o) ->
        match Analyze.OLS.estimates o with
        | Some (ns :: _) ->
          if ns > 1e6 then pf "%-44s %13.3f ms@." name (ns /. 1e6)
          else if ns > 1e3 then pf "%-44s %13.3f us@." name (ns /. 1e3)
          else pf "%-44s %13.1f ns@." name ns
        | Some [] | None -> pf "%-44s %16s@." name "n/a")
      rows);
  rule ()

(* ------------------------------------------------------------------ *)
(* Selfbench: wall-clock speed of the harness itself                  *)
(* ------------------------------------------------------------------ *)

(* How fast does the simulator regenerate the paper's numbers?  A fixed
   batch of representative cells (one per table/figure family) runs
   once sequentially and once on the pool; per-cell wall clock, total
   events/second (off the engine.events gauge each cell's snapshot
   carries) and the speedup go to stdout and BENCH_selfbench.json.
   Wall clock is Unix.gettimeofday: Sys.time sums CPU across domains
   and would hide any parallel speedup. *)

let selfbench_cells ~quick =
  let em3d_cells = if quick then 8_000 else 32_000 in
  let em3d_iters = if quick then 3 else 10 in
  let file_mb = if quick then 1 else 4 in
  let chain = if quick then 4 else 8 in
  let fault label mm kind =
    ( label,
      fun () ->
        (Fault_micro.measure_instrumented ~mm kind).Fault_micro.run_metrics )
  in
  let em3d label mm =
    ( label,
      fun () ->
        (Em3d.run ~mm
           {
             (Em3d.default_params ~cells:em3d_cells ~nodes:8) with
             iterations = em3d_iters;
           })
          .Em3d.metrics )
  in
  [
    fault "table1/asvm_write_fault" Config.Mm_asvm
      (Fault_micro.Write_fault { read_copies = 2 });
    fault "table1/xmm_write_fault" Config.Mm_xmm
      (Fault_micro.Write_fault { read_copies = 2 });
    fault "table1/asvm_read_fault" Config.Mm_asvm
      (Fault_micro.Read_fault { nth_reader = 2 });
    fault "table1/xmm_read_fault" Config.Mm_xmm
      (Fault_micro.Read_fault { nth_reader = 2 });
    ( "figure11/asvm_chain",
      fun () ->
        (Copy_chain.measure ~mm:Config.Mm_asvm ~chain ()).Copy_chain.metrics );
    ( "figure11/xmm_chain",
      fun () ->
        (Copy_chain.measure ~mm:Config.Mm_xmm ~chain ()).Copy_chain.metrics );
    ( "table2/asvm_read_16",
      fun () ->
        (File_io.read_test ~mm:Config.Mm_asvm ~nodes:16 ~file_mb ())
          .File_io.metrics );
    ( "table2/xmm_write_16",
      fun () ->
        (File_io.write_test ~mm:Config.Mm_xmm ~nodes:16 ~file_mb ())
          .File_io.metrics );
    em3d "table3/asvm_em3d" Config.Mm_asvm;
    em3d "table3/xmm_em3d" Config.Mm_xmm;
  ]

let engine_events snap =
  match Metrics.find snap "engine.events" [] with
  | Some (Metrics.Gauge_v v) -> int_of_float v
  | _ -> 0

(* Per-cell allocation accounting rides along with the wall clock:
   [Gc.quick_stat] counters are domain-local in OCaml 5 and each cell
   runs entirely inside one pool domain, so the deltas isolate the
   cell. minor/promoted words per event is the tracked number — it is
   host-independent, unlike wall clock. *)
type selfbench_row = {
  sb_name : string;
  sb_events : int;
  sb_wall : float;
  sb_minor : float;  (* minor words allocated by the cell *)
  sb_promoted : float;
}

let selfbench_run ~jobs cells =
  let t0 = Unix.gettimeofday () in
  let rows =
    Runner.run ~jobs
      (List.map
         (fun (name, f) () ->
           let c0 = Unix.gettimeofday () in
           (* Gc.minor_words reads the allocation pointer exactly;
              quick_stat's copy lags until the next minor collection *)
           let m0 = Gc.minor_words () in
           let g0 = Gc.quick_stat () in
           let snap = f () in
           let g1 = Gc.quick_stat () in
           {
             sb_name = name;
             sb_events = engine_events snap;
             sb_wall = Unix.gettimeofday () -. c0;
             sb_minor = Gc.minor_words () -. m0;
             sb_promoted = g1.Gc.promoted_words -. g0.Gc.promoted_words;
           })
         cells)
  in
  (Unix.gettimeofday () -. t0, rows)

let selfbench ~quick ?jobs () =
  header "Selfbench: harness wall-clock speed, sequential vs parallel";
  let cells = selfbench_cells ~quick in
  let jobs = match jobs with Some j -> j | None -> Runner.default_jobs () in
  let seq_wall, seq_rows = selfbench_run ~jobs:1 cells in
  let par_wall, par_rows = selfbench_run ~jobs cells in
  let events rows = List.fold_left (fun acc r -> acc + r.sb_events) 0 rows in
  let total_events = events seq_rows in
  (* a free determinism check: both runs simulated the same events *)
  if events par_rows <> total_events then
    failwith "selfbench: parallel run simulated a different event count";
  let rate wall = float_of_int total_events /. wall in
  pf "%-28s %12s %12s %14s %12s@." "cell" "events" "wall (s)" "minor w/ev"
    "promoted w/ev";
  rule ();
  List.iter
    (fun r ->
      let per v = if r.sb_events > 0 then v /. float_of_int r.sb_events else 0. in
      pf "%-28s %12d %12.3f %14.1f %12.2f@." r.sb_name r.sb_events r.sb_wall
        (per r.sb_minor) (per r.sb_promoted))
    seq_rows;
  rule ();
  let cores = Runner.default_jobs () in
  let speedup = seq_wall /. par_wall in
  pf "sequential (jobs=1): %8.3f s   %12.0f events/s@." seq_wall
    (rate seq_wall);
  pf "parallel   (jobs=%d): %8.3f s   %12.0f events/s@." jobs par_wall
    (rate par_wall);
  pf "speedup %.2fx with %d jobs (%d recommended domains on this host)@."
    speedup jobs cores;
  let cell_json r =
    Json.Obj
      [
        ("name", Json.String r.sb_name);
        ("events", Json.Int r.sb_events);
        ("wall_s", Json.Float r.sb_wall);
        ("minor_words", Json.Float r.sb_minor);
        ("promoted_words", Json.Float r.sb_promoted);
        ( "minor_words_per_event",
          Json.Float
            (if r.sb_events > 0 then r.sb_minor /. float_of_int r.sb_events
             else 0.) );
      ]
  in
  let run_json ~jobs ~wall rows =
    Json.Obj
      [
        ("jobs", Json.Int jobs);
        ("wall_s", Json.Float wall);
        ("events_per_s", Json.Float (rate wall));
        ("cells", Json.List (List.map cell_json rows));
      ]
  in
  let json =
    Json.Obj
      [
        ("schema", Json.String "asvm.selfbench/v1");
        ("quick", Json.Bool quick);
        ("cores", Json.Int cores);
        ("total_events", Json.Int total_events);
        ("sequential", run_json ~jobs:1 ~wall:seq_wall seq_rows);
        ("parallel", run_json ~jobs ~wall:par_wall par_rows);
        ("speedup", Json.Float speedup);
      ]
  in
  let oc = open_out "BENCH_selfbench.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  (* read it back: a zero exit certifies the file is well-formed JSON *)
  let ic = open_in "BENCH_selfbench.json" in
  let contents = In_channel.input_all ic in
  close_in ic;
  (match Json.of_string (String.trim contents) with
  | Ok _ -> ()
  | Error e -> failwith ("selfbench: BENCH_selfbench.json is invalid: " ^ e));
  pf "wrote BENCH_selfbench.json@."

(* ------------------------------------------------------------------ *)
(* Pagestore microbench (BENCH_pagestore.json)                        *)
(* ------------------------------------------------------------------ *)

(* Eager-vs-COW on the snapshot-heavy pattern the simulator actually
   executes: pages are transferred (snapshotted) and audited
   (checksummed) far more often than they are written afterwards. The
   eager baseline re-implements the pre-COW page store — a plain int
   array, a full word copy per transfer, a full checksum per audit —
   so the speedup is the cost this PR removed. A second section runs
   the Table 2 read-sharing workload and reads the contents.* counters
   off its registry snapshot: COW only pays off if materializations
   stay well below snapshots on real protocol traffic. *)

let eager_checksum a =
  let acc = ref (Array.length a) in
  for i = 0 to Array.length a - 1 do
    acc := (!acc * 1000003) lxor a.(i)
  done;
  !acc

let pagestore ~quick () =
  let module C = Asvm_machvm.Contents in
  header "pagestore: eager deep-copy vs COW page snapshots";
  let words = 1024 (* the 8 KB page at 8-byte words *) in
  let pages = if quick then 32 else 128 in
  let snaps = if quick then 64 else 256 in
  let audits = 2 in
  let reps = if quick then 3 else 5 in
  (* the two implementations must agree on the page image *)
  let probe = C.zero ~words in
  C.set probe 0 42;
  let probe_eager = Array.make words 0 in
  probe_eager.(0) <- 42;
  if C.checksum probe <> eager_checksum probe_eager then
    failwith "pagestore: eager and COW checksums disagree";
  let sink = ref 0 in
  let eager_round () =
    for _p = 1 to pages do
      let src = Array.make words 0 in
      src.(0) <- 42;
      src.(words - 1) <- 7;
      for _s = 1 to snaps do
        let snap = Array.copy src in
        for _a = 1 to audits do
          sink := !sink lxor eager_checksum snap
        done
      done;
      (* writer mutates after the transfers went out *)
      src.(1) <- 9
    done
  in
  let cow_round () =
    for _p = 1 to pages do
      let src = C.zero ~words in
      C.set src 0 42;
      C.set src (words - 1) 7;
      for _s = 1 to snaps do
        let snap = C.snapshot src in
        for _a = 1 to audits do
          sink := !sink lxor C.checksum snap
        done
      done;
      C.set src 1 9
    done
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  let eager_s = time eager_round in
  let cow_s = time cow_round in
  let speedup = eager_s /. cow_s in
  let transfers = pages * snaps * reps in
  pf "%d pages x %d snapshots x %d audits, %d reps (%d transfers):@." pages
    snaps audits reps transfers;
  pf "  eager (copy + full checksum): %10.4f s@." eager_s;
  pf "  COW   (alias + memoized sum): %10.4f s@." cow_s;
  pf "  speedup: %.2fx@." speedup;
  (* Table 2 sharing workload: many nodes read one file through the
     pager; transfers are all snapshots, writes are rare *)
  let nodes = if quick then 4 else 16 in
  let r = File_io.read_test ~mm:Config.Mm_asvm ~nodes ~file_mb:1 () in
  let total name = Metrics.counter_total r.File_io.metrics name in
  let t2_snapshots = total "contents.snapshots" in
  let t2_cow = total "contents.cow_materializations" in
  let t2_hits = total "contents.checksum_cache_hits" in
  rule ();
  pf "table2 read sharing (%d nodes, 1 MB file), contents.* counters:@." nodes;
  pf "  snapshots: %d   cow_materializations: %d   checksum_cache_hits: %d@."
    t2_snapshots t2_cow t2_hits;
  let json =
    Json.Obj
      [
        ("schema", Json.String "asvm.pagestore/v1");
        ("quick", Json.Bool quick);
        ("words", Json.Int words);
        ("pages", Json.Int pages);
        ("snapshots_per_page", Json.Int snaps);
        ("audits_per_snapshot", Json.Int audits);
        ("reps", Json.Int reps);
        ("eager_s", Json.Float eager_s);
        ("cow_s", Json.Float cow_s);
        ("speedup", Json.Float speedup);
        ( "table2",
          Json.Obj
            [
              ("nodes", Json.Int nodes);
              ("snapshots", Json.Int t2_snapshots);
              ("cow_materializations", Json.Int t2_cow);
              ("checksum_cache_hits", Json.Int t2_hits);
              ("cow_lt_snapshots", Json.Bool (t2_cow < t2_snapshots));
            ] );
      ]
  in
  let oc = open_out "BENCH_pagestore.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  (* read it back: a zero exit certifies the file is well-formed JSON *)
  let ic = open_in "BENCH_pagestore.json" in
  let contents = In_channel.input_all ic in
  close_in ic;
  (match Json.of_string (String.trim contents) with
  | Ok _ -> ()
  | Error e -> failwith ("pagestore: BENCH_pagestore.json is invalid: " ^ e));
  pf "wrote BENCH_pagestore.json@.";
  if speedup < 1.3 then
    failwith
      (Printf.sprintf "pagestore: COW speedup %.2fx below the 1.3x floor"
         speedup);
  if t2_cow >= t2_snapshots then
    failwith
      "pagestore: cow_materializations not below snapshots on the table2 \
       sharing workload"

(* ------------------------------------------------------------------ *)
(* Chaos soak (BENCH_chaos.json)                                      *)
(* ------------------------------------------------------------------ *)

(* Every workload under seeded fault plans with invariant checks after
   quiesce, the zero-fault cost of the reliable-STS layer, and the
   rolling k-of-n crash/rejoin cells with their recovery-latency
   percentiles (docs/AVAILABILITY.md).  The report goes to
   BENCH_chaos.json; a violation or a lost write fails the run (and CI)
   with the (seed, plan) pair that reproduces it. *)
let chaos ~quick ~seeds ?jobs () =
  let module Soak = Asvm_chaos.Soak in
  header "chaos soak (fault injection + invariant checking)";
  let r = Soak.run ?jobs ~seeds ~quick () in
  Soak.pp_report Format.std_formatter r;
  Format.pp_print_flush Format.std_formatter ();
  let oc = open_out "BENCH_chaos.json" in
  output_string oc (Json.to_string (Soak.to_json r));
  output_char oc '\n';
  close_out oc;
  (* read it back: a zero exit certifies the file is well-formed JSON *)
  let ic = open_in "BENCH_chaos.json" in
  let contents = In_channel.input_all ic in
  close_in ic;
  (match Json.of_string (String.trim contents) with
  | Ok _ -> ()
  | Error e -> failwith ("chaos: BENCH_chaos.json is invalid: " ^ e));
  pf "wrote BENCH_chaos.json@.";
  if r.Soak.total_violations > 0 || r.Soak.incomplete > 0 || r.Soak.lost_writes > 0
  then
    failwith
      "chaos: invariant violations, lost writes or incomplete runs — see \
       BENCH_chaos.json"

(* ------------------------------------------------------------------ *)
(* Serving SLO bench (BENCH_serve.json)                               *)
(* ------------------------------------------------------------------ *)

(* Open-loop serving cells: protocol x arrival process x
   oversubscription ratio, every request's latency into exact-percentile
   histograms, plus one chaos-composed cell (serve under a lossy fault
   plan with the invariant checker after drain).  The JSON is free of
   wall-clock fields, and every cell is a pure function of the fixed
   seed, so the file is byte-identical at any --jobs — the determinism
   check CI leans on. *)

module Serve = Asvm_serve.Serve
module Arrival = Asvm_serve.Arrival

let serve_cell_json ~mm ~process ~oversub ~violations (r : Serve.result) =
  let ordered = r.Serve.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms in
  let merge_exact =
    r.Serve.merged_count = r.registry_count
    && r.merged_count = r.completions
  in
  Json.Obj
    [
      ("mm", Json.String (Config.mm_name mm));
      ("arrival", Json.String (Arrival.process_name process));
      ("oversub", Json.Float oversub);
      ("requests", Json.Int r.Serve.requests);
      ("completions", Json.Int r.completions);
      ("sim_ms", Json.Float r.sim_ms);
      ("goodput_rps", Json.Float r.goodput_rps);
      ("mean_ms", Json.Float r.mean_ms);
      ("p50_ms", Json.Float r.p50_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("p999_ms", Json.Float r.p999_ms);
      ("max_ms", Json.Float r.max_ms);
      ("evictions", Json.Int r.evictions);
      ("pageout_runs", Json.Int r.pageout_runs);
      ("pageout_evictions", Json.Int r.pageout_evictions);
      ("pager_stores", Json.Int r.pager_stores);
      ("reader_handoffs", Json.Int r.reader_handoffs);
      ("internode_pageouts", Json.Int r.internode_pageouts);
      ("pageouts_to_pager", Json.Int r.pageouts_to_pager);
      ( "queue_depth",
        Json.List
          (List.map
             (fun (t, d) ->
               Json.Obj [ ("t_ms", Json.Float t); ("depth", Json.Int d) ])
             r.queue_depth) );
      ("percentiles_ordered", Json.Bool ordered);
      ("merge_exact", Json.Bool merge_exact);
      ( "violations",
        match violations with
        | None -> Json.Null
        | Some vs -> Json.List (List.map (fun v -> Json.String v) vs) );
    ]

let serve ~quick ?jobs () =
  let module Plan = Asvm_chaos.Plan in
  let module Invariants = Asvm_chaos.Invariants in
  let module Sts = Asvm_sts.Sts in
  header "serve: open-loop serving SLO under memory oversubscription";
  let rate = if quick then 500. else 1000. in
  let params ~process ~oversub =
    {
      Serve.default_params with
      Serve.duration_ms = (if quick then 300. else 1200.);
      process;
      oversub;
      queue_samples = 16;
    }
  in
  let arrivals =
    [
      Arrival.Poisson { rate_per_s = rate };
      Arrival.Bursty
        {
          on_rate_per_s = rate *. 2.5;
          off_rate_per_s = rate /. 4.;
          on_ms = 40.;
          off_ms = 60.;
        };
    ]
  in
  let oversubs = [ 1.5; 3.0 ] in
  let cells =
    List.concat_map
      (fun mm ->
        List.concat_map
          (fun process ->
            List.map (fun oversub -> (mm, process, oversub)) oversubs)
          arrivals)
      [ Config.Mm_asvm; Config.Mm_xmm ]
  in
  let results =
    Runner.map ?jobs
      (fun (mm, process, oversub) -> Serve.run ~mm (params ~process ~oversub))
      cells
  in
  (* chaos-composed cell: the same serving load under a lossy fault plan
     with the reliable STS absorbing the losses; the invariant checker
     runs after drain and must stay green *)
  let chaos_process = List.hd arrivals in
  let chaos_oversub = List.hd oversubs in
  let plan = Plan.lossy ~p:0.02 ~seed:1096 () in
  let chaos_violations = ref [] in
  let chaos_result =
    Serve.run ~mm:Config.Mm_asvm
      ~tweak:(fun (c : Config.t) ->
        let sts =
          {
            c.Config.asvm.Asvm_core.Asvm.sts with
            Sts.interposer = Some (Plan.sts_interposer plan);
            reliability = Some Sts.default_reliability;
          }
        in
        {
          c with
          Config.net_interposer = Some (Plan.net_interposer plan);
          asvm = { c.Config.asvm with sts };
        })
      ~inspect:(fun cl -> chaos_violations := Invariants.check cl)
      (params ~process:chaos_process ~oversub:chaos_oversub)
  in
  pf "%6s %9s %9s | %9s %9s %9s %9s | %9s %9s@." "mm" "arrival" "oversub"
    "p50 (ms)" "p99 (ms)" "p999 (ms)" "rps" "evict" "daemon";
  rule ();
  List.iter2
    (fun (mm, process, oversub) (r : Serve.result) ->
      pf "%6s %9s %9.1f | %9.2f %9.2f %9.2f %9.0f | %9d %9d@."
        (Config.mm_name mm)
        (Arrival.process_name process)
        oversub r.Serve.p50_ms r.p99_ms r.p999_ms r.goodput_rps r.evictions
        r.pageout_evictions)
    cells results;
  rule ();
  pf "chaos-composed cell (%s, oversub %.1f, plan %s): %d violations@."
    (Arrival.process_name chaos_process)
    chaos_oversub (Plan.describe plan)
    (List.length !chaos_violations);
  (* latency CDFs for the highest-pressure Poisson cells *)
  let cdf_of mm =
    let rec pick cs rs =
      match (cs, rs) with
      | (m, Arrival.Poisson _, o) :: _, (r : Serve.result) :: _
        when m = mm && o = List.fold_left max 0. oversubs ->
        Some r
      | _ :: cs, _ :: rs -> pick cs rs
      | _ -> None
    in
    pick cells results
  in
  (match (cdf_of Config.Mm_asvm, cdf_of Config.Mm_xmm) with
  | Some a, Some x ->
    pf "%s@."
      (Ascii_plot.render ~x_label:"latency (ms)" ~y_label:"% of requests"
         [
           Ascii_plot.cdf ~label:"ASVM" ~marker:'a' a.Serve.latency_values;
           Ascii_plot.cdf ~label:"XMM" ~marker:'x' x.Serve.latency_values;
         ])
  | _ -> ());
  let json =
    Json.Obj
      [
        ("schema", Json.String "asvm.serve/v1");
        ("quick", Json.Bool quick);
        ("seed", Json.Int Serve.default_params.Serve.seed);
        ("rate_per_s", Json.Float rate);
        ( "cells",
          Json.List
            (List.map2
               (fun (mm, process, oversub) r ->
                 serve_cell_json ~mm ~process ~oversub ~violations:None r)
               cells results) );
        ( "chaos_cell",
          serve_cell_json ~mm:Config.Mm_asvm ~process:chaos_process
            ~oversub:chaos_oversub
            ~violations:(Some !chaos_violations)
            chaos_result );
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  (* read it back: a zero exit certifies the file is well-formed JSON *)
  let ic = open_in "BENCH_serve.json" in
  let contents = In_channel.input_all ic in
  close_in ic;
  (match Json.of_string (String.trim contents) with
  | Ok _ -> ()
  | Error e -> failwith ("serve: BENCH_serve.json is invalid: " ^ e));
  pf "wrote BENCH_serve.json@.";
  let all_results = (Config.Mm_asvm, chaos_result) :: List.combine (List.map (fun (m, _, _) -> m) cells) results in
  List.iter
    (fun (_, (r : Serve.result)) ->
      if r.Serve.completions <> r.requests then
        failwith "serve: open loop failed to drain (completions <> requests)";
      if not (r.Serve.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms) then
        failwith "serve: percentiles out of order";
      if r.Serve.merged_count <> r.registry_count then
        failwith "serve: shard-merge count disagrees with registry histogram")
    all_results;
  if !chaos_violations <> [] then
    failwith "serve: invariant violations in the chaos-composed cell"

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let run_selected ~quick ~metrics ~seeds ?jobs which =
  let iterations = if quick then 10 else 100 in
  let all = which = [] in
  let want name = all || List.mem name which in
  if want "table1" then table1 ?jobs ();
  if metrics && want "table1" then table1_messages ();
  if want "figure10" then figure10 ?jobs ();
  if want "figure11" then figure11 ?jobs ();
  if want "table2" then table2 ?jobs ();
  if want "table3" then table3 ~iterations ?jobs ();
  if want "ablation-forwarding" then ablation_forwarding ();
  if want "ablation-paging" then ablation_paging ~iterations ();
  if want "ablation-readerlist" then ablation_readerlist ();
  if want "ablation-striping" then ablation_striping ();
  if want "ablation-memory" then ablation_memory ();
  if want "bechamel" then bechamel ();
  (* explicit-only: it deliberately runs its batch twice to time it *)
  if List.mem "selfbench" which then selfbench ~quick ?jobs ();
  (* explicit-only: a harness microbench, not a paper experiment *)
  if List.mem "pagestore" which then pagestore ~quick ();
  (* explicit-only: fault injection is a soak, not a paper experiment *)
  if List.mem "chaos" which then chaos ~quick ~seeds ?jobs ();
  (* explicit-only: the serving SLO bench, not a paper experiment *)
  if List.mem "serve" which then serve ~quick ?jobs ()

let () =
  let quick = ref false in
  let metrics = ref false in
  let jobs = ref None in
  let seeds = ref 10 in
  let which = ref [] in
  let usage_num flag =
    Printf.eprintf "bench: %s expects a positive integer\n" flag;
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> jobs := Some j
      | _ -> usage_num "--jobs");
      parse rest
    | [ "--jobs" ] -> usage_num "--jobs"
    | "--seeds" :: n :: rest ->
      (match int_of_string_opt n with
      | Some s when s >= 1 -> seeds := s
      | _ -> usage_num "--seeds");
      parse rest
    | [ "--seeds" ] -> usage_num "--seeds"
    | name :: rest ->
      which := name :: !which;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  run_selected ~quick:!quick ~metrics:!metrics ~seeds:!seeds ?jobs:!jobs
    (List.rev !which)
