(* Observability layer: metric registry and structured traces.

   Unit tests cover the registry semantics (label normalization,
   percentiles, counter diffs, JSON round-trips); the integration tests
   assert the paper's central message-economy claim from the registry
   counters: a remote write-ownership transfer costs 3 messages (1
   carrying page contents) under ASVM and 5 (2 with contents) under
   the XMM baseline (paper section 3.3 / Table 1). *)

module Json = Asvm_obs.Json
module Metrics = Asvm_obs.Metrics
module Trace = Asvm_obs.Trace
module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 1.5;
      Json.String "with \"quotes\" and \n newline";
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> Alcotest.(check string) "roundtrip" (Json.to_string j) (Json.to_string j')
      | Error e -> Alcotest.failf "parse error: %s" e)
    samples;
  (match Json.of_string "{\"a\": 1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  match Json.of_string "{\"u\": \"\\u0041\"}" with
  | Ok j -> (
    match Json.member "u" j with
    | Some (Json.String s) -> Alcotest.(check string) "unicode escape" "A" s
    | _ -> Alcotest.fail "missing member")
  | Error e -> Alcotest.failf "parse error: %s" e

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_label_merging () =
  let r = Metrics.Registry.create () in
  let c1 =
    Metrics.Registry.counter r "m" ~labels:[ ("a", "1"); ("b", "2") ]
  in
  let c2 =
    Metrics.Registry.counter r "m" ~labels:[ ("b", "2"); ("a", "1") ]
  in
  Metrics.Counter.incr c1;
  Metrics.Counter.incr c2;
  (* label order is irrelevant: both handles hit the same series *)
  Alcotest.(check int) "same series" 2 (Metrics.Counter.value c1);
  (* duplicate keys: the last binding wins *)
  let c3 =
    Metrics.Registry.counter r "m" ~labels:[ ("a", "0"); ("a", "1"); ("b", "2") ]
  in
  Metrics.Counter.incr c3;
  Alcotest.(check int) "dup key last wins" 3 (Metrics.Counter.value c1);
  let snap = Metrics.Registry.snapshot r in
  Alcotest.(check int) "one series" 1 (List.length snap);
  (* a name reused with a different metric type is an error *)
  match Metrics.Registry.gauge r "m" ~labels:[ ("a", "1"); ("b", "2") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash accepted"

let test_percentiles () =
  let r = Metrics.Registry.create () in
  let h = Metrics.Registry.histogram r "h_ms" in
  (* 1..100 shuffled: exact order statistics are known *)
  List.iter
    (fun i -> Metrics.Histogram.observe h (float_of_int (((i * 37) mod 100) + 1)))
    (List.init 100 Fun.id);
  let close = Alcotest.(check (float 1e-9)) in
  close "p0" 1. (Metrics.Histogram.percentile h 0.);
  close "p100" 100. (Metrics.Histogram.percentile h 100.);
  close "p50" 50.5 (Metrics.Histogram.percentile h 50.);
  (* rank 0.9 * 99 = 89.1 -> between the 90th and 91st order stats *)
  close "p90" 90.1 (Metrics.Histogram.percentile h 90.);
  close "mean" 50.5 (Metrics.Histogram.mean h);
  Alcotest.(check int) "count" 100 (Metrics.Histogram.count h)

let test_diff () =
  let r = Metrics.Registry.create () in
  let c = Metrics.Registry.counter r "c" in
  let g = Metrics.Registry.gauge r "g" in
  Metrics.Counter.incr c ~by:5;
  Metrics.Gauge.set g 1.;
  let before = Metrics.Registry.snapshot r in
  Metrics.Counter.incr c ~by:3;
  Metrics.Gauge.set g 9.;
  let c2 = Metrics.Registry.counter r "c2" in
  Metrics.Counter.incr c2 ~by:7;
  let after = Metrics.Registry.snapshot r in
  let d = Metrics.diff ~before ~after in
  Alcotest.(check int) "delta existing" 3 (Metrics.counter_total d "c");
  Alcotest.(check int) "delta new series" 7 (Metrics.counter_total d "c2");
  (* gauges are point-in-time: never in a diff *)
  Alcotest.(check bool) "no gauges" true
    (List.for_all
       (fun (s : Metrics.sample) -> s.Metrics.name <> "g")
       d)

let test_sample_json_roundtrip () =
  let r = Metrics.Registry.create () in
  Metrics.Counter.incr
    (Metrics.Registry.counter r "c" ~labels:[ ("k", "v") ])
    ~by:11;
  Metrics.Gauge.set (Metrics.Registry.gauge r "g") 2.25;
  let h = Metrics.Registry.histogram r "h_ms" in
  List.iter (fun i -> Metrics.Histogram.observe h (float_of_int i)) [ 1; 2; 3 ];
  let snap = Metrics.Registry.snapshot r in
  let lines =
    String.split_on_char '\n' (String.trim (Metrics.snapshot_to_jsonl snap))
  in
  Alcotest.(check int) "one line per series" (List.length snap)
    (List.length lines);
  List.iter2
    (fun line (s : Metrics.sample) ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "bad JSONL line: %s" e
      | Ok j -> (
        match Metrics.sample_of_json j with
        | Error e -> Alcotest.failf "sample_of_json: %s" e
        | Ok s' ->
          Alcotest.(check string) "name" s.Metrics.name s'.Metrics.name;
          (* floats go through %.12g text: compare with tolerance *)
          let close a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs a) in
          let ok =
            match (s.Metrics.value, s'.Metrics.value) with
            | Metrics.Counter_v a, Metrics.Counter_v b -> a = b
            | Metrics.Gauge_v a, Metrics.Gauge_v b -> close a b
            | Metrics.Histogram_v a, Metrics.Histogram_v b ->
              a.count = b.count && close a.mean b.mean
              && close a.p50 b.p50 && close a.p90 b.p90
              && close a.p99 b.p99 && close a.min b.min
              && close a.max b.max
            | _ -> false
          in
          Alcotest.(check bool) "value" true ok))
    lines snap

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_ring_and_jsonl () =
  let path = Filename.temp_file "asvm_trace" ".jsonl" in
  let oc = open_out path in
  let tr = Trace.create ~capacity:4 () in
  Trace.set_jsonl tr (Some oc);
  for i = 0 to 9 do
    Trace.emit (Some tr) ~time:(float_of_int i) ~node:(i mod 3)
      (if i mod 2 = 0 then
         Trace.Msg
           {
             Trace.proto = "asvm";
             cls = "request";
             group = "transfer";
             src = i mod 3;
             dst = (i + 1) mod 3;
             carries_page = false;
             bytes = 32;
           }
       else Trace.Ownership { obj = 1; page = i; owner = i mod 3 })
  done;
  Trace.emit None ~time:0. ~node:0 (Trace.Note { category = "x"; detail = "noop" });
  close_out oc;
  (* the ring keeps only the last [capacity] events *)
  Alcotest.(check int) "emitted" 10 (Trace.emitted tr);
  let retained = Trace.events tr in
  Alcotest.(check int) "ring bounded" 4 (List.length retained);
  Alcotest.(check (float 0.) ) "oldest first" 6. (List.hd retained).Trace.time;
  (* the JSONL sink saw every event; each line round-trips *)
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "all events on disk" 10 (List.length lines);
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "line %d: %s" i e
      | Ok j -> (
        match Trace.event_of_json j with
        | Error e -> Alcotest.failf "line %d: %s" i e
        | Ok e ->
          Alcotest.(check (float 0.)) "time" (float_of_int i) e.Trace.time))
    lines;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Integration: the paper's message-economy claim from the registry    *)
(* ------------------------------------------------------------------ *)

let transfer_msgs snapshot name =
  let total = Metrics.counter_total snapshot name in
  let wire =
    Metrics.counter_total
      ~where:(fun ls -> List.assoc_opt "contents" ls = Some "wire")
      snapshot name
  in
  (total, wire)

(* Steady-state ASVM ownership transfer: ping-pong writes leave the
   loser with a dynamic hint pointing straight at the owner, so the
   third write is the canonical 3-message transfer of section 3.3. *)
let test_asvm_three_messages () =
  let nodes = 6 in
  let cl = Cluster.create (Config.default ~nodes) in
  let obj =
    Cluster.create_shared_object cl ~size_pages:1
      ~sharers:(List.init nodes Fun.id) ()
  in
  let task node =
    let t = Cluster.create_task cl ~node in
    Cluster.map cl ~task:t ~obj ~start:0 ~npages:1
      ~inherit_:Address_map.Inherit_share;
    t
  in
  let t2 = task 2 and t3 = task 3 in
  let wr t v =
    let ok = ref false in
    Cluster.write_word cl ~task:t ~addr:0 ~value:v (fun () -> ok := true);
    Cluster.run cl;
    assert !ok
  in
  wr t2 1;
  wr t3 2;
  (* the measured transfer: node 2 takes ownership back from node 3 *)
  let before = Cluster.metrics_snapshot cl in
  wr t2 3;
  let d = Metrics.diff ~before ~after:(Cluster.metrics_snapshot cl) in
  let total, wire = transfer_msgs d "asvm.msgs.ownership_transfer" in
  Alcotest.(check int) "3 messages" 3 total;
  Alcotest.(check int) "1 with contents" 1 wire

(* The XMM dirty-page transfer: request, lock (clean), lock_done with
   the page, the memory_object_data_write to the pager, and the supply
   — 5 messages, 2 of them carrying the page across the wire. *)
let test_xmm_five_messages () =
  let nodes = 4 in
  let cl =
    Cluster.create (Config.with_mm (Config.default ~nodes) Config.Mm_xmm)
  in
  let obj =
    Cluster.create_shared_object cl ~size_pages:1
      ~sharers:(List.init nodes Fun.id) ()
  in
  let task node =
    let t = Cluster.create_task cl ~node in
    Cluster.map cl ~task:t ~obj ~start:0 ~npages:1
      ~inherit_:Address_map.Inherit_share;
    t
  in
  let t1 = task 1 and t3 = task 3 in
  let wr t v =
    let ok = ref false in
    Cluster.write_word cl ~task:t ~addr:0 ~value:v (fun () -> ok := true);
    Cluster.run cl;
    assert !ok
  in
  (* node 1 dirties the page; node 3's write is the measured transfer *)
  wr t1 1;
  let before = Cluster.metrics_snapshot cl in
  wr t3 2;
  let d = Metrics.diff ~before ~after:(Cluster.metrics_snapshot cl) in
  let total, wire = transfer_msgs d "xmm.msgs.ownership_transfer" in
  Alcotest.(check int) "5 messages" 5 total;
  Alcotest.(check int) "2 with contents" 2 wire

(* The --trace-out / --metrics path end to end: the JSONL file is valid
   and the fault-window counters carry the claim. *)
let test_fault_instrumented () =
  let module Fault_micro = Asvm_workloads.Fault_micro in
  let path = Filename.temp_file "asvm_fault" ".jsonl" in
  let r =
    Fault_micro.measure_instrumented ~nodes:8 ~trace_out:path
      ~mm:Config.Mm_asvm
      (Fault_micro.Write_upgrade { read_copies = 3 })
  in
  Alcotest.(check bool) "positive latency" true (r.Fault_micro.latency_ms > 0.);
  let total, _ =
    transfer_msgs r.Fault_micro.fault_metrics "asvm.msgs.ownership_transfer"
  in
  Alcotest.(check int) "upgrade is 3 messages" 3 total;
  (* engine profiling gauges ride along in the full snapshot *)
  (match Metrics.find r.Fault_micro.run_metrics "engine.events" [] with
  | Some (Metrics.Gauge_v v) ->
    Alcotest.(check bool) "events counted" true (v > 0.)
  | _ -> Alcotest.fail "engine.events gauge missing");
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr n;
       match Json.of_string line with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "invalid JSONL at line %d: %s" !n e
     done
   with End_of_file -> close_in ic);
  Alcotest.(check bool) "trace nonempty" true (!n > 0);
  Sys.remove path

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip ] );
      ( "registry",
        [
          Alcotest.test_case "label merging" `Quick test_label_merging;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "jsonl roundtrip" `Quick test_sample_json_roundtrip;
        ] );
      ( "trace",
        [ Alcotest.test_case "ring and jsonl" `Quick test_trace_ring_and_jsonl ] );
      ( "message economy",
        [
          Alcotest.test_case "asvm 3 messages" `Quick test_asvm_three_messages;
          Alcotest.test_case "xmm 5 messages" `Quick test_xmm_five_messages;
          Alcotest.test_case "instrumented fault" `Quick test_fault_instrumented;
        ] );
    ]
