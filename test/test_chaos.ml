(* Tests for lib/chaos: fault-plan determinism, workload survival under
   loss with reliable STS, and the invariant checker (including its
   self-test against a deliberately corrupted cluster). *)

module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Vm = Asvm_machvm.Vm
module Contents = Asvm_machvm.Contents
module Address_map = Asvm_machvm.Address_map
module Sts = Asvm_sts.Sts
module Plan = Asvm_chaos.Plan
module Invariants = Asvm_chaos.Invariants
module Soak = Asvm_chaos.Soak
module Fault_micro = Asvm_workloads.Fault_micro
module Runner = Asvm_runner.Runner

(* ------------------- plan purity and determinism ------------------- *)

let test_decide_is_pure () =
  let plan = Plan.random ~seed:42 ~lossy:true in
  for index = 0 to 500 do
    let d () = Plan.decide plan ~now:3.5 ~index ~src:0 ~dst:2 in
    Alcotest.(check (list (float 1e-12)))
      "same arguments, same decision" (d ()) (d ())
  done

let test_plans_differ_by_seed () =
  let decisions seed =
    let plan = Plan.random ~seed ~lossy:true in
    List.init 2000 (fun index ->
        Plan.decide plan ~now:0. ~index ~src:1 ~dst:0)
  in
  Alcotest.(check bool)
    "different seeds perturb differently" false
    (decisions 1 = decisions 2)

(* Run one ASVM fault-microbenchmark cell under a recorded lossy plan
   and return every perturbed transmission (both interposition layers)
   as strings.  Pure: safe as a pool job. *)
let recorded_faults seed =
  let plan = Plan.random ~seed ~lossy:true in
  let events = ref [] in
  let record e = events := Plan.event_to_string e :: !events in
  let tweak (c : Config.t) =
    {
      c with
      net_interposer = Some (Plan.net_interposer ~record plan);
      asvm =
        {
          c.asvm with
          sts =
            {
              c.asvm.sts with
              Sts.interposer = Some (Plan.sts_interposer ~record plan);
              reliability = Some Sts.default_reliability;
            };
        };
    }
  in
  ignore
    (Fault_micro.measure_instrumented ~nodes:8 ~tweak ~mm:Config.Mm_asvm
       (Fault_micro.Write_fault { read_copies = 2 }));
  List.rev !events

let test_fault_sequence_independent_of_jobs () =
  let seeds = [ 1; 2; 3; 4 ] in
  let sequential = Runner.map ~jobs:1 recorded_faults seeds in
  let parallel = Runner.map ~jobs:4 recorded_faults seeds in
  List.iteri
    (fun i (seq, par) ->
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: identical fault events at any job count"
           (i + 1))
        seq par;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: the plan actually perturbed something" (i + 1))
        true (seq <> []))
    (List.combine sequential parallel)

(* -------------------- survival under 1% loss ----------------------- *)

let test_workloads_survive_loss () =
  List.iter
    (fun workload ->
      let plan = Plan.lossy ~p:0.01 ~seed:7 () in
      let o =
        Soak.run_one ~quick:true ~mm:Config.Mm_asvm ~workload ~plan
          ~reliable:true ()
      in
      Alcotest.(check bool)
        (workload ^ " completes under 1% loss") true o.Soak.completed;
      Alcotest.(check (list string))
        (workload ^ " keeps the invariants") [] o.Soak.violations;
      (* retransmissions happen but stay bounded: the reliability layer
         converges instead of melting down *)
      Alcotest.(check bool)
        (workload ^ " retransmits are bounded") true
        (o.Soak.retransmits < 1000))
    Soak.workloads

(* ------------------- invariant checker, ≥10 seeds ------------------ *)

let soak_cell (mm, seed) =
  let lossy = mm = Config.Mm_asvm in
  let plan = Plan.random ~seed ~lossy in
  Soak.run_one ~quick:true ~mm ~workload:"chain" ~plan ~reliable:lossy ()

let test_checker_over_seeded_plans () =
  let seeds = List.init 10 (fun i -> i + 1) in
  let cells =
    List.concat_map
      (fun seed -> [ (Config.Mm_asvm, seed); (Config.Mm_xmm, seed) ])
      seeds
  in
  let outcomes = Runner.map soak_cell cells in
  List.iter
    (fun (o : Soak.outcome) ->
      let tag =
        Printf.sprintf "%s %s" (Config.mm_name o.Soak.mm) o.Soak.plan.Plan.label
      in
      Alcotest.(check bool) (tag ^ " completed") true o.Soak.completed;
      Alcotest.(check (list string)) (tag ^ " invariants hold") []
        o.Soak.violations)
    outcomes

(* -------------------- checker self-test ---------------------------- *)

(* A healthy 3-node cluster where node 1 wrote a page and nodes 0 and 2
   read it, drained dry. *)
let make_shared_cluster () =
  let cl = Cluster.create (Config.default ~nodes:3) in
  let obj = Cluster.create_shared_object cl ~size_pages:2 ~sharers:[ 0; 1; 2 ] () in
  let tasks =
    Array.init 3 (fun node ->
        let t = Cluster.create_task cl ~node in
        Cluster.map cl ~task:t ~obj ~start:0 ~npages:2
          ~inherit_:Address_map.Inherit_share;
        t)
  in
  let sync k =
    let ok = ref false in
    k (fun () -> ok := true);
    Cluster.run cl;
    assert !ok
  in
  sync (fun k ->
      Cluster.write_word cl ~task:tasks.(1) ~addr:0 ~value:99 (fun () -> k ()));
  sync (fun k -> Cluster.touch cl ~task:tasks.(0) ~vpage:0 ~want:Prot.Read_only k);
  sync (fun k -> Cluster.touch cl ~task:tasks.(2) ~vpage:0 ~want:Prot.Read_only k);
  (cl, obj)

let test_checker_accepts_healthy_cluster () =
  let cl, _obj = make_shared_cluster () in
  Alcotest.(check (list string)) "no violations" [] (Invariants.check cl)

let test_checker_flags_forked_page () =
  let cl, obj = make_shared_cluster () in
  (* deliberately corrupt one read copy behind the protocol's back —
     Vm.frame_contents returns a defensive copy, so reach through the
     object table to the live frame *)
  let vm2 = Cluster.node_vm cl 2 in
  (match Asvm_machvm.Vm_object.frame (Vm.get_object vm2 obj) 0 with
  | Some fr -> Contents.set fr.Asvm_machvm.Vm_object.contents 0 123456
  | None -> Alcotest.fail "reader should hold the page");
  let violations = Invariants.check cl in
  Alcotest.(check bool) "fork detected" true
    (List.exists
       (fun v ->
         let rec contains i =
           i + 6 <= String.length v
           && (String.sub v i 6 = "forked" || contains (i + 1))
         in
         contains 0)
       violations)

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "decide is pure" `Quick test_decide_is_pure;
          Alcotest.test_case "seeds differ" `Quick test_plans_differ_by_seed;
          Alcotest.test_case "jobs-independent fault sequence" `Quick
            test_fault_sequence_independent_of_jobs;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "workloads survive 1% loss" `Slow
            test_workloads_survive_loss;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "10 seeded plans per protocol" `Slow
            test_checker_over_seeded_plans;
          Alcotest.test_case "healthy cluster passes" `Quick
            test_checker_accepts_healthy_cluster;
          Alcotest.test_case "forked page flagged" `Quick
            test_checker_flags_forked_page;
        ] );
    ]
