(* Tests for the open-loop serving subsystem: arrival-process
   statistics and determinism, exact histogram merging, the
   low-memory fault path ([Vm.try_accept_page]'s synchronous-eviction
   backstop), the watermark pageout daemon, and end-to-end serving
   cells. *)

module Engine = Asvm_simcore.Engine
module M = Asvm_machvm
module Vm = M.Vm
module Prot = M.Prot
module Contents = M.Contents
module Emmi = M.Emmi
module Metrics = Asvm_obs.Metrics
module Arrival = Asvm_serve.Arrival
module Serve = Asvm_serve.Serve
module Config = Asvm_cluster.Config

(* ----------------------- arrival processes ----------------------- *)

let dist = Arrival.Zipf 0.9

let sched ?(seed = 7) ?(duration_ms = 2000.) ?(key_dist = dist) process =
  Arrival.schedule process ~seed ~duration_ms ~nodes:4 ~keys:128
    ~read_fraction:0.8 ~key_dist

let test_schedule_deterministic () =
  (* the whole point of pre-materialized open-loop arrivals: the same
     seed gives the same schedule, element for element, on every call
     (and therefore at any --jobs — workers share nothing) *)
  List.iter
    (fun process ->
      let a = sched process and b = sched process in
      Alcotest.(check int)
        "same length" (Array.length a) (Array.length b);
      Array.iteri
        (fun i (r : Arrival.request) ->
          let s = b.(i) in
          if
            r.at_ms <> s.at_ms || r.node <> s.node || r.key <> s.key
            || r.op <> s.op
          then Alcotest.failf "request %d differs between identical runs" i)
        a)
    [
      Arrival.Poisson { rate_per_s = 800. };
      Arrival.Bursty
        { on_rate_per_s = 2000.; off_rate_per_s = 200.; on_ms = 40.; off_ms = 60. };
    ]

let test_schedule_seed_sensitivity () =
  let a = sched ~seed:1 (Arrival.Poisson { rate_per_s = 800. }) in
  let b = sched ~seed:2 (Arrival.Poisson { rate_per_s = 800. }) in
  let same =
    Array.length a = Array.length b
    && Array.for_all2
         (fun (r : Arrival.request) (s : Arrival.request) ->
           r.at_ms = s.at_ms)
         a b
  in
  Alcotest.(check bool) "different seeds differ" false same

let test_poisson_statistics () =
  (* exponential inter-arrivals at rate r: mean 1/r, variance 1/r^2.
     30 s at 1000 req/s is ~30k samples; 5% tolerance is ~8 sigma. *)
  let rate = 1000. in
  let a =
    sched ~duration_ms:30_000. (Arrival.Poisson { rate_per_s = rate })
  in
  let gaps =
    Array.init
      (Array.length a - 1)
      (fun i -> a.(i + 1).Arrival.at_ms -. a.(i).Arrival.at_ms)
  in
  let n = float_of_int (Array.length gaps) in
  let mean = Array.fold_left ( +. ) 0. gaps /. n in
  let var =
    Array.fold_left (fun acc g -> acc +. ((g -. mean) ** 2.)) 0. gaps /. n
  in
  let expected_mean = 1000. /. rate in
  Alcotest.(check bool)
    (Printf.sprintf "mean inter-arrival %.4f ms within 5%% of %.4f" mean
       expected_mean)
    true
    (Float.abs (mean -. expected_mean) < 0.05 *. expected_mean);
  Alcotest.(check bool)
    (Printf.sprintf "inter-arrival variance %.4f within 10%% of %.4f" var
       (expected_mean ** 2.))
    true
    (Float.abs (var -. (expected_mean ** 2.)) < 0.1 *. (expected_mean ** 2.))

let test_arrivals_sorted_and_bounded () =
  let a =
    sched
      (Arrival.Bursty
         { on_rate_per_s = 2500.; off_rate_per_s = 250.; on_ms = 40.; off_ms = 60. })
  in
  Array.iteri
    (fun i (r : Arrival.request) ->
      if i > 0 && r.at_ms < a.(i - 1).Arrival.at_ms then
        Alcotest.failf "arrivals out of order at %d" i;
      if r.at_ms < 0. || r.at_ms >= 2000. then
        Alcotest.failf "arrival %d outside the window" i;
      if r.node < 0 || r.node >= 4 then Alcotest.failf "bad node at %d" i;
      if r.key < 0 || r.key >= 128 then Alcotest.failf "bad key at %d" i)
    a

let test_zipf_skew () =
  (* Zipf 0.9 over 128 keys: rank-1 weight ~ 1/H, far above the
     uniform 1/128 share; uniform stays near it *)
  let popularity key_dist =
    let a = sched ~duration_ms:30_000. ~key_dist (Arrival.Poisson { rate_per_s = 1000. }) in
    let counts = Array.make 128 0 in
    Array.iter
      (fun (r : Arrival.request) -> counts.(r.key) <- counts.(r.key) + 1)
      a;
    let top = Array.fold_left max 0 counts in
    float_of_int top /. float_of_int (Array.length a)
  in
  Alcotest.(check bool)
    "zipf top key well above uniform share" true
    (popularity (Arrival.Zipf 0.9) > 3. /. 128.);
  Alcotest.(check bool)
    "uniform top key near uniform share" true
    (popularity Arrival.Uniform < 2. /. 128.)

let test_read_fraction () =
  let a = sched ~duration_ms:30_000. (Arrival.Poisson { rate_per_s = 1000. }) in
  let reads =
    Array.fold_left
      (fun acc (r : Arrival.request) ->
        if r.op = Arrival.Read then acc + 1 else acc)
      0 a
  in
  let frac = float_of_int reads /. float_of_int (Array.length a) in
  Alcotest.(check bool)
    (Printf.sprintf "read fraction %.3f near 0.8" frac)
    true
    (Float.abs (frac -. 0.8) < 0.02)

(* ----------------------- histogram merge ----------------------- *)

let histogram_merge_exact =
  QCheck.Test.make ~name:"Histogram.merge equals pooled observation"
    ~count:200
    QCheck.(pair (list (float_bound_exclusive 1000.)) (list (float_bound_exclusive 1000.)))
    (fun (xs, ys) ->
      let a = Metrics.Histogram.create ()
      and b = Metrics.Histogram.create ()
      and pooled = Metrics.Histogram.create () in
      List.iter (fun x -> Metrics.Histogram.observe a x) xs;
      List.iter (fun y -> Metrics.Histogram.observe b y) ys;
      List.iter (fun v -> Metrics.Histogram.observe pooled v) (xs @ ys);
      let m = Metrics.Histogram.merge a b in
      Metrics.Histogram.count m = List.length xs + List.length ys
      && List.for_all
           (fun p ->
             Metrics.Histogram.count m = 0
             || Metrics.Histogram.percentile m p
                = Metrics.Histogram.percentile pooled p)
           [ 0.; 25.; 50.; 90.; 99.; 99.9; 100. ])

let histogram_merge_leaves_inputs =
  QCheck.Test.make ~name:"Histogram.merge does not mutate its inputs"
    ~count:100
    QCheck.(pair (list (float_bound_exclusive 100.)) (list (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      let a = Metrics.Histogram.create ()
      and b = Metrics.Histogram.create () in
      List.iter (fun x -> Metrics.Histogram.observe a x) xs;
      List.iter (fun y -> Metrics.Histogram.observe b y) ys;
      ignore (Metrics.Histogram.merge a b);
      Metrics.Histogram.count a = List.length xs
      && Metrics.Histogram.count b = List.length ys)

(* ------------------- low-memory fault path ------------------- *)

let wpp = 4

let make_vm ~memory_pages ?(config = M.Vm_config.default) () =
  let engine = Engine.create () in
  let config = { config with M.Vm_config.words_per_page = wpp; memory_pages } in
  let ids = M.Ids.Alloc.create () in
  let vm =
    Vm.create ~engine ~node:0 ~config ~backing:(M.Backing.in_memory ()) ~ids
  in
  (engine, ids, vm)

let fill_cache engine ids vm task pages =
  let obj =
    Vm.create_object vm ~id:(M.Ids.Alloc.fresh ids) ~size_pages:pages
      ~temporary:true
  in
  ignore
    (Vm.map vm ~task ~obj:obj.M.Vm_object.id ~start:0 ~npages:pages
       ~obj_offset:0 ~inherit_:M.Address_map.Inherit_copy);
  for p = 0 to pages - 1 do
    let done_ = ref false in
    Vm.touch vm ~task ~vpage:p ~want:Prot.Read_write (fun () -> done_ := true);
    Engine.run engine;
    if not !done_ then Alcotest.fail "warm-up touch did not complete"
  done

let test_accept_page_evicts_for_parked_fault () =
  (* vm.mli's [try_accept_page] contract: a page a parked fault waits
     for is accepted even when the cache is full — one synchronous
     eviction makes room — while placement traffic is refused *)
  let engine, ids, vm = make_vm ~memory_pages:4 () in
  let task = Vm.create_task vm in
  fill_cache engine ids vm task 4;
  Alcotest.(check int) "cache full" 0 (Vm.free_pages vm);
  (* a managed object whose manager never answers: the fault parks *)
  let requested = ref [] in
  let manager =
    {
      Emmi.null_manager with
      Emmi.m_data_request =
        (fun ~page ~desired:_ -> requested := page :: !requested);
      m_data_return = (fun ~page:_ ~contents:_ ~dirty:_ -> ());
    }
  in
  let mobj =
    Vm.create_object vm ~id:(M.Ids.Alloc.fresh ids) ~size_pages:2
      ~temporary:false
  in
  let moid = mobj.M.Vm_object.id in
  Vm.set_manager vm moid (Some manager);
  ignore
    (Vm.map vm ~task ~obj:moid ~start:100 ~npages:2 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_share);
  let completed = ref false in
  Vm.touch vm ~task ~vpage:100 ~want:Prot.Read_only (fun () ->
      completed := true);
  Engine.run engine;
  Alcotest.(check bool) "fault parked on the manager" false !completed;
  Alcotest.(check (list int)) "manager saw the request" [ 0 ] !requested;
  (* placement traffic (no fault waiting) is refused while full *)
  let c = Contents.zero ~words:wpp in
  Alcotest.(check bool)
    "placement refused when full" false
    (Vm.try_accept_page vm ~obj:moid ~page:1 ~contents:c ~dirty:false
       ~access:Prot.Read_only);
  (* the page the fault waits for is accepted: one frame is evicted *)
  let evictions_before = Vm.evictions vm in
  Alcotest.(check bool)
    "fault's page accepted" true
    (Vm.try_accept_page vm ~obj:moid ~page:0 ~contents:c ~dirty:false
       ~access:Prot.Read_only);
  Engine.run engine;
  Alcotest.(check bool) "fault completed" true !completed;
  Alcotest.(check bool)
    "made room by evicting" true
    (Vm.evictions vm > evictions_before)

let test_accept_page_plain_when_room () =
  let engine, ids, vm = make_vm ~memory_pages:8 () in
  let task = Vm.create_task vm in
  fill_cache engine ids vm task 2;
  let obj =
    Vm.create_object vm ~id:(M.Ids.Alloc.fresh ids) ~size_pages:1
      ~temporary:false
  in
  Vm.set_manager vm obj.M.Vm_object.id (Some Emmi.null_manager);
  let c = Contents.zero ~words:wpp in
  Alcotest.(check bool)
    "accepted with free memory" true
    (Vm.try_accept_page vm ~obj:obj.M.Vm_object.id ~page:0 ~contents:c
       ~dirty:false ~access:Prot.Read_only);
  Alcotest.(check bool)
    "resident afterwards" true
    (Vm.is_resident vm ~obj:obj.M.Vm_object.id ~page:0)

(* ------------------- watermark pageout daemon ------------------- *)

let test_pageout_daemon () =
  let config = M.Vm_config.with_pageout ~low:2 ~high:4 M.Vm_config.default in
  let engine, ids, vm = make_vm ~memory_pages:8 ~config () in
  let task = Vm.create_task vm in
  (* filling the cache crosses the low watermark (2 free), arming a
     scan that evicts back to the high watermark *)
  fill_cache engine ids vm task 8;
  Engine.run engine;
  Alcotest.(check bool) "daemon ran" true (Vm.pageout_runs vm >= 1);
  Alcotest.(check bool)
    "free pages restored to the high watermark" true
    (Vm.free_pages vm >= 4);
  Alcotest.(check bool)
    "daemon evictions counted" true
    (Vm.pageout_evictions vm > 0 && Vm.pageout_evictions vm <= Vm.evictions vm)

let test_pageout_daemon_disabled () =
  let engine, ids, vm = make_vm ~memory_pages:8 () in
  let task = Vm.create_task vm in
  fill_cache engine ids vm task 7;
  Engine.run engine;
  Alcotest.(check int) "no scans with low = 0" 0 (Vm.pageout_runs vm)

(* ------------------------- serving cells ------------------------- *)

let quick_params =
  {
    Serve.default_params with
    Serve.duration_ms = 150.;
    process = Arrival.Poisson { rate_per_s = 600. };
    oversub = 1.5;
    queue_samples = 8;
  }

let check_result label (r : Serve.result) =
  Alcotest.(check int)
    (label ^ ": open loop drains")
    r.Serve.requests r.completions;
  Alcotest.(check bool) (label ^ ": served requests") true (r.requests > 0);
  Alcotest.(check bool)
    (label ^ ": percentiles ordered") true
    (r.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms && r.p999_ms <= r.max_ms);
  Alcotest.(check int)
    (label ^ ": shard merge is exact")
    r.registry_count r.merged_count;
  Alcotest.(check int)
    (label ^ ": every latency sampled")
    r.completions r.merged_count;
  Alcotest.(check bool)
    (label ^ ": oversubscription forced paging") true (r.evictions > 0)

let test_serve_smoke_asvm () = check_result "asvm" (Serve.run ~mm:Config.Mm_asvm quick_params)
let test_serve_smoke_xmm () = check_result "xmm" (Serve.run ~mm:Config.Mm_xmm quick_params)

let test_serve_deterministic () =
  let a = Serve.run ~mm:Config.Mm_asvm quick_params in
  let b = Serve.run ~mm:Config.Mm_asvm quick_params in
  Alcotest.(check int) "same request count" a.Serve.requests b.Serve.requests;
  Alcotest.(check bool)
    "identical latency samples" true
    (a.Serve.latency_values = b.Serve.latency_values);
  Alcotest.(check (float 0.))
    "identical p999" a.Serve.p999_ms b.Serve.p999_ms

let test_serve_seed_changes_run () =
  let a = Serve.run ~mm:Config.Mm_asvm quick_params in
  let b =
    Serve.run ~mm:Config.Mm_asvm { quick_params with Serve.seed = 43 }
  in
  Alcotest.(check bool)
    "different seed gives a different run" false
    (a.Serve.latency_values = b.Serve.latency_values)

let () =
  Alcotest.run "serve"
    [
      ( "arrival",
        [
          Alcotest.test_case "fixed seed reproduces the schedule" `Quick
            test_schedule_deterministic;
          Alcotest.test_case "seeds are live" `Quick
            test_schedule_seed_sensitivity;
          Alcotest.test_case "poisson inter-arrival statistics" `Quick
            test_poisson_statistics;
          Alcotest.test_case "sorted, in-window, in-range" `Quick
            test_arrivals_sorted_and_bounded;
          Alcotest.test_case "zipf skews key popularity" `Quick test_zipf_skew;
          Alcotest.test_case "read/write mix" `Quick test_read_fraction;
        ] );
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest histogram_merge_exact;
          QCheck_alcotest.to_alcotest histogram_merge_leaves_inputs;
        ] );
      ( "low-memory fault path",
        [
          Alcotest.test_case "full cache evicts for a parked fault" `Quick
            test_accept_page_evicts_for_parked_fault;
          Alcotest.test_case "plain accept with room" `Quick
            test_accept_page_plain_when_room;
        ] );
      ( "pageout daemon",
        [
          Alcotest.test_case "scan restores the high watermark" `Quick
            test_pageout_daemon;
          Alcotest.test_case "disabled at low = 0" `Quick
            test_pageout_daemon_disabled;
        ] );
      ( "serving",
        [
          Alcotest.test_case "asvm cell drains with ordered SLOs" `Quick
            test_serve_smoke_asvm;
          Alcotest.test_case "xmm cell drains with ordered SLOs" `Quick
            test_serve_smoke_xmm;
          Alcotest.test_case "deterministic in the seed" `Quick
            test_serve_deterministic;
          Alcotest.test_case "seed is live" `Quick test_serve_seed_changes_run;
        ] );
    ]
