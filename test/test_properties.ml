(* Property-based tests of the core data structures and of fork/copy
   semantics against reference models. *)

module Engine = Asvm_simcore.Engine
module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map
module Hint_cache = Asvm_core.Hint_cache

let wpp = Asvm_machvm.Vm_config.default.words_per_page

(* ----------------------- hint cache ----------------------- *)

let hint_cache_capacity =
  QCheck.Test.make ~name:"hint cache never exceeds capacity" ~count:200
    QCheck.(pair (int_bound 16) (small_list (int_bound 100)))
    (fun (capacity, pages) ->
      let c = Hint_cache.create ~capacity in
      List.iter (fun page -> Hint_cache.put c ~page page) pages;
      Hint_cache.size c <= max capacity 0)

let hint_cache_lru =
  QCheck.Test.make ~name:"recently used hints survive eviction" ~count:200
    QCheck.(small_list (int_bound 50))
    (fun pages ->
      let c = Hint_cache.create ~capacity:4 in
      List.iter (fun page -> Hint_cache.put c ~page page) pages;
      (* touch page 1000, then insert 3 more: 1000 must survive *)
      Hint_cache.put c ~page:1000 1;
      ignore (Hint_cache.find c ~page:1000);
      List.iter (fun p -> Hint_cache.put c ~page:(2000 + p) p) [ 1; 2; 3 ];
      ignore (Hint_cache.find c ~page:1000);
      Hint_cache.find c ~page:1000 <> None)

let hint_cache_capacity_one =
  QCheck.Test.make ~name:"capacity-1 cache holds exactly the last put"
    ~count:200
    QCheck.(small_list (int_bound 50))
    (fun pages ->
      let c = Hint_cache.create ~capacity:1 in
      List.iter (fun page -> Hint_cache.put c ~page page) pages;
      match List.rev pages with
      | [] -> Hint_cache.size c = 0
      | last :: earlier ->
        Hint_cache.find c ~page:last = Some last
        && List.for_all
             (fun p -> p = last || Hint_cache.find c ~page:p = None)
             earlier)

let hint_cache_retouch =
  QCheck.Test.make
    ~name:"find re-touches: a probed entry outlives capacity-1 fresh inserts"
    ~count:200
    QCheck.(int_bound 3)
    (fun victim ->
      (* fill to capacity, probe one entry, then insert capacity-1 new
         pages: everything except the probed entry is evicted *)
      let c = Hint_cache.create ~capacity:4 in
      List.iter (fun page -> Hint_cache.put c ~page page) [ 0; 1; 2; 3 ];
      ignore (Hint_cache.find c ~page:victim);
      List.iter (fun p -> Hint_cache.put c ~page:(100 + p) p) [ 1; 2; 3 ];
      Hint_cache.find c ~page:victim = Some victim
      && List.for_all
           (fun p -> p = victim || Hint_cache.find c ~page:p = None)
           [ 0; 1; 2; 3 ])

(* Reference model: a cache of capacity [k] holds exactly the [k] most
   recently used distinct pages, where both [put] and a hitting [find]
   count as a use. *)
let hint_cache_churn =
  QCheck.Test.make ~name:"eviction under churn matches the LRU reference"
    ~count:300
    QCheck.(
      pair (int_range 1 8)
        (small_list (pair bool (int_bound 12))))
    (fun (capacity, ops) ->
      let c = Hint_cache.create ~capacity in
      let used = ref [] in
      let use page = used := page :: List.filter (( <> ) page) !used in
      List.iter
        (fun (is_put, page) ->
          if is_put then begin
            Hint_cache.put c ~page page;
            use page
          end
          else if Hint_cache.find c ~page <> None then use page)
        ops;
      let expected =
        List.filteri (fun i _ -> i < capacity) !used |> List.sort compare
      in
      let resident =
        List.filter
          (fun page -> Hint_cache.find c ~page <> None)
          (List.init 13 Fun.id)
        |> List.sort compare
      in
      resident = expected)

let hint_cache_zero =
  QCheck.Test.make ~name:"zero-capacity cache always misses" ~count:50
    QCheck.(small_list (int_bound 20))
    (fun pages ->
      let c = Hint_cache.create ~capacity:0 in
      List.iter (fun page -> Hint_cache.put c ~page page) pages;
      List.for_all (fun page -> Hint_cache.find c ~page = None) pages)

(* ----------------------- address map ----------------------- *)

let address_map_lookup =
  QCheck.Test.make ~name:"address map: lookup finds the covering entry"
    ~count:200
    QCheck.(small_list (pair (int_bound 100) (int_range 1 10)))
    (fun ranges ->
      let m = Address_map.create () in
      let entered =
        List.filter_map
          (fun (start, npages) ->
            match Address_map.map m ~start ~npages ~obj:1 ~obj_offset:0
                    ~inherit_:Address_map.Inherit_none
            with
            | _ -> Some (start, npages)
            | exception Invalid_argument _ -> None)
          ranges
      in
      List.for_all
        (fun (start, npages) ->
          List.for_all
            (fun off ->
              match Address_map.lookup m ~vpage:(start + off) with
              | Some e ->
                e.Address_map.start <= start + off
                && start + off < e.Address_map.start + e.Address_map.npages
              | None -> false)
            (List.init npages Fun.id))
        entered)

let address_map_no_overlap =
  QCheck.Test.make ~name:"address map rejects overlapping ranges" ~count:200
    QCheck.(pair (int_bound 50) (int_bound 50))
    (fun (a, b) ->
      let m = Address_map.create () in
      ignore
        (Address_map.map m ~start:a ~npages:10 ~obj:1 ~obj_offset:0
           ~inherit_:Address_map.Inherit_none);
      let overlaps = b < a + 10 && a < b + 10 in
      match
        Address_map.map m ~start:b ~npages:10 ~obj:2 ~obj_offset:0
          ~inherit_:Address_map.Inherit_none
      with
      | _ -> not overlaps
      | exception Invalid_argument _ -> overlaps)

let find_space_is_free =
  QCheck.Test.make ~name:"find_space returns a mappable range" ~count:200
    QCheck.(pair (small_list (int_bound 60)) (int_range 1 8))
    (fun (starts, npages) ->
      let m = Address_map.create () in
      List.iter
        (fun start ->
          try
            ignore
              (Address_map.map m ~start ~npages:4 ~obj:1 ~obj_offset:0
                 ~inherit_:Address_map.Inherit_none)
          with Invalid_argument _ -> ())
        starts;
      let start = Address_map.find_space m ~hint:0 ~npages in
      match
        Address_map.map m ~start ~npages ~obj:9 ~obj_offset:0
          ~inherit_:Address_map.Inherit_none
      with
      | _ -> true
      | exception Invalid_argument _ -> false)

(* ----------------------- fork semantics ----------------------- *)

(* Reference model: each generation's view is a full array snapshot.
   Random interleavings of writes (at any generation) and forks (from
   any generation to a random node) must match it exactly. *)
type op = Write of int * int * int | Fork of int * int | Read of int * int

let fork_semantics mm =
  let name =
    Printf.sprintf "%s fork chains match the snapshot reference"
      (Config.mm_name mm)
  in
  QCheck.Test.make ~name ~count:15
    QCheck.(
      small_list
        (triple (int_bound 2) (int_bound 5) (pair (int_bound 3) (int_bound 50))))
    (fun raw_ops ->
      let nodes = 4 in
      let pages = 3 in
      let words = pages * wpp in
      let cl = Cluster.create (Config.with_mm (Config.default ~nodes) mm) in
      let t0 = Cluster.create_task cl ~node:0 in
      let obj = Cluster.create_private_object cl ~node:0 ~size_pages:pages in
      Cluster.map cl ~task:t0 ~obj ~start:0 ~npages:pages
        ~inherit_:Address_map.Inherit_copy;
      let tasks = ref [| t0 |] in
      let refs = ref [| Array.make words 0 |] in
      let value = ref 0 in
      let sync_write task addr v =
        let ok = ref false in
        Cluster.write_word cl ~task ~addr ~value:v (fun () -> ok := true);
        Cluster.run cl;
        !ok
      in
      let sync_read task addr =
        let r = ref None in
        Cluster.read_word cl ~task ~addr (fun v -> r := Some v);
        Cluster.run cl;
        !r
      in
      let ops =
        List.map
          (fun (kind, gen_pick, (node, addr_pick)) ->
            match kind with
            | 0 -> Write (gen_pick, addr_pick mod words, 0)
            | 1 -> Fork (gen_pick, node)
            | _ -> Read (gen_pick, addr_pick mod words))
          raw_ops
      in
      List.for_all
        (fun op ->
          let gens = Array.length !tasks in
          match op with
          | Write (g, addr, _) ->
            let g = g mod gens in
            incr value;
            !refs.(g).(addr) <- !value;
            sync_write !tasks.(g) addr !value
          | Fork (g, node) ->
            let g = g mod gens in
            let child = ref None in
            Cluster.fork cl ~task:!tasks.(g) ~dst_node:node (fun c ->
                child := Some c);
            Cluster.run cl;
            (match !child with
            | Some c ->
              tasks := Array.append !tasks [| c |];
              refs := Array.append !refs [| Array.copy !refs.(g) |];
              true
            | None -> false)
          | Read (g, addr) ->
            let g = g mod gens in
            sync_read !tasks.(g) addr = Some !refs.(g).(addr))
        ops)

(* ----------------------- single-node VM model ----------------------- *)

(* Random sequences of writes, reads, local copies (fork-style) and
   forced evictions on one kernel, checked against per-generation
   snapshot arrays. Exercises symmetric/asymmetric chains interleaved
   with paging. *)
let vm_local_semantics =
  QCheck.Test.make ~name:"single-node VM matches snapshot reference" ~count:40
    QCheck.(small_list (triple (int_bound 3) (int_bound 31) (int_bound 2)))
    (fun raw_ops ->
      let module M = Asvm_machvm in
      let module Vm = M.Vm in
      let engine = Asvm_simcore.Engine.create () in
      let wpp = 4 in
      let config =
        { M.Vm_config.default with words_per_page = wpp; memory_pages = 6 }
      in
      let ids = M.Ids.Alloc.create () in
      let vm =
        Vm.create ~engine ~node:0 ~config ~backing:(M.Backing.in_memory ()) ~ids
      in
      let pages = 8 in
      let words = pages * wpp in
      let task0 = Vm.create_task vm in
      let obj0 =
        Vm.create_object vm ~id:(M.Ids.Alloc.fresh ids) ~size_pages:pages
          ~temporary:true
      in
      ignore
        (Vm.map vm ~task:task0 ~obj:obj0.M.Vm_object.id ~start:0 ~npages:pages
           ~obj_offset:0 ~inherit_:M.Address_map.Inherit_copy);
      let tasks = ref [| task0 |] in
      let objs = ref [| obj0.M.Vm_object.id |] in
      let refs = ref [| Array.make words 0 |] in
      let stamp = ref 0 in
      let sync_write task addr v =
        let ok = ref false in
        Vm.write_word vm ~task ~addr ~value:v (fun () -> ok := true);
        Asvm_simcore.Engine.run engine;
        !ok
      in
      let sync_read task addr =
        let r = ref None in
        Vm.read_word vm ~task ~addr (fun v -> r := Some v);
        Asvm_simcore.Engine.run engine;
        !r
      in
      List.for_all
        (fun (kind, addr_pick, gen_pick) ->
          let gens = Array.length !tasks in
          let g = gen_pick mod gens in
          let addr = addr_pick mod words in
          match kind with
          | 0 ->
            incr stamp;
            !refs.(g).(addr) <- !stamp;
            sync_write !tasks.(g) addr !stamp
          | 1 -> sync_read !tasks.(g) addr = Some !refs.(g).(addr)
          | 2 ->
            (* local fork of generation g via asymmetric copy *)
            let c = Vm.make_asymmetric_copy vm ~src:!objs.(g) in
            let child = Vm.create_task vm in
            ignore
              (Vm.map vm ~task:child ~obj:c.M.Vm_object.id ~start:0
                 ~npages:pages ~obj_offset:0
                 ~inherit_:M.Address_map.Inherit_copy);
            tasks := Array.append !tasks [| child |];
            objs := Array.append !objs [| c.M.Vm_object.id |];
            refs := Array.append !refs [| Array.copy !refs.(g) |];
            true
          | _ ->
            (* memory pressure: force an eviction if possible *)
            ignore (Vm.evict_one vm);
            Asvm_simcore.Engine.run engine;
            true)
        raw_ops)

(* ----------------------- zero-size caches ----------------------- *)

let test_zero_caches () =
  (* with both hint caches of size 0, every request falls through to
     global forwarding / the seen-bitmap paths — results must not change *)
  let config = Config.default ~nodes:4 in
  let config =
    {
      config with
      asvm = { config.asvm with dynamic_cache_pages = 0; static_cache_pages = 0 };
    }
  in
  let cl = Cluster.create config in
  let obj =
    Cluster.create_shared_object cl ~size_pages:4 ~sharers:[ 0; 1; 2; 3 ] ()
  in
  let task node =
    let t = Cluster.create_task cl ~node in
    Cluster.map cl ~task:t ~obj ~start:0 ~npages:4
      ~inherit_:Address_map.Inherit_share;
    t
  in
  let t0 = task 0 and t1 = task 1 and t2 = task 2 in
  let wr t addr v =
    Cluster.write_word cl ~task:t ~addr ~value:v (fun () -> ());
    Cluster.run cl
  in
  let rd t addr =
    let r = ref 0 in
    Cluster.read_word cl ~task:t ~addr (fun v -> r := v);
    Cluster.run cl;
    !r
  in
  wr t0 0 5;
  Alcotest.(check int) "read via sweeps" 5 (rd t1 0);
  wr t2 0 6;
  Alcotest.(check int) "write migrates via sweeps" 6 (rd t0 0);
  wr t1 0 7;
  Alcotest.(check int) "and again" 7 (rd t2 0)

(* ----------------------- flow control under starvation -------------- *)

let test_tiny_buffer_pool () =
  (* with a single receive buffer per node, requests defer and retry;
     the workload still completes with correct values *)
  let config = Config.default ~nodes:4 in
  let config =
    {
      config with
      asvm =
        {
          config.asvm with
          sts = { config.asvm.sts with Asvm_sts.Sts.page_buffers = 1 };
        };
    }
  in
  let cl = Cluster.create config in
  let pages = 6 in
  let obj =
    Cluster.create_shared_object cl ~size_pages:pages ~sharers:[ 0; 1; 2; 3 ] ()
  in
  let tasks =
    Array.init 4 (fun node ->
        let t = Cluster.create_task cl ~node in
        Cluster.map cl ~task:t ~obj ~start:0 ~npages:pages
          ~inherit_:Address_map.Inherit_share;
        t)
  in
  (* every node floods faults over all pages concurrently *)
  let remaining = ref (4 * pages) in
  Array.iter
    (fun task ->
      for p = 0 to pages - 1 do
        Cluster.write_word cl ~task ~addr:(p * wpp) ~value:p (fun () ->
            decr remaining)
      done)
    tasks;
  Cluster.run cl;
  Alcotest.(check int) "all writes completed despite starvation" 0 !remaining;
  let a = match Cluster.backend cl with `Asvm a -> a | `Xmm _ -> assert false in
  Alcotest.(check (list string)) "invariants clean" []
    (Asvm_core.Asvm.check_invariants a)

let test_em3d_deterministic () =
  let run () =
    let r =
      Asvm_workloads.Em3d.run ~mm:Config.Mm_asvm
        { cells = 8_000; nodes = 4; iterations = 3; seed = 99 }
    in
    (r.Asvm_workloads.Em3d.seconds, r.Asvm_workloads.Em3d.faults,
     r.Asvm_workloads.Em3d.protocol_messages)
  in
  Alcotest.(check bool) "bit-identical reruns" true (run () = run ())

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "properties"
    [
      ( "hint cache",
        [
          qtest hint_cache_capacity;
          qtest hint_cache_lru;
          qtest hint_cache_capacity_one;
          qtest hint_cache_retouch;
          qtest hint_cache_churn;
          qtest hint_cache_zero;
        ] );
      ( "address map",
        [
          qtest address_map_lookup;
          qtest address_map_no_overlap;
          qtest find_space_is_free;
        ] );
      ( "fork semantics",
        [ qtest (fork_semantics Config.Mm_asvm); qtest (fork_semantics Config.Mm_xmm) ] );
      ("vm model", [ qtest vm_local_semantics ]);
      ("forwarding", [ Alcotest.test_case "zero caches" `Quick test_zero_caches ]);
      ( "robustness",
        [
          Alcotest.test_case "tiny buffer pool" `Quick test_tiny_buffer_pool;
          Alcotest.test_case "em3d deterministic" `Quick test_em3d_deterministic;
        ] );
    ]
