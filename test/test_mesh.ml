(* Tests for the mesh topology and network model. *)

module Engine = Asvm_simcore.Engine
module Topology = Asvm_mesh.Topology
module Network = Asvm_mesh.Network

let test_topology_shapes () =
  let t = Topology.create ~nodes:16 in
  Alcotest.(check int) "width" 4 (Topology.width t);
  Alcotest.(check int) "height" 4 (Topology.height t);
  let t = Topology.create ~nodes:72 in
  (* the measurement machine of the paper: 72 GP nodes, 9x8 mesh *)
  Alcotest.(check int) "width 72" 9 (Topology.width t);
  Alcotest.(check int) "height 72" 8 (Topology.height t);
  let t = Topology.create ~nodes:1 in
  Alcotest.(check int) "single node diameter" 0 (Topology.diameter t)

let test_coords_roundtrip =
  QCheck.Test.make ~name:"coords/node_at roundtrip" ~count:200
    QCheck.(pair (int_range 1 100) (int_range 0 99))
    (fun (nodes, node) ->
      QCheck.assume (node < nodes);
      let t = Topology.create ~nodes in
      let x, y = Topology.coords t node in
      Topology.node_at t ~x ~y = node)

let test_hops_metric =
  QCheck.Test.make ~name:"hop count is a metric" ~count:200
    QCheck.(triple (int_range 2 80) (int_range 0 79) (int_range 0 79))
    (fun (nodes, a, b) ->
      QCheck.assume (a < nodes && b < nodes);
      let t = Topology.create ~nodes in
      Topology.hops t a b = Topology.hops t b a
      && Topology.hops t a a = 0
      && (a = b || Topology.hops t a b > 0))

let test_hops_example () =
  let t = Topology.create ~nodes:16 in
  (* node 0 = (0,0), node 15 = (3,3) *)
  Alcotest.(check int) "corner to corner" 6 (Topology.hops t 0 15);
  Alcotest.(check int) "adjacent" 1 (Topology.hops t 0 1);
  Alcotest.(check int) "diameter" 6 (Topology.diameter t)

let make_net ?(nodes = 4) () =
  let e = Engine.create () in
  let topo = Topology.create ~nodes in
  let net = Network.create e Network.paragon_config topo in
  (e, net)

let test_delivery_time () =
  let e, net = make_net () in
  let arrived = ref 0. in
  Network.send net ~src:0 ~dst:3 ~bytes:8192 ~sw_send:0.1 ~sw_recv:0.1
    (fun () -> arrived := Engine.now e);
  Engine.run e;
  let wire = Network.wire_latency net ~src:0 ~dst:3 ~bytes:8192 in
  Alcotest.(check (float 1e-9)) "sw + wire + sw" (0.2 +. wire) !arrived;
  Alcotest.(check int) "message counted" 1 (Network.messages net);
  Alcotest.(check int) "bytes counted" 8192 (Network.bytes_sent net)

let test_loopback_free_wire () =
  let _, net = make_net () in
  Alcotest.(check (float 1e-9))
    "loopback has no wire latency" 0.
    (Network.wire_latency net ~src:2 ~dst:2 ~bytes:8192)

let test_loopback_delivery () =
  (* src = dst skips the wire but still pays both software paths and
     actually delivers *)
  let e, net = make_net () in
  let arrived = ref (-1.) in
  Network.send net ~src:2 ~dst:2 ~bytes:32 ~sw_send:0.1 ~sw_recv:0.3 (fun () ->
      arrived := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "sw_send + sw_recv only" 0.4 !arrived;
  Alcotest.(check int) "loopback still counted" 1 (Network.messages net)

let test_send_rejects_bad_node_ids () =
  let _, net = make_net () in
  let attempt ~src ~dst =
    Network.send net ~src ~dst ~bytes:32 ~sw_send:0. ~sw_recv:0. ignore
  in
  Alcotest.check_raises "dst out of range"
    (Invalid_argument
       "Network.send: node id out of range (src=0 dst=99 nodes=4)") (fun () ->
      attempt ~src:0 ~dst:99);
  Alcotest.check_raises "negative src"
    (Invalid_argument
       "Network.send: node id out of range (src=-1 dst=3 nodes=4)") (fun () ->
      attempt ~src:(-1) ~dst:3);
  Alcotest.(check int) "nothing was sent" 0 (Network.messages net)

let test_receiver_serializes () =
  (* Two messages from different senders to one receiver: the second is
     delayed by the receiver's software path — the effect that makes a
     centralized manager a bottleneck. *)
  let e, net = make_net () in
  let t1 = ref 0. and t2 = ref 0. in
  Network.send net ~src:1 ~dst:0 ~bytes:32 ~sw_send:0.0 ~sw_recv:1.0 (fun () ->
      t1 := Engine.now e);
  Network.send net ~src:2 ~dst:0 ~bytes:32 ~sw_send:0.0 ~sw_recv:1.0 (fun () ->
      t2 := Engine.now e);
  Engine.run e;
  Alcotest.(check bool) "second queues behind first" true (!t2 -. !t1 >= 1.0)

let test_wire_monotone_in_hops =
  QCheck.Test.make ~name:"wire latency grows with hop count" ~count:100
    QCheck.(triple (int_range 4 64) (int_range 0 63) (int_range 0 63))
    (fun (nodes, a, b) ->
      QCheck.assume (a < nodes && b < nodes && a <> b);
      let t = Topology.create ~nodes in
      let e = Engine.create () in
      let net = Network.create e Network.paragon_config t in
      let la = Network.wire_latency net ~src:a ~dst:b ~bytes:32 in
      let lb = Network.wire_latency net ~src:a ~dst:b ~bytes:8192 in
      la < lb)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "mesh"
    [
      ( "topology",
        [
          Alcotest.test_case "shapes" `Quick test_topology_shapes;
          qtest test_coords_roundtrip;
          qtest test_hops_metric;
          Alcotest.test_case "hop examples" `Quick test_hops_example;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery time" `Quick test_delivery_time;
          Alcotest.test_case "loopback" `Quick test_loopback_free_wire;
          Alcotest.test_case "loopback delivery" `Quick test_loopback_delivery;
          Alcotest.test_case "bad node ids" `Quick
            test_send_rejects_bad_node_ids;
          Alcotest.test_case "receiver serializes" `Quick test_receiver_serializes;
          qtest test_wire_monotone_in_hops;
        ] );
    ]
