(* Tests for NORMA-IPC and STS transports. *)

module Engine = Asvm_simcore.Engine
module Topology = Asvm_mesh.Topology
module Network = Asvm_mesh.Network
module Ipc = Asvm_norma.Ipc
module Sts = Asvm_sts.Sts

let make ?(nodes = 4) () =
  let e = Engine.create () in
  let topo = Topology.create ~nodes in
  let net = Network.create e Network.paragon_config topo in
  (e, net)

(* ---------------- NORMA ---------------- *)

let test_norma_delivery () =
  let e, net = make () in
  let ipc = Ipc.create net Ipc.default_config in
  let got = ref None in
  let p =
    Ipc.port ipc ~node:2 ~handler:(fun _port msg ->
        got := Some (msg, Engine.now e))
  in
  Alcotest.(check int) "port node" 2 (Ipc.port_node p);
  Ipc.send ipc ~src:0 ~dst:p "hello";
  Engine.run e;
  (match !got with
  | Some ("hello", t) ->
    Alcotest.(check bool) "paid heavy software path" true (t > 1.0)
  | _ -> Alcotest.fail "message not delivered");
  Alcotest.(check int) "count" 1 (Ipc.messages ipc)

let test_norma_page_slower () =
  let e, net = make () in
  let ipc = Ipc.create net Ipc.default_config in
  let t_hdr = ref 0. and t_page = ref 0. in
  let p1 = Ipc.port ipc ~node:1 ~handler:(fun _ () -> t_hdr := Engine.now e) in
  let p2 = Ipc.port ipc ~node:2 ~handler:(fun _ () -> t_page := Engine.now e) in
  Ipc.send ipc ~src:0 ~dst:p1 ();
  Ipc.send ipc ~src:3 ~dst:p2 ~carries_page:true ();
  Engine.run e;
  Alcotest.(check bool) "page message costs more" true (!t_page > !t_hdr);
  Alcotest.(check int) "page message counted" 1 (Ipc.page_messages ipc)

let test_norma_rights_cost () =
  let e, net = make () in
  let ipc = Ipc.create net Ipc.default_config in
  let t1 = ref 0. and t5 = ref 0. in
  let p1 = Ipc.port ipc ~node:1 ~handler:(fun _ () -> t1 := Engine.now e) in
  let p2 = Ipc.port ipc ~node:2 ~handler:(fun _ () -> t5 := Engine.now e) in
  Ipc.send ipc ~src:0 ~dst:p1 ~rights:1 ();
  Ipc.send ipc ~src:3 ~dst:p2 ~rights:5 ();
  Engine.run e;
  Alcotest.(check bool) "port rights cost" true (!t5 > !t1)

(* ---------------- STS ---------------- *)

let test_sts_delivery_and_economy () =
  let e, net = make () in
  let sts = Sts.create net Sts.default_config in
  let ipc = Ipc.create net Ipc.default_config in
  let t_sts = ref 0. in
  Sts.register sts ~node:1 (fun () -> t_sts := Engine.now e);
  Sts.send sts ~src:0 ~dst:1 ();
  Engine.run e;
  let t_norma = ref 0. in
  let e2, net2 = make () in
  ignore net;
  let ipc2 = Ipc.create net2 Ipc.default_config in
  ignore ipc;
  let p = Ipc.port ipc2 ~node:1 ~handler:(fun _ () -> t_norma := Engine.now e2) in
  Ipc.send ipc2 ~src:0 ~dst:p ();
  Engine.run e2;
  Alcotest.(check bool)
    "STS is much cheaper than NORMA (paper: NORMA ~90% of fault latency)"
    true
    (!t_sts *. 2. < !t_norma)

let test_sts_requires_handler () =
  let _, net = make () in
  let sts = Sts.create net Sts.default_config in
  Alcotest.check_raises "no handler"
    (Sts.Protocol_violation
       { node = 3; what = "send: no handler registered at destination" })
    (fun () -> Sts.send sts ~src:0 ~dst:3 ())

let test_sts_flow_control () =
  let e, net = make () in
  let config = { Sts.default_config with page_buffers = 2 } in
  let sts = Sts.create net config in
  Sts.register sts ~node:1 ignore;
  (* pages may only flow against a reserved receive buffer; the
     violation names the node whose credit pool was bypassed *)
  Alcotest.check_raises "unreserved page send"
    (Sts.Protocol_violation
       {
         node = 1;
         what = "send: page sent without a reserved receive buffer (src=0)";
       })
    (fun () -> Sts.send sts ~src:0 ~dst:1 ~carries_page:true ());
  Alcotest.(check bool) "reserve 1" true (Sts.reserve_buffer sts ~node:1);
  Alcotest.(check bool) "reserve 2" true (Sts.reserve_buffer sts ~node:1);
  Alcotest.(check bool) "pool exhausted" false (Sts.reserve_buffer sts ~node:1);
  Sts.send sts ~src:0 ~dst:1 ~carries_page:true ();
  Sts.release_buffer sts ~node:1;
  Alcotest.(check int) "one still reserved" 1 (Sts.buffers_reserved sts ~node:1);
  Sts.release_buffer sts ~node:1;
  Alcotest.check_raises "over-release"
    (Sts.Protocol_violation { node = 1; what = "release_buffer: pool underflow" })
    (fun () -> Sts.release_buffer sts ~node:1);
  Engine.run e;
  Alcotest.(check int) "page message counted" 1 (Sts.page_messages sts)

let test_sts_reliable_retransmit () =
  (* the logical-level interposer eats the first transmission; the
     reliability layer must notice the missing ack and retransmit *)
  let e, net = make () in
  let interposer ~now:_ ~index ~src:_ ~dst:_ ~carries_page:_ =
    if index = 0 then Sts.{ deliveries = [] } else Sts.pass
  in
  let config =
    {
      Sts.default_config with
      reliability = Some Sts.default_reliability;
      interposer = Some interposer;
    }
  in
  let sts = Sts.create net config in
  let got = ref 0 in
  Sts.register sts ~node:2 (fun () -> incr got);
  Sts.send sts ~src:0 ~dst:2 ();
  Engine.run e;
  Alcotest.(check int) "delivered exactly once" 1 !got;
  Alcotest.(check int) "one retransmission" 1 (Sts.retransmits sts);
  Alcotest.(check int) "still one logical message" 1 (Sts.messages sts)

let test_sts_reliable_dedup () =
  (* every transmission is duplicated; the receiver must suppress the
     copies and still ack them all *)
  let e, net = make () in
  let interposer ~now:_ ~index:_ ~src:_ ~dst:_ ~carries_page:_ =
    Sts.{ deliveries = [ 0.; 0.05 ] }
  in
  let config =
    {
      Sts.default_config with
      reliability = Some Sts.default_reliability;
      interposer = Some interposer;
    }
  in
  let sts = Sts.create net config in
  let got = ref 0 in
  Sts.register sts ~node:1 (fun () -> incr got);
  for _ = 1 to 3 do
    Sts.send sts ~src:0 ~dst:1 ()
  done;
  Engine.run e;
  Alcotest.(check int) "each logical message delivered once" 3 !got;
  Alcotest.(check int) "duplicates suppressed" 3 (Sts.duplicates_dropped sts);
  Alcotest.(check int) "no retransmissions needed" 0 (Sts.retransmits sts)

let test_sts_reliable_gives_up () =
  (* a black-holed link must surface as a structured violation rather
     than retrying forever *)
  let e, net = make () in
  let interposer ~now:_ ~index:_ ~src:_ ~dst:_ ~carries_page:_ =
    Sts.{ deliveries = [] }
  in
  let config =
    {
      Sts.default_config with
      reliability =
        Some { Sts.default_reliability with max_retransmits = 2 };
      interposer = Some interposer;
    }
  in
  let sts = Sts.create net config in
  Sts.register sts ~node:1 ignore;
  Sts.send sts ~src:0 ~dst:1 ();
  Alcotest.check_raises "link declared broken"
    (Sts.Protocol_violation
       {
         node = 0;
         what = "reliable send to node 1 gave up after 2 retransmits (seq=0)";
       })
    (fun () -> Engine.run e)

let test_sts_message_ordering_per_pair () =
  (* messages between one src/dst pair arrive in send order (same
     stations, same wire) *)
  let e, net = make () in
  let sts = Sts.create net Sts.default_config in
  let log = ref [] in
  Sts.register sts ~node:2 (fun i -> log := i :: !log);
  for i = 1 to 5 do
    Sts.send sts ~src:0 ~dst:2 i
  done;
  Engine.run e;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let () =
  Alcotest.run "transports"
    [
      ( "norma",
        [
          Alcotest.test_case "delivery" `Quick test_norma_delivery;
          Alcotest.test_case "page cost" `Quick test_norma_page_slower;
          Alcotest.test_case "rights cost" `Quick test_norma_rights_cost;
        ] );
      ( "sts",
        [
          Alcotest.test_case "delivery + economy" `Quick test_sts_delivery_and_economy;
          Alcotest.test_case "requires handler" `Quick test_sts_requires_handler;
          Alcotest.test_case "flow control" `Quick test_sts_flow_control;
          Alcotest.test_case "ordering" `Quick test_sts_message_ordering_per_pair;
          Alcotest.test_case "reliable retransmit" `Quick
            test_sts_reliable_retransmit;
          Alcotest.test_case "reliable dedup" `Quick test_sts_reliable_dedup;
          Alcotest.test_case "reliable gives up" `Quick
            test_sts_reliable_gives_up;
        ] );
    ]
