(* Tests for whole-node crash & rejoin (docs/AVAILABILITY.md):
   deterministic crash cells under every workload, k-of-n rolling
   schedules under both protocols, jobs-independence of crash-cell
   outcomes, down-node silence after a crash, and convergence when the
   survivors' hint caches all point at the dead node. *)

module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Vm = Asvm_machvm.Vm
module Vm_config = Asvm_machvm.Vm_config
module Address_map = Asvm_machvm.Address_map
module Trace = Asvm_obs.Trace
module Engine = Asvm_simcore.Engine
module Plan = Asvm_chaos.Plan
module Invariants = Asvm_chaos.Invariants
module Soak = Asvm_chaos.Soak
module Runner = Asvm_runner.Runner

(* ------------------- rolling-schedule arithmetic ------------------- *)

let test_rolling_shape () =
  let plan = Plan.rolling ~victims:[ 2; 3; 4 ] ~k:2 ~start_ms:1.0 ~every_ms:2.0 () in
  Alcotest.(check int) "one crash per victim" 3 (List.length plan.Plan.crashes);
  List.iteri
    (fun i (c : Plan.crash) ->
      Alcotest.(check int) "victims in order" (2 + i) c.Plan.c_victim;
      Alcotest.(check (float 1e-9))
        "cadence is start + i*every" (1.0 +. (float_of_int i *. 2.0))
        c.Plan.c_at_ms;
      match c.Plan.c_down_ms with
      | Some d ->
        (* just short of k periods, so k nodes are down at steady state *)
        Alcotest.(check (float 1e-9)) "down time is (k - 0.1) periods" 3.8 d
      | None -> Alcotest.fail "rolling crashes must rejoin")
    plan.Plan.crashes;
  Alcotest.(check bool) "k=0 rejected" true
    (try
       ignore (Plan.rolling ~victims:[ 1 ] ~k:0 ~start_ms:0. ~every_ms:1. ());
       false
     with Invalid_argument _ -> true)

(* --------------- deterministic crash cells, k = 1 ------------------ *)

let check_outcome tag (o : Soak.outcome) =
  Alcotest.(check bool) (tag ^ " completed") true o.Soak.completed;
  Alcotest.(check (list string)) (tag ^ " invariants hold") [] o.Soak.violations;
  Alcotest.(check bool) (tag ^ " crashes executed") true (o.Soak.crashes > 0);
  Alcotest.(check int) (tag ^ " every crash rejoined") o.Soak.crashes
    o.Soak.rejoins

let crash_cell (mm, workload, k) =
  let reliable = mm = Config.Mm_asvm in
  Soak.run_one ~quick:true ~mm ~workload
    ~plan:(Soak.crash_plan ~workload ~k)
    ~reliable ()

let test_crash_cells_each_workload () =
  let cells = List.map (fun w -> (Config.Mm_asvm, w, 1)) Soak.workloads in
  let outcomes = Runner.map crash_cell cells in
  List.iter2
    (fun (_, w, _) o -> check_outcome (Printf.sprintf "ASVM %s k=1" w) o)
    cells outcomes

(* ---------------- k = 2 rolling, both protocols -------------------- *)

let test_k2_rolling_both_protocols () =
  let cells =
    List.concat_map
      (fun w -> [ (Config.Mm_asvm, w, 2); (Config.Mm_xmm, w, 2) ])
      Soak.workloads
  in
  let outcomes = Runner.map crash_cell cells in
  List.iter2
    (fun (mm, w, _) o ->
      check_outcome (Printf.sprintf "%s %s k=2" (Config.mm_name mm) w) o)
    cells outcomes

(* ------------- outcomes independent of worker count ---------------- *)

let outcome_digest (o : Soak.outcome) =
  Printf.sprintf "%s/%s ok=%b v=%d crash=%d rejoin=%d lost=%d sim=%.6f"
    (Config.mm_name o.Soak.mm) o.Soak.workload o.Soak.completed
    (List.length o.Soak.violations)
    o.Soak.crashes o.Soak.rejoins o.Soak.lost_pages o.Soak.sim_ms

let test_outcomes_independent_of_jobs () =
  let cells =
    [
      (Config.Mm_asvm, "fault", 1);
      (Config.Mm_asvm, "file", 2);
      (Config.Mm_asvm, "em3d", 2);
      (Config.Mm_xmm, "chain", 1);
    ]
  in
  let digest cell = outcome_digest (crash_cell cell) in
  let sequential = Runner.map ~jobs:1 digest cells in
  let parallel = Runner.map ~jobs:4 digest cells in
  Alcotest.(check (list string))
    "identical crash-cell outcomes at any job count" sequential parallel

(* --------------- direct crash scenario on a cluster ----------------

   A 5-node ASVM cluster; node 3 writes two pages of a shared object
   (becoming their owner), nodes 1 and 2 read one of them (acquiring
   dynamic hints that point at node 3), then node 3 crashes and never
   rejoins.  The survivors' subsequent writes must converge through
   re-election even though every hint they hold is poisoned. *)

let make_crashed_owner_scenario () =
  let cfg = Config.default ~nodes:5 in
  let cfg = { cfg with Config.trace_capacity = Some 65536 } in
  let cl = Cluster.create cfg in
  let wpp = (Cluster.config cl).Config.vm.Vm_config.words_per_page in
  let obj =
    Cluster.create_shared_object cl ~size_pages:2 ~sharers:[ 1; 2; 3 ] ()
  in
  let task n =
    let t = Cluster.create_task cl ~node:n in
    Cluster.map cl ~task:t ~obj ~start:0 ~npages:2
      ~inherit_:Address_map.Inherit_share;
    t
  in
  let t1, t2, t3 = (task 1, task 2, task 3) in
  let sync k =
    let ok = ref false in
    k (fun () -> ok := true);
    Cluster.run cl;
    if not !ok then Alcotest.fail "operation did not complete"
  in
  (* node 3 becomes owner of both pages *)
  sync (fun k ->
      Cluster.write_word cl ~task:t3 ~addr:0 ~value:31 (fun () -> k ()));
  sync (fun k ->
      Cluster.write_word cl ~task:t3 ~addr:wpp ~value:32 (fun () -> k ()));
  (* nodes 1 and 2 read page 0: their hint chains now point at node 3 *)
  sync (fun k -> Cluster.touch cl ~task:t1 ~vpage:0 ~want:Prot.Read_only k);
  sync (fun k -> Cluster.touch cl ~task:t2 ~vpage:0 ~want:Prot.Read_only k);
  Alcotest.(check bool) "victim is crashable" true
    (Cluster.crashable cl ~node:3);
  let crash_time = Cluster.now cl in
  Cluster.crash_node cl ~node:3;
  (cl, t1, t2, wpp, crash_time, sync)

let test_poisoned_hints_converge () =
  let cl, t1, t2, wpp, _crash_time, sync = make_crashed_owner_scenario () in
  (* both survivors write through their stale hints; page 1's only copy
     died with node 3, so its re-read must come back zero-filled via the
     pager rather than hang *)
  sync (fun k ->
      Cluster.write_word cl ~task:t1 ~addr:1 ~value:100 (fun () -> k ()));
  sync (fun k ->
      Cluster.read_word cl ~task:t2 ~addr:1 (fun v ->
          Alcotest.(check int) "survivor reads the survivor's write" 100 v;
          k ()));
  sync (fun k ->
      Cluster.read_word cl ~task:t2 ~addr:wpp (fun v ->
          Alcotest.(check int) "sole-copy page lost with the node" 0 v;
          k ()));
  Alcotest.(check (list string)) "invariants hold after recovery" []
    (Invariants.check cl)

let test_down_node_silence () =
  let cl, t1, t2, _wpp, crash_time, sync = make_crashed_owner_scenario () in
  sync (fun k ->
      Cluster.write_word cl ~task:t1 ~addr:1 ~value:100 (fun () -> k ()));
  sync (fun k -> Cluster.touch cl ~task:t2 ~vpage:0 ~want:Prot.Read_only k);
  let trace =
    match Cluster.trace cl with
    | Some tr -> tr
    | None -> Alcotest.fail "trace not enabled"
  in
  let post_crash_victim_events =
    List.filter
      (fun (e : Trace.event) ->
        e.Trace.node = 3
        && e.Trace.time >= crash_time
        &&
        match e.Trace.kind with
        | Trace.Note { category = "crash"; _ } -> false (* administrative *)
        | _ -> true)
      (Trace.events trace)
  in
  Alcotest.(check int) "a crashed node generates no events" 0
    (List.length post_crash_victim_events);
  Alcotest.(check int) "no pages remain resident on the victim" 0
    (Vm.resident_total (Cluster.node_vm cl 3))

let test_rejoin_reuses_task () =
  let cl, t1, _t2, _wpp, _crash_time, sync = make_crashed_owner_scenario () in
  sync (fun k ->
      Cluster.write_word cl ~task:t1 ~addr:1 ~value:100 (fun () -> k ()));
  Cluster.rejoin_node cl ~node:3;
  Alcotest.(check bool) "node is back up" false (Cluster.node_down cl ~node:3);
  (* a fresh task on the rejoined node re-faults from empty caches and
     sees the survivor's write *)
  let t3 = Cluster.create_task cl ~node:3 in
  Cluster.map cl ~task:t3
    ~obj:(fst (List.hd (Cluster.registered_objects cl)))
    ~start:0 ~npages:2 ~inherit_:Address_map.Inherit_share;
  sync (fun k ->
      Cluster.read_word cl ~task:t3 ~addr:1 (fun v ->
          Alcotest.(check int) "rejoined node reads current contents" 100 v;
          k ()));
  Alcotest.(check (list string)) "invariants hold after rejoin" []
    (Invariants.check cl)

let () =
  Alcotest.run "crash"
    [
      ( "plan",
        [ Alcotest.test_case "rolling schedule shape" `Quick test_rolling_shape ] );
      ( "cells",
        [
          Alcotest.test_case "every workload survives k=1" `Slow
            test_crash_cells_each_workload;
          Alcotest.test_case "both protocols survive k=2" `Slow
            test_k2_rolling_both_protocols;
          Alcotest.test_case "outcomes independent of --jobs" `Slow
            test_outcomes_independent_of_jobs;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "poisoned hints converge" `Quick
            test_poisoned_hints_converge;
          Alcotest.test_case "crashed node stays silent" `Quick
            test_down_node_silence;
          Alcotest.test_case "rejoin restores the node" `Quick
            test_rejoin_reuses_task;
        ] );
    ]
