(* Unit and property tests for the discrete-event core. *)

module Engine = Asvm_simcore.Engine
module Event_queue = Asvm_simcore.Event_queue
module Station = Asvm_simcore.Station
module Rng = Asvm_simcore.Rng
module Stats = Asvm_simcore.Stats

let test_queue_order () =
  let q = Event_queue.create () in
  let order = ref [] in
  let ev tag () = order := tag :: !order in
  Event_queue.add q ~time:3.0 ~seq:0 (ev "c");
  Event_queue.add q ~time:1.0 ~seq:1 (ev "a");
  Event_queue.add q ~time:2.0 ~seq:2 (ev "b");
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, _, run) ->
      run ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  let order = ref [] in
  for i = 0 to 9 do
    Event_queue.add q ~time:1.0 ~seq:i (fun () -> order := i :: !order)
  done;
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, _, run) ->
      run ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int))
    "seq order on equal times"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !order)

let test_queue_heap_property =
  QCheck.Test.make ~name:"event queue pops in nondecreasing time order"
    ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i time -> Event_queue.add q ~time ~seq:i ignore) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (time, _, _) -> time >= last && drain time
      in
      drain neg_infinity)

let test_engine_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5. (fun () -> log := ("b", Engine.now e) :: !log);
  Engine.schedule e ~delay:1. (fun () ->
      log := ("a", Engine.now e) :: !log;
      Engine.schedule e ~delay:1. (fun () -> log := ("a2", Engine.now e) :: !log));
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "nested scheduling"
    [ ("a", 1.); ("a2", 2.); ("b", 5.) ]
    (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired)
  done;
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "events before cutoff" 5 !fired;
  Alcotest.(check (float 1e-9)) "clock advanced to cutoff" 5.5 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest of events" 10 !fired

let test_engine_max_events_per_run () =
  (* regression: [max_events] used to compare against the engine's
     cumulative executed count, so a second bounded run did nothing *)
  let e = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired)
  done;
  Engine.run ~max_events:3 e;
  Alcotest.(check int) "first bounded run" 3 !fired;
  Engine.run ~max_events:3 e;
  Alcotest.(check int) "second bounded run executes too" 6 !fired;
  Engine.run e;
  Alcotest.(check int) "drain the rest" 10 !fired;
  Alcotest.(check int) "cumulative count intact" 10 (Engine.events_executed e)

let test_queue_pop_into () =
  let q = Event_queue.create () in
  let s = Event_queue.slot () in
  Alcotest.(check bool) "empty queue" false (Event_queue.pop_into q s);
  let order = ref [] in
  Event_queue.add q ~time:2.0 ~seq:0 (fun () -> order := "b" :: !order);
  Event_queue.add q ~time:1.0 ~seq:1 (fun () -> order := "a" :: !order);
  let times = ref [] in
  while Event_queue.pop_into q s do
    times := s.Event_queue.s_time :: !times;
    s.Event_queue.s_run ()
  done;
  Alcotest.(check (list string)) "runs in time order" [ "a"; "b" ]
    (List.rev !order);
  Alcotest.(check (list (float 1e-9))) "slot carries times" [ 1.0; 2.0 ]
    (List.rev !times);
  (* a failed pop leaves the slot untouched *)
  Alcotest.(check bool) "drained" false (Event_queue.pop_into q s);
  Alcotest.(check (float 1e-9)) "slot untouched on empty" 2.0
    s.Event_queue.s_time

let test_engine_rejects_past () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.) ignore)

let test_station_fifo () =
  let e = Engine.create () in
  let st = Station.create e in
  let completions = ref [] in
  Station.submit st ~service:2. (fun () ->
      completions := ("a", Engine.now e) :: !completions);
  Station.submit st ~service:3. (fun () ->
      completions := ("b", Engine.now e) :: !completions);
  (* submitted later while the server is busy: queues behind *)
  Engine.schedule e ~delay:1. (fun () ->
      Station.submit st ~service:1. (fun () ->
          completions := ("c", Engine.now e) :: !completions));
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "FIFO completion times"
    [ ("a", 2.); ("b", 5.); ("c", 6.) ]
    (List.rev !completions)

let test_station_idle_gap () =
  let e = Engine.create () in
  let st = Station.create e in
  let t = ref 0. in
  Station.submit st ~service:1. (fun () -> ());
  Engine.schedule e ~delay:10. (fun () ->
      Station.submit st ~service:1. (fun () -> t := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 1e-9)) "idle server starts immediately" 11. !t

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys

let test_rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let test_rng_split_independent () =
  let r = Rng.create 7 in
  let r' = Rng.split r in
  let xs = List.init 50 (fun _ -> Rng.int r 1000000) in
  let ys = List.init 50 (fun _ -> Rng.int r' 1000000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_tally () =
  let t = Stats.Tally.create () in
  List.iter (Stats.Tally.add t) [ 1.; 2.; 3.; 4. ];
  let s = Stats.Tally.summary t in
  Alcotest.(check int) "n" 4 s.n;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.min;
  Alcotest.(check (float 1e-9)) "max" 4. s.max;
  Alcotest.(check (float 1e-9)) "total" 10. s.total;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 s.stddev

let test_counters () =
  let c = Stats.Counters.create () in
  Stats.Counters.incr c "x";
  Stats.Counters.incr ~by:4 c "x";
  Stats.Counters.incr c "y";
  Alcotest.(check int) "x" 5 (Stats.Counters.get c "x");
  Alcotest.(check int) "y" 1 (Stats.Counters.get c "y");
  Alcotest.(check int) "absent" 0 (Stats.Counters.get c "z")

let test_histogram () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check int) "count" 5 (Stats.Histogram.count h);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.Histogram.median h);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.Histogram.percentile h 0.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.Histogram.percentile h 100.);
  Alcotest.(check (float 1e-9)) "p25" 2. (Stats.Histogram.percentile h 25.)

let histogram_bounds =
  QCheck.Test.make ~name:"percentiles stay within sample range" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_bound_inclusive 100.)) (float_bound_inclusive 100.))
    (fun (samples, p) ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) samples;
      let v = Stats.Histogram.percentile h p in
      let lo = List.fold_left min infinity samples in
      let hi = List.fold_left max neg_infinity samples in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let test_linear_fit () =
  let s = Stats.Series.create "lat" in
  (* y = 2.7 + 0.48 x, the paper's ASVM Figure 11 model *)
  List.iter
    (fun x -> Stats.Series.add s ~x ~y:(2.7 +. (0.48 *. x)))
    [ 1.; 2.; 4.; 6.; 8. ];
  let intercept, slope = Stats.Series.linear_fit s in
  Alcotest.(check (float 1e-9)) "intercept" 2.7 intercept;
  Alcotest.(check (float 1e-9)) "slope" 0.48 slope

let test_tracer_ring () =
  let t = Asvm_simcore.Tracer.create ~capacity:3 in
  for i = 1 to 5 do
    Asvm_simcore.Tracer.emit (Some t) ~time:(float_of_int i) ~node:0
      ~category:"x" ~detail:(string_of_int i)
  done;
  Alcotest.(check int) "emitted counts all" 5 (Asvm_simcore.Tracer.emitted t);
  let kept =
    List.map
      (fun (e : Asvm_simcore.Tracer.event) -> e.detail)
      (Asvm_simcore.Tracer.events t)
  in
  Alcotest.(check (list string)) "ring keeps newest, in order" [ "3"; "4"; "5" ]
    kept;
  Asvm_simcore.Tracer.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Asvm_simcore.Tracer.events t))

let test_tracer_none_noop () =
  (* emitting to an absent tracer must be free and safe *)
  Asvm_simcore.Tracer.emit None ~time:0. ~node:0 ~category:"x" ~detail:"y"

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "simcore"
    [
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_order;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "pop_into" `Quick test_queue_pop_into;
          qtest test_queue_heap_property;
        ] );
      ( "engine",
        [
          Alcotest.test_case "schedule" `Quick test_engine_schedule;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "max_events per run" `Quick
            test_engine_max_events_per_run;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
        ] );
      ( "station",
        [
          Alcotest.test_case "fifo queueing" `Quick test_station_fifo;
          Alcotest.test_case "idle gap" `Quick test_station_idle_gap;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          qtest test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          qtest test_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "tally" `Quick test_tally;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram" `Quick test_histogram;
          qtest histogram_bounds;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "tracer ring" `Quick test_tracer_ring;
          Alcotest.test_case "tracer none" `Quick test_tracer_none_noop;
        ] );
    ]
