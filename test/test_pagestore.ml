(* Property and unit tests for the copy-on-write page store: snapshot
   immutability, checksum-cache consistency, zero-page interning, and
   aliasing safety through the pager and backing store. *)

module Contents = Asvm_machvm.Contents
module Backing = Asvm_machvm.Backing
module Engine = Asvm_simcore.Engine
module Disk = Asvm_pager.Disk
module Store_pager = Asvm_pager.Store_pager

let wpp = 8

(* reference checksum: recomputed from the words every time, bypassing
   the memo — pins both the algorithm and the cache's consistency *)
let ref_checksum c =
  let n = Contents.words c in
  let acc = ref n in
  for i = 0 to n - 1 do
    acc := (!acc * 1000003) lxor Contents.get c i
  done;
  !acc

let image c = List.init (Contents.words c) (Contents.get c)

let apply_writes c ws = List.iter (fun (i, v) -> Contents.set c i v) ws

let gen_writes =
  QCheck.(small_list (pair (int_bound (wpp - 1)) (int_bound 1000)))

let prop_snapshot_immutable =
  QCheck.Test.make ~name:"snapshot is immutable under writer mutation"
    ~count:300
    QCheck.(pair gen_writes gen_writes)
    (fun (before, after) ->
      let src = Contents.zero ~words:wpp in
      apply_writes src before;
      let snap = Contents.snapshot src in
      let frozen = image snap in
      apply_writes src after;
      (* the snapshot still shows the image at snapshot time *)
      image snap = frozen
      (* and writing the snapshot does not leak into the source *)
      &&
      let src_now = image src in
      Contents.set snap 0 424242;
      image src = src_now)

let prop_checksum_cache =
  (* arbitrary interleaving of writes, snapshots and checksum calls:
     the memoized checksum must always equal a fresh recompute *)
  QCheck.Test.make ~name:"memoized checksum equals fresh recompute" ~count:300
    QCheck.(small_list (pair bool gen_writes))
    (fun script ->
      let src = Contents.zero ~words:wpp in
      let holders = ref [ src ] in
      List.for_all
        (fun (snap_first, ws) ->
          if snap_first then
            holders := Contents.snapshot (List.hd !holders) :: !holders;
          apply_writes (List.hd !holders) ws;
          List.for_all
            (fun c -> Contents.checksum c = ref_checksum c)
            !holders
          (* a second call must hit the cache and agree *)
          && List.for_all
               (fun c -> Contents.checksum c = ref_checksum c)
               !holders)
        script)

let prop_copy_equal =
  QCheck.Test.make ~name:"copy compares equal until diverged" ~count:300
    gen_writes
    (fun ws ->
      let a = Contents.zero ~words:wpp in
      apply_writes a ws;
      let b = Contents.copy a in
      Contents.equal a b
      && Contents.checksum a = Contents.checksum b
      &&
      (Contents.set b 0 (Contents.get a 0 + 1);
       not (Contents.equal a b)))

let test_zero_interned () =
  let a = Contents.zero ~words:wpp in
  let b = Contents.zero ~words:wpp in
  Alcotest.(check bool) "both zero" true (Contents.is_zero a && Contents.is_zero b);
  Alcotest.(check bool) "equal" true (Contents.equal a b);
  Alcotest.(check int) "same checksum" (Contents.checksum a) (Contents.checksum b);
  (* writing one zero page must not corrupt the interned singleton *)
  Contents.set a 3 7;
  Alcotest.(check bool) "written page no longer zero" false (Contents.is_zero a);
  Alcotest.(check bool) "sibling still zero" true (Contents.is_zero b);
  let c = Contents.zero ~words:wpp in
  Alcotest.(check bool) "fresh zero page unaffected" true (Contents.is_zero c);
  Alcotest.(check int) "zero word readable" 0 (Contents.get c 3)

let test_stats_accounting () =
  let s0 = Contents.stats () in
  let a = Contents.zero ~words:wpp in
  Contents.set a 0 1 (* materializes away from the interned zero page *);
  let s1 = Contents.stats () in
  Alcotest.(check bool) "write to zero page materializes" true
    (s1.Contents.cow_materializations > s0.Contents.cow_materializations);
  let b = Contents.snapshot a in
  let s2 = Contents.stats () in
  Alcotest.(check int) "snapshot counted"
    (s1.Contents.snapshots + 1)
    s2.Contents.snapshots;
  (* writing the shared buffer pays exactly one deferred copy *)
  Contents.set a 1 2;
  Contents.set a 2 3;
  let s3 = Contents.stats () in
  Alcotest.(check int) "one materialization per shared-buffer burst"
    (s2.Contents.cow_materializations + 1)
    s3.Contents.cow_materializations;
  Alcotest.(check int) "snapshot kept its image" 0 (Contents.get b 1);
  ignore (Contents.checksum b);
  let s4 = Contents.stats () in
  ignore (Contents.checksum b);
  let s5 = Contents.stats () in
  Alcotest.(check int) "second checksum hits the cache"
    (s4.Contents.checksum_cache_hits + 1)
    s5.Contents.checksum_cache_hits

let test_backing_isolates () =
  let b = Backing.in_memory () in
  let c = Contents.zero ~words:wpp in
  Contents.set c 2 42;
  b.Backing.store ~obj:1 ~page:0 ~contents:c ~k:ignore;
  (* mutating the caller's page after store must not reach the store *)
  Contents.set c 2 99;
  let got = ref None in
  b.Backing.fetch ~obj:1 ~page:0 ~k:(fun r -> got := r);
  (match !got with
  | Some v -> Alcotest.(check int) "stored image preserved" 42 (Contents.get v 2)
  | None -> Alcotest.fail "backing lost the page");
  (* mutating a fetched page must not corrupt the store *)
  (match !got with Some v -> Contents.set v 2 7 | None -> ());
  let again = ref None in
  b.Backing.fetch ~obj:1 ~page:0 ~k:(fun r -> again := r);
  match !again with
  | Some v -> Alcotest.(check int) "refetch unaffected" 42 (Contents.get v 2)
  | None -> Alcotest.fail "backing lost the page on refetch"

let test_store_pager_isolates () =
  let engine = Engine.create () in
  let disk = Disk.create engine Disk.default_config in
  let pager =
    Store_pager.create engine ~node:0 ~disk Store_pager.default_config
  in
  let c = Contents.zero ~words:wpp in
  Contents.set c 1 5;
  Store_pager.remember pager ~obj:3 ~page:0 ~contents:c;
  Contents.set c 1 6;
  let got = ref None in
  Store_pager.request pager ~obj:3 ~page:0 ~words:wpp (fun v -> got := Some v);
  Engine.run engine;
  (match !got with
  | Some v ->
    Alcotest.(check int) "pager kept the remembered image" 5 (Contents.get v 1);
    (* a supplied page is the requester's to write *)
    Contents.set v 1 8
  | None -> Alcotest.fail "no supply");
  let second = ref None in
  Store_pager.request pager ~obj:3 ~page:0 ~words:wpp (fun v ->
      second := Some v);
  Engine.run engine;
  match !second with
  | Some v ->
    Alcotest.(check int) "second supply unaffected by first writer" 5
      (Contents.get v 1)
  | None -> Alcotest.fail "no second supply"

let prop_pager_roundtrip =
  QCheck.Test.make ~name:"store_pager round-trips arbitrary images" ~count:50
    gen_writes
    (fun ws ->
      let engine = Engine.create () in
      let disk = Disk.create engine Disk.default_config in
      let pager =
        Store_pager.create engine ~node:0 ~disk Store_pager.default_config
      in
      let c = Contents.zero ~words:wpp in
      apply_writes c ws;
      let expect = image c in
      Store_pager.remember pager ~obj:1 ~page:0 ~contents:c;
      let got = ref None in
      Store_pager.request pager ~obj:1 ~page:0 ~words:wpp (fun v ->
          got := Some v);
      Engine.run engine;
      match !got with Some v -> image v = expect | None -> false)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pagestore"
    [
      ( "cow",
        [
          qtest prop_snapshot_immutable;
          qtest prop_checksum_cache;
          qtest prop_copy_equal;
          Alcotest.test_case "zero-page interning" `Quick test_zero_interned;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
        ] );
      ( "roundtrips",
        [
          Alcotest.test_case "backing store isolates" `Quick
            test_backing_isolates;
          Alcotest.test_case "store pager isolates" `Quick
            test_store_pager_isolates;
          qtest prop_pager_roundtrip;
        ] );
    ]
