(* Parallel job pool: determinism is the whole contract.

   The pool promises that results come back in submission order and
   that values are independent of the worker count — [~jobs:1] and
   [~jobs:4] must be indistinguishable to the caller.  The first group
   checks the pool mechanics directly; the second replays small
   versions of the paper's tables through the workload drivers and
   asserts the formatted rows are byte-identical sequential vs
   parallel. *)

module Runner = Asvm_runner.Runner
module Config = Asvm_cluster.Config
module Fault_micro = Asvm_workloads.Fault_micro
module Copy_chain = Asvm_workloads.Copy_chain
module File_io = Asvm_workloads.File_io
module Em3d = Asvm_workloads.Em3d
module Sor = Asvm_workloads.Sor

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                     *)
(* ------------------------------------------------------------------ *)

let test_ordering () =
  let n = 50 in
  let thunks = List.init n (fun i () -> i * i) in
  let expected = List.init n (fun i -> i * i) in
  Alcotest.(check (list int)) "jobs:1" expected (Runner.run ~jobs:1 thunks);
  Alcotest.(check (list int)) "jobs:4" expected (Runner.run ~jobs:4 thunks);
  Alcotest.(check (list int))
    "jobs clamped to batch" expected
    (Runner.run ~jobs:(n * 4) thunks)

let test_map_matches_run () =
  let cells = List.init 20 (fun i -> i) in
  Alcotest.(check (list int))
    "map = run of closures"
    (Runner.run ~jobs:3 (List.map (fun c () -> c + 100) cells))
    (Runner.map ~jobs:3 (fun c -> c + 100) cells)

let test_empty_and_defaults () =
  Alcotest.(check (list int)) "empty batch" [] (Runner.run ~jobs:4 []);
  Alcotest.(check bool) "default_jobs >= 1" true (Runner.default_jobs () >= 1);
  Alcotest.check_raises "jobs:0 rejected"
    (Invalid_argument "Runner.run: jobs < 1") (fun () ->
      ignore (Runner.run ~jobs:0 [ (fun () -> ()) ]))

let test_exception_propagation () =
  let ran = Atomic.make 0 in
  let thunks =
    List.init 8 (fun i () ->
        Atomic.incr ran;
        if i = 3 then failwith "boom-3";
        if i = 5 then failwith "boom-5";
        i)
  in
  (match Runner.run ~jobs:4 thunks with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
    Alcotest.(check string) "lowest-indexed failure wins" "boom-3" msg);
  Alcotest.(check int) "every job still ran" 8 (Atomic.get ran);
  match Runner.run ~jobs:1 thunks with
  | _ -> Alcotest.fail "expected an exception (sequential)"
  | exception Failure msg ->
    Alcotest.(check string) "sequential raises the same" "boom-3" msg

(* each job owns fresh private state: no cross-job interference *)
let test_private_state () =
  let results =
    Runner.map ~jobs:4
      (fun seed ->
        let tbl = Hashtbl.create 16 in
        for i = 0 to 999 do
          Hashtbl.replace tbl (i mod 64) (seed + i)
        done;
        Hashtbl.fold (fun _ v acc -> acc + v) tbl 0)
      (List.init 8 (fun i -> i * 1000))
  in
  let expected =
    List.init 8 (fun i ->
        let seed = i * 1000 in
        let tbl = Hashtbl.create 16 in
        for j = 0 to 999 do
          Hashtbl.replace tbl (j mod 64) (seed + j)
        done;
        Hashtbl.fold (fun _ v acc -> acc + v) tbl 0)
  in
  Alcotest.(check (list int)) "independent cells" expected results

(* ------------------------------------------------------------------ *)
(* Workload cells: rows byte-identical sequential vs parallel         *)
(* ------------------------------------------------------------------ *)

(* Formatted with the same conversions the bench tables use, so "byte
   identical rows" here is the same statement as for bench output.
   %.17g would be stricter than the tables print; use it anyway —
   the cells must agree to the last bit, not to display precision. *)
let check_rows name rows_of =
  Alcotest.(check (list string)) name (rows_of ~jobs:1) (rows_of ~jobs:4)

let test_table1_rows () =
  check_rows "table1" (fun ~jobs ->
      List.map
        (fun (label, a, x) -> Printf.sprintf "%s %.17g %.17g" label a x)
        (Fault_micro.table1 ~jobs ()))

let test_figure10_rows () =
  check_rows "figure10" (fun ~jobs ->
      List.map
        (fun (n, aw, au, xw, xu) ->
          (* readers=1 has no upgrade cell: nan prints, = would reject *)
          Printf.sprintf "%d %.17g %.17g %.17g %.17g" n aw au xw xu)
        (Fault_micro.figure10 ~nodes:16 ~jobs ~readers:[ 1; 2; 4 ] ()))

let test_figure11_rows () =
  check_rows "figure11" (fun ~jobs ->
      List.concat_map
        (fun mm ->
          let results, (lb, la) =
            Copy_chain.figure11 ~mm ~chains:[ 1; 2; 3 ] ~pages:4 ~jobs ()
          in
          Printf.sprintf "fit %.17g %.17g" lb la
          :: List.map
               (fun (r : Copy_chain.result) ->
                 Printf.sprintf "%d %.17g %d" r.chain r.mean_fault_ms r.faults)
               results)
        [ Config.Mm_asvm; Config.Mm_xmm ])

let test_table2_rows () =
  check_rows "table2" (fun ~jobs ->
      List.map
        (fun (n, aw, xw, ar, xr) ->
          Printf.sprintf "%d %.17g %.17g %.17g %.17g" n aw xw ar xr)
        (File_io.table2 ~node_counts:[ 1; 2; 4 ] ~file_mb:1 ~jobs ()))

let test_em3d_sor_sweeps () =
  let em3d_cells =
    List.concat_map
      (fun mm ->
        [
          (mm, None, { Em3d.cells = 8_000; nodes = 4; iterations = 3; seed = 7 });
          (mm, None, { Em3d.cells = 8_000; nodes = 8; iterations = 3; seed = 7 });
        ])
      [ Config.Mm_asvm; Config.Mm_xmm ]
  in
  check_rows "em3d sweep" (fun ~jobs ->
      List.map
        (fun (r : Em3d.result) ->
          Printf.sprintf "%.17g %d %d" r.seconds r.faults r.protocol_messages)
        (Em3d.sweep ~jobs em3d_cells));
  let sor_cells =
    List.map
      (fun mm -> (mm, { Sor.grid = 64; nodes = 4; iterations = 2 }))
      [ Config.Mm_asvm; Config.Mm_xmm ]
  in
  check_rows "sor sweep" (fun ~jobs ->
      List.map
        (fun (r : Sor.result) ->
          Printf.sprintf "%.17g %d" r.seconds r.faults)
        (Sor.sweep ~jobs sor_cells))

let () =
  Alcotest.run "runner"
    [
      ( "pool",
        [
          Alcotest.test_case "submission order" `Quick test_ordering;
          Alcotest.test_case "map = run" `Quick test_map_matches_run;
          Alcotest.test_case "empty and defaults" `Quick test_empty_and_defaults;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "private state" `Quick test_private_state;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "table1 rows" `Quick test_table1_rows;
          Alcotest.test_case "figure10 rows" `Quick test_figure10_rows;
          Alcotest.test_case "figure11 rows" `Quick test_figure11_rows;
          Alcotest.test_case "table2 rows" `Quick test_table2_rows;
          Alcotest.test_case "em3d and sor sweeps" `Quick test_em3d_sor_sweeps;
        ] );
    ]
