bench/paper.ml:
