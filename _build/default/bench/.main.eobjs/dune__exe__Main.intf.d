bench/main.mli:
