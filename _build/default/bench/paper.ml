(* The published numbers, for side-by-side comparison in the harness
   output (USENIX '96, Zeisset/Tritscher/Mairandres). *)

(* Table 1: (label, asvm_ms, xmm_ms) *)
let table1 =
  [
    ("write fault, 1 read copy", 2.24, 38.42);
    ("write fault, 2 read copies", 3.10, 12.92);
    ("write fault, 64 read copies", 8.96, 72.18);
    ("write upgrade, 2 read copies", 1.51, 3.83);
    ("write upgrade, 64 read copies", 7.75, 63.72);
    ("read fault, first reader", 2.35, 38.59);
    ("read fault, second reader", 2.35, 10.06);
  ]

(* Figure 11 latency model: lb + n * la *)
let fig11_asvm = (2.7, 0.48)
let fig11_xmm = (5.0, 4.3)

(* Table 2: nodes, asvm write, xmm write, asvm read, xmm read (MB/s) *)
let table2 =
  [
    (1, 2.80, 2.15, 1.57, 1.18);
    (2, 2.60, 1.77, 1.53, 0.38);
    (4, 2.05, 0.90, 1.14, 0.25);
    (8, 1.22, 0.49, 0.91, 0.11);
    (16, 0.62, 0.24, 0.70, 0.05);
    (32, 0.30, 0.12, 0.66, 0.02);
    (64, 0.15, 0.06, 0.66, 0.01);
  ]

(* Table 3: cells -> (nodes, asvm_s, xmm_s) list; None = omitted (**) *)
let table3 =
  [
    ( 64_000,
      [
        (1, Some 43.6, Some 43.6);
        (2, Some 32.0, Some 151.);
        (4, Some 19.9, Some 213.);
        (8, Some 13.9, Some 392.);
        (16, Some 11.2, Some 755.);
        (32, Some 9.86, Some 1405.);
        (64, Some 9.55, Some 2735.);
      ] );
    ( 256_000,
      [
        (1, Some 174., Some 174.);
        (2, None, None);
        (4, None, None);
        (8, Some 33.6, Some 520.);
        (16, Some 21.5, Some 842.);
        (32, Some 15.6, Some 1604.);
        (64, Some 12.8, Some 2957.);
      ] );
    ( 1_024_000,
      [
        (1, Some 698., Some 698.);
        (2, None, None);
        (4, None, None);
        (8, None, None);
        (16, None, None);
        (32, Some 54.2, Some 1863.);
        (64, Some 24.4, Some 3373.);
      ] );
  ]
