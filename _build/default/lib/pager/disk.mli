(** Disk model: a single-arm disk as a FIFO station with a fixed
    seek + per-page transfer service time. One disk per I/O node (the
    Paragon had roughly one disk node per 32 compute nodes). *)

type config = { seek_ms : float; transfer_ms_per_page : float }

(** A paging disk of the era: ~12 ms average positioning, ~5 MB/s media
    rate (8 KB page ~ 1.6 ms). *)
val default_config : config

type t

val create : Asvm_simcore.Engine.t -> config -> t

(** [read t k] / [write t k]: queue one page-sized transfer; [k] runs at
    completion. *)
val read : t -> (unit -> unit) -> unit

val write : t -> (unit -> unit) -> unit

val reads : t -> int
val writes : t -> int
