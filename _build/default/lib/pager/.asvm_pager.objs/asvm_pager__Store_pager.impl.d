lib/pager/store_pager.ml: Asvm_machvm Asvm_simcore Disk Hashtbl Option
