lib/pager/store_pager.mli: Asvm_machvm Asvm_simcore Disk
