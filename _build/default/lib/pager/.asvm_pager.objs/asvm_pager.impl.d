lib/pager/asvm_pager.ml: Disk Store_pager
