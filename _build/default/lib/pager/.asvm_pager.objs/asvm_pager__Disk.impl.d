lib/pager/disk.ml: Asvm_simcore
