lib/pager/disk.mli: Asvm_simcore
