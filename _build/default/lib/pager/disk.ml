module Station = Asvm_simcore.Station

type config = { seek_ms : float; transfer_ms_per_page : float }

let default_config = { seek_ms = 20.0; transfer_ms_per_page = 1.6 }

type t = {
  station : Station.t;
  config : config;
  mutable reads : int;
  mutable writes : int;
}

let create engine config =
  { station = Station.create engine; config; reads = 0; writes = 0 }

let service t = t.config.seek_ms +. t.config.transfer_ms_per_page

let read t k =
  t.reads <- t.reads + 1;
  Station.submit t.station ~service:(service t) k

let write t k =
  t.writes <- t.writes + 1;
  Station.submit t.station ~service:(service t) k

let reads t = t.reads
let writes t = t.writes
