(** User-level pagers and the disk model: the default pager (paging
    space) and file pagers for memory-mapped files. *)

module Disk = Disk
module Store_pager = Store_pager
