(** Cluster-wide identifiers.

    Memory objects have a single global identity; each node holds its own
    representation of an object under that id. Task ids are also global
    so traces stay unambiguous. *)

type obj_id = int
type task_id = int

(** Monotonic id allocator shared across a cluster. *)
module Alloc : sig
  type t

  val create : unit -> t
  val fresh : t -> int
end

val pp_obj : Format.formatter -> obj_id -> unit
val pp_task : Format.formatter -> task_id -> unit
