(** Modeled contents of one 8 KB virtual-memory page.

    Pages carry a configurable number of 63-bit words instead of 8192 raw
    bytes: enough to express real data (file bytes, EM3D cell values,
    coherence stamps) while keeping a 64-node simulation in memory. All
    transfers copy, as a real page transfer would — aliasing a [t] across
    two nodes would silently break the coherence invariants the test
    suite checks. *)

type t

(** Fresh zero-filled page. @raise Invalid_argument if [words <= 0]. *)
val zero : words:int -> t

val words : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit

(** Deep copy (page transfer / push / copy-on-write). *)
val copy : t -> t

val equal : t -> t -> bool
val is_zero : t -> bool

(** Order-sensitive checksum, used by tests to compare page images. *)
val checksum : t -> int

val pp : Format.formatter -> t -> unit
