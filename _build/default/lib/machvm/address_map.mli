(** A task's address map: ordered, non-overlapping ranges of virtual
    pages, each backed by a window of a memory object.

    Addresses are virtual page numbers; word-level addressing is layered
    on top by [Vm]. *)

type inheritance = Inherit_none | Inherit_share | Inherit_copy

type entry = {
  start : int;  (** first virtual page *)
  npages : int;
  mutable obj : Ids.obj_id;
  mutable obj_offset : int;  (** object page backing [start] *)
  mutable inherit_ : inheritance;
  mutable needs_copy : bool;
      (** symmetric-copy flag: a write through this entry must first
          shadow the object *)
  mutable max_prot : Prot.t;
      (** vm_protect ceiling; faults above it are protection violations *)
}

type t

val create : unit -> t

(** [map t ~start ~npages ~obj ~obj_offset ~inherit_] inserts a mapping.
    @raise Invalid_argument if the range overlaps an existing entry or
    [npages <= 0]. *)
val map :
  t ->
  start:int ->
  npages:int ->
  obj:Ids.obj_id ->
  obj_offset:int ->
  inherit_:inheritance ->
  entry

val unmap : t -> start:int -> unit

(** Entry covering a virtual page, if any. *)
val lookup : t -> vpage:int -> entry option

val entries : t -> entry list

(** First free range of [npages] at or after [hint]. *)
val find_space : t -> hint:int -> npages:int -> int

val pp_inheritance : Format.formatter -> inheritance -> unit
