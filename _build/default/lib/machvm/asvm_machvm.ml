(** The Mach virtual-memory model: objects, shadow/copy chains, address
    maps, pmap, resident-page cache and the EMMI protocol (with the ASVM
    extensions). One [Vm.t] per simulated node. *)

module Prot = Prot
module Contents = Contents
module Ids = Ids
module Emmi = Emmi
module Vm_object = Vm_object
module Address_map = Address_map
module Pmap = Pmap
module Vm_config = Vm_config
module Backing = Backing
module Vm = Vm
