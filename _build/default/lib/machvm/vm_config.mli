(** Per-node VM cost and capacity parameters. *)

type t = {
  words_per_page : int;  (** modeled words in one 8 KB page *)
  memory_pages : int;  (** resident-page capacity of the node *)
  fault_entry_ms : float;  (** trap + map lookup + fault setup *)
  pmap_enter_ms : float;  (** install one translation *)
  emmi_call_ms : float;  (** kernel <-> manager boundary crossing *)
  copy_page_ms : float;  (** local page memcpy (push / COW) *)
  zero_fill_ms : float;  (** clear a fresh page *)
}

(** Paragon-GP-like defaults: 16 MB node of which ~9 MB (1152 pages)
    are available to user memory; costs from DESIGN.md section 5. *)
val default : t

(** [with_memory t pages] — same costs, different capacity. *)
val with_memory : t -> int -> t
