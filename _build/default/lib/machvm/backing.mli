(** Default-pager hooks for anonymous memory.

    When the kernel evicts a dirty page of an unmanaged temporary object
    it hands the page to the node's default pager through this record;
    later faults fetch it back. The real pager (with its disk model)
    lives in [Asvm_pager]; this indirection keeps the kernel free of a
    dependency on it. *)

type t = {
  store :
    obj:Ids.obj_id -> page:int -> contents:Contents.t -> k:(unit -> unit) -> unit;
  fetch :
    obj:Ids.obj_id -> page:int -> k:(Contents.t option -> unit) -> unit;
}

(** Instant in-memory store with no cost model; for unit tests. *)
val in_memory : unit -> t

(** A backing store that must never be used (nodes whose workloads are
    sized to fit in memory). *)
val none : t
