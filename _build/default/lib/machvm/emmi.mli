(** EMMI — the External Memory Management Interface, including the five
    extensions ASVM adds (paper section 3.7.1).

    The kernel side of the interface is the [Vm] module's
    [data_supply] / [lock_request] / [pull_request] / [data_error]
    functions. This module defines the protocol vocabulary and the
    {!manager} record through which a kernel talks to whatever manages a
    memory object: a local pager, the XMM stack, or an ASVM instance.

    Everything is asynchronous: calls never return results directly;
    answers arrive through continuations or through later calls on the
    opposite interface, mirroring the paper's "asynchronous state
    transitions" design rule. *)

(** [Supply_push] is the extended [memory_object_data_supply] mode: the
    page is pushed down the VM-internal copy chain instead of being
    supplied to the object itself. *)
type supply_mode = Supply_normal | Supply_push

(** Extended [memory_object_lock_request] mode: [Lock_push_first] pushes
    the page down the copy chain before applying the lock. *)
type lock_mode = Lock_plain | Lock_push_first

(** Reply to a lock request ([memory_object_lock_completed] with the
    extended "result" argument). [Lock_not_present] reports that a
    requested push could not run because the page is not in this node's
    VM cache. [returned] carries the page contents when the lock had
    [clean = true] and the page was dirty. *)
type lock_result =
  | Lock_done of { returned : Contents.t option }
  | Lock_not_present

(** Reply to [memory_object_pull_request] (the paper's three cases):
    zero-fill, contents found in the local shadow chain, or "ask the
    manager of this shadow object". *)
type pull_result =
  | Pull_zero_fill
  | Pull_contents of Contents.t
  | Pull_ask_shadow of Ids.obj_id

(** What a lock request does to a page on one node:
    - [max_access]: access the node retains; [No_access] flushes the page
      from the cache entirely.
    - [clean]: return the contents in the reply if the page is dirty.
    - [mode]: optionally push down the copy chain first. *)
type lock_op = { max_access : Prot.t; clean : bool; mode : lock_mode }

(** Manager interface for one (node, object) binding. The kernel calls
    these; the manager answers via the kernel's EMMI entry points. *)
type manager = {
  m_data_request : page:int -> desired:Prot.t -> unit;
      (** page fault needs contents and [desired] access *)
  m_data_unlock : page:int -> desired:Prot.t -> unit;
      (** page is resident but with insufficient access *)
  m_data_return : page:int -> contents:Contents.t -> dirty:bool -> unit;
      (** eviction hands the page back to the manager *)
}

(** A manager that accepts nothing — objects bound to it must never
    generate requests; used as a guard in tests. *)
val null_manager : manager

val pp_lock_result : Format.formatter -> lock_result -> unit
val pp_pull_result : Format.formatter -> pull_result -> unit
