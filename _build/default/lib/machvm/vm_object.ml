type frame = {
  mutable contents : Contents.t;
  mutable dirty : bool;
  mutable access : Prot.t;
  mutable wired : bool;
}

type t = {
  id : Ids.obj_id;
  size_pages : int;
  temporary : bool;
  mutable shadow : (Ids.obj_id * int) option;
  mutable copy : Ids.obj_id option;
  mutable version : int;
  page_versions : (int, int) Hashtbl.t;
  mutable manager : Emmi.manager option;
  resident : (int, frame) Hashtbl.t;
}

let create ~id ~size_pages ~temporary ?shadow () =
  if size_pages <= 0 then invalid_arg "Vm_object.create: size_pages <= 0";
  {
    id;
    size_pages;
    temporary;
    shadow;
    copy = None;
    version = 0;
    page_versions = Hashtbl.create 8;
    manager = None;
    resident = Hashtbl.create 16;
  }

let frame t page = Hashtbl.find_opt t.resident page
let is_resident t page = Hashtbl.mem t.resident page

let install t ~page fr =
  if page < 0 || page >= t.size_pages then
    invalid_arg "Vm_object.install: page out of range";
  Hashtbl.replace t.resident page fr

let remove t ~page = Hashtbl.remove t.resident page

let resident_pages t =
  Hashtbl.fold (fun page _ acc -> page :: acc) t.resident [] |> List.sort compare

let resident_count t = Hashtbl.length t.resident

let page_version t page =
  match Hashtbl.find_opt t.page_versions page with Some v -> v | None -> 0

let set_page_version t page v = Hashtbl.replace t.page_versions page v

let needs_push t page = page_version t page <> t.version

let has_manager t = Option.is_some t.manager
