(** Page protection / access levels, ordered [No_access < Read_only <
    Read_write]. *)

type t = No_access | Read_only | Read_write

val equal : t -> t -> bool
val compare : t -> t -> int

(** [allows granted wanted]: does holding [granted] satisfy a fault that
    wants [wanted]? *)
val allows : t -> t -> bool

val max : t -> t -> t
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
