type t = int array

let zero ~words =
  if words <= 0 then invalid_arg "Contents.zero: words <= 0";
  Array.make words 0

let words = Array.length

let get t i = t.(i)
let set t i v = t.(i) <- v

let copy = Array.copy

let equal = ( = )

let is_zero t = Array.for_all (fun w -> w = 0) t

let checksum t =
  Array.fold_left (fun acc w -> (acc * 1000003) lxor w) (Array.length t) t

let pp ppf t =
  Format.fprintf ppf "@[<h>[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list t)
