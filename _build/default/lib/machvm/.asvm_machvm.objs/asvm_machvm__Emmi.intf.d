lib/machvm/emmi.mli: Contents Format Ids Prot
