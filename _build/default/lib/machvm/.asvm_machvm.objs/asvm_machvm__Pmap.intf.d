lib/machvm/pmap.mli: Ids Prot
