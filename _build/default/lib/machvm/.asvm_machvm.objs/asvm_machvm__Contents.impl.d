lib/machvm/contents.ml: Array Format
