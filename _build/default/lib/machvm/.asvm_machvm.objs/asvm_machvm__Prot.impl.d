lib/machvm/prot.ml: Format Int
