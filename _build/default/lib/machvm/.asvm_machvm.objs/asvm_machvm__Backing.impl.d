lib/machvm/backing.ml: Contents Hashtbl Ids Option
