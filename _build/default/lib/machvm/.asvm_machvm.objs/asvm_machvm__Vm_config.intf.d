lib/machvm/vm_config.mli:
