lib/machvm/pmap.ml: Hashtbl Ids List Prot
