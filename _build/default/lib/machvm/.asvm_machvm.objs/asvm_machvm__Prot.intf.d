lib/machvm/prot.mli: Format
