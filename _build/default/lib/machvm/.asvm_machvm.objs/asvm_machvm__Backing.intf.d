lib/machvm/backing.mli: Contents Ids
