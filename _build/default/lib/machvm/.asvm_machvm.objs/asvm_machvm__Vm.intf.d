lib/machvm/vm.mli: Address_map Asvm_simcore Backing Contents Emmi Ids Prot Vm_config Vm_object
