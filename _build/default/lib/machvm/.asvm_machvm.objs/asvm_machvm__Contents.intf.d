lib/machvm/contents.mli: Format
