lib/machvm/ids.mli: Format
