lib/machvm/emmi.ml: Contents Format Ids Prot
