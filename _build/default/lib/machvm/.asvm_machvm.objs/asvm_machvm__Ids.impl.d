lib/machvm/ids.ml: Format
