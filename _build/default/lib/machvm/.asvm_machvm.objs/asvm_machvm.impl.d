lib/machvm/asvm_machvm.ml: Address_map Backing Contents Emmi Ids Pmap Prot Vm Vm_config Vm_object
