lib/machvm/vm_object.ml: Contents Emmi Hashtbl Ids List Option Prot
