lib/machvm/address_map.mli: Format Ids Prot
