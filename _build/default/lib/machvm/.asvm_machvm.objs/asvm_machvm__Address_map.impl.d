lib/machvm/address_map.ml: Format Ids Int List Prot Stdlib
