lib/machvm/vm_object.mli: Contents Emmi Hashtbl Ids Prot
