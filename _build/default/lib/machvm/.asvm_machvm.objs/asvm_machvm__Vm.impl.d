lib/machvm/vm.ml: Address_map Asvm_simcore Backing Contents Emmi Hashtbl Ids List Option Pmap Printf Prot Queue Vm_config Vm_object
