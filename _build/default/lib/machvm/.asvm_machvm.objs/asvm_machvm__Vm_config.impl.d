lib/machvm/vm_config.ml:
