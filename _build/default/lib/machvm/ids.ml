type obj_id = int
type task_id = int

module Alloc = struct
  type t = { mutable next : int }

  let create () = { next = 1 }

  let fresh t =
    let id = t.next in
    t.next <- id + 1;
    id
end

let pp_obj ppf id = Format.fprintf ppf "obj#%d" id
let pp_task ppf id = Format.fprintf ppf "task#%d" id
