type supply_mode = Supply_normal | Supply_push
type lock_mode = Lock_plain | Lock_push_first

type lock_result =
  | Lock_done of { returned : Contents.t option }
  | Lock_not_present

type pull_result =
  | Pull_zero_fill
  | Pull_contents of Contents.t
  | Pull_ask_shadow of Ids.obj_id

type lock_op = { max_access : Prot.t; clean : bool; mode : lock_mode }

type manager = {
  m_data_request : page:int -> desired:Prot.t -> unit;
  m_data_unlock : page:int -> desired:Prot.t -> unit;
  m_data_return : page:int -> contents:Contents.t -> dirty:bool -> unit;
}

let null_manager =
  let fail what = failwith ("Emmi.null_manager: unexpected " ^ what) in
  {
    m_data_request = (fun ~page:_ ~desired:_ -> fail "data_request");
    m_data_unlock = (fun ~page:_ ~desired:_ -> fail "data_unlock");
    m_data_return = (fun ~page:_ ~contents:_ ~dirty:_ -> fail "data_return");
  }

let pp_lock_result ppf = function
  | Lock_done { returned = None } -> Format.pp_print_string ppf "done"
  | Lock_done { returned = Some _ } -> Format.pp_print_string ppf "done+data"
  | Lock_not_present -> Format.pp_print_string ppf "not-present"

let pp_pull_result ppf = function
  | Pull_zero_fill -> Format.pp_print_string ppf "zero-fill"
  | Pull_contents _ -> Format.pp_print_string ppf "contents"
  | Pull_ask_shadow id -> Format.fprintf ppf "ask-shadow(%a)" Ids.pp_obj id
