(** Per-node representation of a Mach memory object.

    The same object id may be represented on several nodes; each node's
    representation caches resident pages and carries the local ends of
    shadow/copy links. Links are object ids resolved through the owning
    node's [Vm] table, so representations never alias structures across
    nodes. *)

(** One resident page. [access] is the access right this node's kernel
    holds for the page — always [Read_write] for unmanaged objects, and
    whatever the manager granted for managed ones. [wired] frames are
    skipped by eviction (in-flight pushes and transfers). *)
type frame = {
  mutable contents : Contents.t;
  mutable dirty : bool;
  mutable access : Prot.t;
  mutable wired : bool;
}

type t = {
  id : Ids.obj_id;
  size_pages : int;
  temporary : bool;  (** anonymous memory: zero-fill, default-pager backed *)
  mutable shadow : (Ids.obj_id * int) option;
      (** source object and page offset into it *)
  mutable copy : Ids.obj_id option;  (** head of the copy chain *)
  mutable version : int;  (** bumped each time a copy is made (3.7.2) *)
  page_versions : (int, int) Hashtbl.t;
      (** page -> version at last push; missing = 0 *)
  mutable manager : Emmi.manager option;
  resident : (int, frame) Hashtbl.t;
}

val create :
  id:Ids.obj_id ->
  size_pages:int ->
  temporary:bool ->
  ?shadow:Ids.obj_id * int ->
  unit ->
  t

val frame : t -> int -> frame option
val is_resident : t -> int -> bool

(** Insert a frame; replaces any previous one. @raise Invalid_argument on
    an out-of-range page. *)
val install : t -> page:int -> frame -> unit

val remove : t -> page:int -> unit
val resident_pages : t -> int list
val resident_count : t -> int

val page_version : t -> int -> int
val set_page_version : t -> int -> int -> unit

(** [needs_push t page] — the page has not been pushed since the last
    copy was made (page version lags the object version). Meaningless
    when [copy = None]. *)
val needs_push : t -> int -> bool

val has_manager : t -> bool
