type t = No_access | Read_only | Read_write

let rank = function No_access -> 0 | Read_only -> 1 | Read_write -> 2
let equal a b = rank a = rank b
let compare a b = Int.compare (rank a) (rank b)
let allows granted wanted = rank granted >= rank wanted
let max a b = if rank a >= rank b then a else b
let min a b = if rank a <= rank b then a else b

let to_string = function
  | No_access -> "none"
  | Read_only -> "read"
  | Read_write -> "write"

let pp ppf t = Format.pp_print_string ppf (to_string t)
