type t = {
  words_per_page : int;
  memory_pages : int;
  fault_entry_ms : float;
  pmap_enter_ms : float;
  emmi_call_ms : float;
  copy_page_ms : float;
  zero_fill_ms : float;
}

let default =
  {
    words_per_page = 16;
    memory_pages = 1152;
    fault_entry_ms = 0.45;
    pmap_enter_ms = 0.05;
    emmi_call_ms = 0.04;
    copy_page_ms = 0.12;
    zero_fill_ms = 0.08;
  }

let with_memory t pages = { t with memory_pages = pages }
