(** Physical map: the per-task translation from virtual pages to the
    frames that back them, with the hardware protection installed.

    Entries may point to a frame belonging to a *different* object than
    the one mapped at the address — read faults satisfied through a
    shadow link enter the source object's page directly (paper 2.2). *)

type translation = { backing_obj : Ids.obj_id; index : int; mutable prot : Prot.t }

type t

val create : unit -> t

val enter : t -> vpage:int -> backing_obj:Ids.obj_id -> index:int -> prot:Prot.t -> unit
val lookup : t -> vpage:int -> translation option
val remove : t -> vpage:int -> unit

(** All virtual pages currently translated (for invariant checks). *)
val vpages : t -> int list

val size : t -> int
