type inheritance = Inherit_none | Inherit_share | Inherit_copy

type entry = {
  start : int;
  npages : int;
  mutable obj : Ids.obj_id;
  mutable obj_offset : int;
  mutable inherit_ : inheritance;
  mutable needs_copy : bool;
  mutable max_prot : Prot.t;
}

(* Few entries per task in practice, so a sorted list keeps the code
   simple; lookup cost is irrelevant next to simulated fault latencies. *)
type t = { mutable entries : entry list }

let create () = { entries = [] }

let overlaps a_start a_n b_start b_n =
  a_start < b_start + b_n && b_start < a_start + a_n

let map t ~start ~npages ~obj ~obj_offset ~inherit_ =
  if npages <= 0 then invalid_arg "Address_map.map: npages <= 0";
  if start < 0 then invalid_arg "Address_map.map: negative start";
  List.iter
    (fun e ->
      if overlaps start npages e.start e.npages then
        invalid_arg "Address_map.map: overlapping range")
    t.entries;
  let e =
    {
      start;
      npages;
      obj;
      obj_offset;
      inherit_;
      needs_copy = false;
      max_prot = Prot.Read_write;
    }
  in
  t.entries <-
    List.sort (fun a b -> Int.compare a.start b.start) (e :: t.entries);
  e

let unmap t ~start =
  t.entries <- List.filter (fun e -> e.start <> start) t.entries

let lookup t ~vpage =
  List.find_opt (fun e -> vpage >= e.start && vpage < e.start + e.npages) t.entries

let entries t = t.entries

let find_space t ~hint ~npages =
  let rec search candidate = function
    | [] -> candidate
    | e :: rest ->
      if e.start + e.npages <= candidate then search candidate rest
      else if overlaps candidate npages e.start e.npages then
        search (e.start + e.npages) rest
      else candidate
  in
  search (Stdlib.max hint 0) t.entries

let pp_inheritance ppf = function
  | Inherit_none -> Format.pp_print_string ppf "none"
  | Inherit_share -> Format.pp_print_string ppf "share"
  | Inherit_copy -> Format.pp_print_string ppf "copy"
