type translation = { backing_obj : Ids.obj_id; index : int; mutable prot : Prot.t }

type t = (int, translation) Hashtbl.t

let create () : t = Hashtbl.create 64

let enter t ~vpage ~backing_obj ~index ~prot =
  Hashtbl.replace t vpage { backing_obj; index; prot }

let lookup t ~vpage = Hashtbl.find_opt t vpage

let remove t ~vpage = Hashtbl.remove t vpage

let vpages t = Hashtbl.fold (fun vpage _ acc -> vpage :: acc) t [] |> List.sort compare

let size t = Hashtbl.length t
