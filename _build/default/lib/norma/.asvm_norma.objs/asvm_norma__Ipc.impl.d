lib/norma/ipc.ml: Asvm_mesh
