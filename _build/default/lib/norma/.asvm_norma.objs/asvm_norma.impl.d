lib/norma/asvm_norma.ml: Ipc
