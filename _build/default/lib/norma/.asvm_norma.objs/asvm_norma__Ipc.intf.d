lib/norma/ipc.mli: Asvm_mesh
