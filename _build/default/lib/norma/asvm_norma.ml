(** NORMA-IPC: the heavyweight port-based transport XMM is built on. *)

module Ipc = Ipc
