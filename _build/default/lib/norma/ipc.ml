module Network = Asvm_mesh.Network

type config = {
  sw_send_ms : float;
  sw_recv_ms : float;
  per_right_ms : float;
  page_extra_ms : float;
  header_bytes : int;
}

let default_config =
  {
    sw_send_ms = 0.85;
    sw_recv_ms = 0.85;
    per_right_ms = 0.08;
    page_extra_ms = 0.45;
    header_bytes = 256;
  }

let page_bytes = 8192

type 'msg port = {
  id : int;
  node : int;
  handler : 'msg port -> 'msg -> unit;
}

type 'msg t = {
  net : Network.t;
  config : config;
  mutable next_port : int;
  mutable messages : int;
  mutable page_messages : int;
}

let create net config = { net; config; next_port = 0; messages = 0; page_messages = 0 }

let port t ~node ~handler =
  let id = t.next_port in
  t.next_port <- id + 1;
  { id; node; handler }

let port_node p = p.node
let port_id p = p.id

let send t ~src ~dst ?(carries_page = false) ?(rights = 1) msg =
  t.messages <- t.messages + 1;
  if carries_page then t.page_messages <- t.page_messages + 1;
  let c = t.config in
  let extra = if carries_page then c.page_extra_ms else 0. in
  let rights_cost = float_of_int rights *. c.per_right_ms in
  let bytes = c.header_bytes + if carries_page then page_bytes else 0 in
  Network.send t.net ~src ~dst:dst.node ~bytes
    ~sw_send:(c.sw_send_ms +. rights_cost +. extra)
    ~sw_recv:(c.sw_recv_ms +. rights_cost +. extra)
    (fun () -> dst.handler dst msg)

let messages t = t.messages
let page_messages t = t.page_messages
