(** Bounded event tracing for protocol monitoring.

    A ring buffer of timestamped events, cheap enough to leave compiled
    in: emitting to an absent tracer is a no-op. The ASVM/XMM layers
    emit one event per protocol message and per ownership transition,
    giving the system- and application-level monitoring the paper's
    authors built for the Paragon. *)

type event = {
  time : float;  (** simulated ms *)
  node : int;
  category : string;  (** e.g. "asvm", "xmm", "owner" *)
  detail : string;
}

type t

(** [create ~capacity] keeps the most recent [capacity] events. *)
val create : capacity:int -> t

val emit : t option -> time:float -> node:int -> category:string -> detail:string -> unit

(** Events in emission order (oldest first). *)
val events : t -> event list

(** Total events ever emitted (including overwritten ones). *)
val emitted : t -> int

val clear : t -> unit
val pp_event : Format.formatter -> event -> unit

(** Dump the buffer, oldest first, one event per line. *)
val dump : Format.formatter -> t -> unit
