(** Discrete-event simulation core for the ASVM reproduction.

    Everything above this layer — mesh network, transports, the Mach VM
    model, XMM and ASVM — is written against one [Engine], so a whole
    multicomputer run is a deterministic, single-threaded event loop. *)

module Event_queue = Event_queue
module Engine = Engine
module Station = Station
module Rng = Rng
module Stats = Stats
module Tracer = Tracer
