type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
  total : float;
}

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f min=%.3f max=%.3f stddev=%.3f" s.n s.mean
    s.min s.max s.stddev

module Tally = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let total t = t.total

  let summary t =
    let stddev = if t.n > 1 then sqrt (t.m2 /. float_of_int (t.n - 1)) else 0. in
    let min = if t.n = 0 then 0. else t.min in
    let max = if t.n = 0 then 0. else t.max in
    { n = t.n; mean = t.mean; min; max; stddev; total = t.total }
end

module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t name (ref by)

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

module Histogram = struct
  type t = { mutable samples : float list; mutable sorted : float array option }

  let create () = { samples = []; sorted = None }

  let add t x =
    t.samples <- x :: t.samples;
    t.sorted <- None

  let count t = List.length t.samples

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
      let a = Array.of_list t.samples in
      Array.sort compare a;
      t.sorted <- Some a;
      a

  let percentile t p =
    if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of range";
    let a = sorted t in
    let n = Array.length a in
    if n = 0 then invalid_arg "Histogram.percentile: empty";
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = min (n - 2) (int_of_float rank) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(lo + 1) -. a.(lo)))
    end

  let median t = percentile t 50.
end

module Series = struct
  type t = { name : string; mutable points : (float * float) list }

  let create name = { name; points = [] }
  let name t = t.name
  let add t ~x ~y = t.points <- (x, y) :: t.points
  let points t = List.rev t.points

  let linear_fit t =
    let pts = t.points in
    let n = List.length pts in
    if n < 2 then invalid_arg "Series.linear_fit: need at least two points";
    let nf = float_of_int n in
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. pts in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. pts in
    let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0. pts in
    let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0. pts in
    let denom = (nf *. sxx) -. (sx *. sx) in
    if denom = 0. then invalid_arg "Series.linear_fit: degenerate x values";
    let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
    let intercept = (sy -. (slope *. sx)) /. nf in
    (intercept, slope)
end
