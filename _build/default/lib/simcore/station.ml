type t = {
  engine : Engine.t;
  mutable free_at : float;
  mutable busy_total : float;
  mutable jobs : int;
}

let create engine = { engine; free_at = 0.; busy_total = 0.; jobs = 0 }

let submit t ~service k =
  if not (Float.is_finite service) || service < 0. then
    invalid_arg "Station.submit: negative service";
  let now = Engine.now t.engine in
  let start = Float.max now t.free_at in
  t.free_at <- start +. service;
  t.busy_total <- t.busy_total +. service;
  t.jobs <- t.jobs + 1;
  Engine.schedule_at t.engine ~time:t.free_at k

let busy_until t = Float.max t.free_at (Engine.now t.engine)

let busy_total t = t.busy_total

let jobs t = t.jobs
