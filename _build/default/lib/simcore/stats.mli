(** Measurement collection: tallies, counters and (x, y) series. *)

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
  total : float;
}

val pp_summary : Format.formatter -> summary -> unit

(** Streaming tally of float samples (Welford's algorithm). *)
module Tally : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val total : t -> float
  val summary : t -> summary
end

(** Named integer counters. *)
module Counters : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
end

(** Sample store with percentile queries, for latency distributions. *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  (** [percentile t p] for [p] in [\[0, 100\]]; linear interpolation
      between ranked samples. @raise Invalid_argument if empty or [p]
      out of range. *)
  val percentile : t -> float -> float

  val median : t -> float
end

(** An (x, y) series, e.g. latency as a function of reader count. *)
module Series : sig
  type t

  val create : string -> t
  val name : t -> string
  val add : t -> x:float -> y:float -> unit
  val points : t -> (float * float) list

  (** Least-squares linear fit [(intercept, slope)] — used to extract the
      paper's [lb + n * la] model from Figure 11 data.
      @raise Invalid_argument on fewer than two points. *)
  val linear_fit : t -> float * float
end
