type event = { time : float; node : int; category : string; detail : string }

type t = {
  capacity : int;
  ring : event option array;
  mutable next : int;
  mutable emitted : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity <= 0";
  { capacity; ring = Array.make capacity None; next = 0; emitted = 0 }

let emit t ~time ~node ~category ~detail =
  match t with
  | None -> ()
  | Some t ->
    t.ring.(t.next) <- Some { time; node; category; detail };
    t.next <- (t.next + 1) mod t.capacity;
    t.emitted <- t.emitted + 1

let events t =
  let older = Array.to_list (Array.sub t.ring t.next (t.capacity - t.next)) in
  let newer = Array.to_list (Array.sub t.ring 0 t.next) in
  List.filter_map Fun.id (older @ newer)

let emitted t = t.emitted

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.emitted <- 0

let pp_event ppf e =
  Format.fprintf ppf "%10.3f ms  node %-3d %-6s %s" e.time e.node e.category
    e.detail

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
