lib/simcore/rng.ml: Array Int64
