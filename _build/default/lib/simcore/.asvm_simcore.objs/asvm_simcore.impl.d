lib/simcore/asvm_simcore.ml: Engine Event_queue Rng Station Stats Tracer
