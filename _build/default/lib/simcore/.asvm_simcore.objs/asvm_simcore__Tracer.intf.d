lib/simcore/tracer.mli: Format
