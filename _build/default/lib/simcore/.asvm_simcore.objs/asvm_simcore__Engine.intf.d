lib/simcore/engine.mli:
