lib/simcore/tracer.ml: Array Format Fun List
