lib/simcore/rng.mli:
