lib/simcore/engine.ml: Event_queue Float Option
