lib/simcore/station.ml: Engine Float
