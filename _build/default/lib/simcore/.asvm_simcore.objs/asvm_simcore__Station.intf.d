lib/simcore/station.mli: Engine
