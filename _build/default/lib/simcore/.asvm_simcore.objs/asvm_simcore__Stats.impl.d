lib/simcore/stats.ml: Array Format Hashtbl List String
