lib/simcore/stats.mli: Format
