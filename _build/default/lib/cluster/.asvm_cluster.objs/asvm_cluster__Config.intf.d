lib/cluster/config.mli: Asvm_core Asvm_machvm Asvm_mesh Asvm_norma Asvm_pager
