lib/cluster/cluster.mli: Asvm_core Asvm_machvm Asvm_pager Asvm_simcore Asvm_xmm Config
