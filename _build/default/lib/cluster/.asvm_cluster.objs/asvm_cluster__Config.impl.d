lib/cluster/config.ml: Asvm_core Asvm_machvm Asvm_mesh Asvm_norma Asvm_pager
