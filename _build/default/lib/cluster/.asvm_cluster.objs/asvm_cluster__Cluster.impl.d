lib/cluster/cluster.ml: Array Asvm_core Asvm_machvm Asvm_mesh Asvm_pager Asvm_simcore Asvm_xmm Config Fun Hashtbl List Option Printf
