lib/sts/sts.ml: Array Asvm_mesh Printf Sys
