lib/sts/sts.mli: Asvm_mesh
