lib/workloads/file_io.mli: Asvm_cluster
