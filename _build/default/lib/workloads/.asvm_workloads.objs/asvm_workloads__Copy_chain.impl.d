lib/workloads/copy_chain.ml: Asvm_cluster Asvm_machvm Asvm_simcore List Option Printf
