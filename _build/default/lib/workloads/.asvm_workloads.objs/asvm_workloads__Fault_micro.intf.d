lib/workloads/fault_micro.mli: Asvm_cluster
