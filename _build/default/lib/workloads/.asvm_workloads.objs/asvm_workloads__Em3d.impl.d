lib/workloads/em3d.ml: Array Asvm_cluster Asvm_machvm Asvm_simcore Fun List
