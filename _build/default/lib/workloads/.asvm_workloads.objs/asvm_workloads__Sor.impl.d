lib/workloads/sor.ml: Array Asvm_cluster Asvm_machvm Asvm_simcore Fun List
