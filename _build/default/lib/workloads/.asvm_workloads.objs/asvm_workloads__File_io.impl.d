lib/workloads/file_io.ml: Array Asvm_cluster Asvm_machvm Asvm_pager Fun List
