lib/workloads/sor.mli: Asvm_cluster
