lib/workloads/copy_chain.mli: Asvm_cluster
