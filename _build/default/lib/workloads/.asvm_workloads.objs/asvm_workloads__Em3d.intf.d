lib/workloads/em3d.mli: Asvm_cluster Asvm_core
