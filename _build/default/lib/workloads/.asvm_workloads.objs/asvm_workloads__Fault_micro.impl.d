lib/workloads/fault_micro.ml: Array Asvm_cluster Asvm_machvm Fun List Printf
