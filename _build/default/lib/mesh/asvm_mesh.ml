(** Paragon-style 2-D mesh interconnect model. *)

module Topology = Topology
module Network = Network
