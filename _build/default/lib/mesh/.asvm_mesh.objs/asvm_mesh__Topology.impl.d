lib/mesh/topology.ml:
