lib/mesh/network.mli: Asvm_simcore Topology
