lib/mesh/network.ml: Array Asvm_simcore Topology
