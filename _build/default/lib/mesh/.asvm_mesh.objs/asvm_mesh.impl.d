lib/mesh/asvm_mesh.ml: Network Topology
