lib/mesh/topology.mli:
