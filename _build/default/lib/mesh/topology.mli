(** Two-dimensional mesh topology, as in the Intel Paragon.

    Nodes are numbered [0 .. n-1] and laid out row-major on a mesh whose
    width is the smallest integer >= sqrt n that keeps the mesh as square
    as possible. Messages are wormhole-routed in dimension order, so the
    distance between two nodes is the Manhattan distance between their
    coordinates. *)

type t

(** @raise Invalid_argument if [nodes <= 0]. *)
val create : nodes:int -> t

val nodes : t -> int
val width : t -> int
val height : t -> int

(** Mesh coordinates of a node id. @raise Invalid_argument if out of range. *)
val coords : t -> int -> int * int

(** Node id at coordinates. *)
val node_at : t -> x:int -> y:int -> int

(** Dimension-order (Manhattan) hop count between two nodes. *)
val hops : t -> int -> int -> int

(** Maximum hop count over all node pairs (mesh diameter). *)
val diameter : t -> int
