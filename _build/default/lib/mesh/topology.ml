type t = { nodes : int; width : int; height : int }

let create ~nodes =
  if nodes <= 0 then invalid_arg "Topology.create: nodes <= 0";
  let width =
    let rec find w = if w * w >= nodes then w else find (w + 1) in
    find 1
  in
  let height = (nodes + width - 1) / width in
  { nodes; width; height }

let nodes t = t.nodes
let width t = t.width
let height t = t.height

let coords t node =
  if node < 0 || node >= t.nodes then invalid_arg "Topology.coords: bad node";
  (node mod t.width, node / t.width)

let node_at t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg "Topology.node_at: bad coordinates";
  let node = (y * t.width) + x in
  if node >= t.nodes then invalid_arg "Topology.node_at: hole in last row";
  node

let hops t a b =
  let xa, ya = coords t a and xb, yb = coords t b in
  abs (xa - xb) + abs (ya - yb)

let diameter t =
  let d = ref 0 in
  for a = 0 to t.nodes - 1 do
    for b = a + 1 to t.nodes - 1 do
      if hops t a b > !d then d := hops t a b
    done
  done;
  !d
