(** Bounded cache of per-page hints.

    Backs both the dynamic ownership-hint cache and the static ownership
    manager's table (paper section 3.4, figure 6). Capacity-bounded with
    least-recently-used replacement, so forwarding information can be
    lost — which is exactly why ASVM stacks dynamic, static and global
    forwarding as fallbacks of one another. *)

type 'a t

(** [create ~capacity]. A capacity of 0 makes every lookup miss. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val size : 'a t -> int

val put : 'a t -> page:int -> 'a -> unit
val find : 'a t -> page:int -> 'a option
val remove : 'a t -> page:int -> unit

(** Fraction of lookups that hit (for ablation benches). *)
val hits : 'a t -> int

val misses : 'a t -> int
