lib/core/hint_cache.mli:
