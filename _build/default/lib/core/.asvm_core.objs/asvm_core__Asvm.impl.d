lib/core/asvm.ml: Array Asvm_machvm Asvm_pager Asvm_simcore Asvm_sts Bytes Hashtbl Hint_cache List Option Printf Queue String Sys
