lib/core/asvm.mli: Asvm_machvm Asvm_mesh Asvm_pager Asvm_simcore Asvm_sts
