lib/core/hint_cache.ml: Hashtbl
