(* LRU via a generation stamp per entry: small caches, scans on eviction
   are cheap and keep the structure simple. *)

type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  capacity : int;
  table : (int, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Hint_cache.create: negative capacity";
  { capacity; table = Hashtbl.create (max 8 capacity); clock = 0; hits = 0; misses = 0 }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun page e ->
      match !victim with
      | None -> victim := Some (page, e.stamp)
      | Some (_, s) -> if e.stamp < s then victim := Some (page, e.stamp))
    t.table;
  match !victim with Some (page, _) -> Hashtbl.remove t.table page | None -> ()

let put t ~page value =
  if t.capacity = 0 then ()
  else begin
    if (not (Hashtbl.mem t.table page)) && Hashtbl.length t.table >= t.capacity
    then evict_lru t;
    Hashtbl.replace t.table page { value; stamp = tick t }
  end

let find t ~page =
  match Hashtbl.find_opt t.table page with
  | Some e ->
    e.stamp <- tick t;
    t.hits <- t.hits + 1;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

let remove t ~page = Hashtbl.remove t.table page

let hits t = t.hits
let misses t = t.misses
