lib/xmm/xmm.ml: Array Asvm_machvm Asvm_norma Asvm_pager Asvm_simcore Bytes Hashtbl List Option Printf Queue
