lib/xmm/xmm.mli: Asvm_machvm Asvm_mesh Asvm_norma Asvm_pager
