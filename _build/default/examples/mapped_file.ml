(* Memory-mapped file access (the paper's section 4.2 scenario):
   nodes map the same file and read/write it directly through the VM
   system, bypassing any file server. Compares ASVM with the XMM
   baseline on the same workload.

   Run with:  dune exec examples/mapped_file.exe *)

module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Address_map = Asvm_machvm.Address_map
module File_io = Asvm_workloads.File_io

let show mm =
  let name = Config.mm_name mm in
  (* 8 nodes reading a 2 MB mapped file in parallel *)
  let r = File_io.read_test ~mm ~nodes:8 ~file_mb:2 () in
  Printf.printf
    "%-4s  parallel read : %5.2f MB/s per node  (%d pages served by the file \
     pager)\n"
    name r.File_io.per_node_mb_s r.File_io.pager_supplies;
  let w = File_io.write_test ~mm ~nodes:8 ~file_mb:2 () in
  Printf.printf "%-4s  parallel write: %5.2f MB/s per node\n" name
    w.File_io.per_node_mb_s

let () =
  Printf.printf "8 nodes, 2 MB mapped file, read and write in parallel\n\n";
  show Config.Mm_asvm;
  show Config.Mm_xmm;
  Printf.printf
    "\nASVM sustains reads because pages already resident on any node are\n\
     served by their owners; under XMM every fault funnels through the\n\
     centralized manager and the pager.\n";

  (* direct word-level access, with data integrity across nodes *)
  let cl = Cluster.create (Config.default ~nodes:2) in
  let obj =
    Cluster.create_file_object cl ~size_pages:4 ~sharers:[ 0; 1 ]
      ~data:(fun addr -> 1000 + addr)
      ()
  in
  let t0 = Cluster.create_task cl ~node:0 in
  let t1 = Cluster.create_task cl ~node:1 in
  List.iter
    (fun t ->
      Cluster.map cl ~task:t ~obj ~start:0 ~npages:4
        ~inherit_:Address_map.Inherit_share)
    [ t0; t1 ];
  let read task addr =
    let v = ref 0 in
    Cluster.read_word cl ~task ~addr (fun x -> v := x);
    Cluster.run cl;
    !v
  in
  Printf.printf "\nfile word 7 read on node 0: %d\n" (read t0 7);
  Cluster.write_word cl ~task:t1 ~addr:7 ~value:7777 (fun () -> ());
  Cluster.run cl;
  Printf.printf "node 1 overwrites word 7; node 0 now reads: %d\n" (read t0 7)
