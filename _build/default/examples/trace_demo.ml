(* Protocol monitoring: trace every ASVM message and ownership
   transition during a small coherence interaction — the system-level
   monitoring interface the paper's authors built for the Paragon.

   Run with:  dune exec examples/trace_demo.exe *)

module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Address_map = Asvm_machvm.Address_map
module Tracer = Asvm_simcore.Tracer

let () =
  let config = { (Config.default ~nodes:3) with trace_capacity = Some 64 } in
  let cl = Cluster.create config in
  let obj = Cluster.create_shared_object cl ~size_pages:2 ~sharers:[ 0; 1; 2 ] () in
  let task node =
    let t = Cluster.create_task cl ~node in
    Cluster.map cl ~task:t ~obj ~start:0 ~npages:2
      ~inherit_:Address_map.Inherit_share;
    t
  in
  let t0 = task 0 and t1 = task 1 and t2 = task 2 in
  let wr t v =
    Cluster.write_word cl ~task:t ~addr:0 ~value:v (fun () -> ());
    Cluster.run cl
  in
  let rd t =
    let r = ref 0 in
    Cluster.read_word cl ~task:t ~addr:0 (fun v -> r := v);
    Cluster.run cl;
    !r
  in
  wr t0 1;
  ignore (rd t1);
  ignore (rd t2);
  wr t1 2;
  (* one write fault: zero-grant; two read grants; one upgrade with two
     invalidations — all visible in the trace *)
  match Cluster.tracer cl with
  | Some tracer ->
    Printf.printf "protocol trace (%d events total, showing buffer):\n\n"
      (Tracer.emitted tracer);
    Tracer.dump Format.std_formatter tracer
  | None -> print_endline "tracing disabled"
