(* EM3D on shared virtual memory — the application workload the paper's
   Table 3 is built on (section 4.3). Runs the same problem on a growing
   machine under both memory managers, and verifies a small instance
   against a sequential reference computation.

   Run with:  dune exec examples/em3d_demo.exe *)

module Config = Asvm_cluster.Config
module Em3d = Asvm_workloads.Em3d

let () =
  let cells = 64_000 and iterations = 10 in
  Printf.printf
    "EM3D: %d cells (%d bytes each, %d per page), %d iterations\n\n" cells
    Em3d.cell_bytes Em3d.cells_per_page iterations;
  Printf.printf "%6s %12s %12s %14s\n" "nodes" "ASVM (s)" "XMM (s)"
    "ASVM faults";
  List.iter
    (fun nodes ->
      let params = { (Em3d.default_params ~cells ~nodes) with iterations } in
      let memory_pages =
        if nodes = 1 then Some (Em3d.data_pages ~cells + 64) else None
      in
      let a = Em3d.run ~mm:Config.Mm_asvm ?memory_pages params in
      let x = Em3d.run ~mm:Config.Mm_xmm ?memory_pages params in
      Printf.printf "%6d %12.2f %12.2f %14d\n%!" nodes a.Em3d.seconds
        x.Em3d.seconds a.Em3d.faults)
    [ 1; 4; 16 ];
  Printf.printf
    "\nASVM speeds the application up; under XMM every fault crosses the\n\
     centralized manager, so adding nodes makes it slower (paper Table 3).\n";
  Printf.printf "\nverifying a small instance against a sequential reference... %!";
  let ok =
    Em3d.validate ~mm:Config.Mm_asvm ~cells:128 ~nodes:4 ~iterations:4 ~seed:3
  in
  Printf.printf "%s\n" (if ok then "values match" else "MISMATCH")
