(* Quickstart: build a 4-node multicomputer, share memory between tasks
   on different nodes, and watch ASVM keep it coherent.

   Run with:  dune exec examples/quickstart.exe *)

module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Address_map = Asvm_machvm.Address_map
module Asvm = Asvm_core.Asvm

let () =
  (* A 4-node Paragon-like machine managed by ASVM. *)
  let cl = Cluster.create (Config.default ~nodes:4) in

  (* One shared memory object of 8 pages, mapped by a task on each node. *)
  let sharers = [ 0; 1; 2; 3 ] in
  let obj = Cluster.create_shared_object cl ~size_pages:8 ~sharers () in
  let task node =
    let t = Cluster.create_task cl ~node in
    Cluster.map cl ~task:t ~obj ~start:0 ~npages:8
      ~inherit_:Address_map.Inherit_share;
    t
  in
  let t0 = task 0 and t1 = task 1 and t2 = task 2 in

  (* Everything is asynchronous against the simulated clock; helpers to
     run one operation to completion. *)
  let write task addr value =
    Cluster.write_word cl ~task ~addr ~value (fun () -> ());
    Cluster.run cl
  in
  let read task addr =
    let result = ref 0 in
    Cluster.read_word cl ~task ~addr (fun v -> result := v);
    Cluster.run cl;
    !result
  in

  Printf.printf "t=%6.2f ms  node 0 writes 42 to address 0\n" (Cluster.now cl);
  write t0 0 42;

  Printf.printf "t=%6.2f ms  node 1 reads address 0 -> %d (page fetched from owner)\n"
    (Cluster.now cl) (read t1 0);
  Printf.printf "t=%6.2f ms  node 2 reads address 0 -> %d\n" (Cluster.now cl)
    (read t2 0);

  (* Node 2 writes: the owner invalidates the read copies and hands the
     page (and its ownership) over — 'single writer or multiple
     readers'. *)
  Printf.printf "t=%6.2f ms  node 2 writes 99 (invalidates the read copies)\n"
    (Cluster.now cl);
  write t2 0 99;
  Printf.printf "t=%6.2f ms  node 0 re-reads -> %d\n" (Cluster.now cl)
    (read t0 0);

  (* Peek at the distributed-manager state. *)
  (match Cluster.backend cl with
  | `Asvm a ->
    let owner =
      List.find_opt (fun n -> Asvm.is_owner a ~node:n ~obj ~page:0) sharers
    in
    Printf.printf "\npage 0 owner: %s (ownership follows the last writer)\n"
      (match owner with Some n -> "node " ^ string_of_int n | None -> "none");
    (match Asvm.readers a ~obj ~page:0 with
    | Some readers ->
      Printf.printf "reader list at the owner: [%s]\n"
        (String.concat "; " (List.map string_of_int readers))
    | None -> ())
  | `Xmm _ -> ());

  Printf.printf "\nprotocol messages: %d, network bytes: %d\n"
    (Cluster.protocol_messages cl) (Cluster.network_bytes cl);
  Printf.printf "simulated time: %.2f ms\n" (Cluster.now cl)
