(* Task migration / remote fork with lazily copied memory — the dynamic
   load-balancing scenario the paper motivates in section 4.1.2: every
   migration adds a stage to the copy chain between the node where a
   task was started and where it runs. ASVM keeps the added cost per
   stage small; XMM pays a full NORMA round trip per stage.

   Run with:  dune exec examples/task_migration.exe *)

module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Address_map = Asvm_machvm.Address_map
module Copy_chain = Asvm_workloads.Copy_chain

let () =
  (* A task with 128 KB of private state migrates across 5 nodes; its
     memory follows lazily via delayed copy. *)
  let cl = Cluster.create (Config.default ~nodes:6) in
  let wpp = (Cluster.config cl).Config.vm.words_per_page in
  let task = Cluster.create_task cl ~node:0 in
  let obj = Cluster.create_private_object cl ~node:0 ~size_pages:16 in
  Cluster.map cl ~task ~obj ~start:0 ~npages:16
    ~inherit_:Address_map.Inherit_copy;

  (* the task computes something into its state *)
  for p = 0 to 15 do
    Cluster.write_word cl ~task ~addr:(p * wpp) ~value:(p * p) (fun () -> ());
    Cluster.run cl
  done;
  Printf.printf "task created on node 0, 16 pages of state initialized\n";

  (* migrate node 0 -> 1 -> 2 -> 3 -> 4 -> 5 *)
  let current = ref task in
  for dst = 1 to 5 do
    let next = ref None in
    Cluster.fork cl ~task:!current ~dst_node:dst (fun t -> next := Some t);
    Cluster.run cl;
    current := Option.get !next;
    Printf.printf "t=%7.2f ms  migrated to node %d\n" (Cluster.now cl) dst
  done;

  (* the migrated task touches its state: faults walk the copy chain
     back toward node 0 *)
  let t_start = Cluster.now cl in
  let sum = ref 0 in
  for p = 0 to 15 do
    Cluster.read_word cl ~task:!current ~addr:(p * wpp) (fun v -> sum := !sum + v);
    Cluster.run cl
  done;
  Printf.printf
    "after 5 migrations the task faulted its 16 pages in %.2f ms (sum ok: %b)\n"
    (Cluster.now cl -. t_start)
    (!sum = List.fold_left ( + ) 0 (List.init 16 (fun p -> p * p)));

  (* per-stage cost comparison, as in figure 11 *)
  Printf.printf "\nper-fault latency after n migrations (figure 11):\n";
  Printf.printf "%8s %12s %12s\n" "stages" "ASVM (ms)" "XMM (ms)";
  List.iter
    (fun chain ->
      let a = Copy_chain.measure ~mm:Config.Mm_asvm ~chain () in
      let x = Copy_chain.measure ~mm:Config.Mm_xmm ~chain () in
      Printf.printf "%8d %12.2f %12.2f\n" chain a.Copy_chain.mean_fault_ms
        x.Copy_chain.mean_fault_ms)
    [ 1; 3; 5; 8 ]
