examples/em3d_demo.mli:
