examples/quickstart.ml: Asvm_cluster Asvm_core Asvm_machvm List Printf String
