examples/em3d_demo.ml: Asvm_cluster Asvm_workloads List Printf
