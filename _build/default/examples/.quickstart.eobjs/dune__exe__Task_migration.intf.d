examples/task_migration.mli:
