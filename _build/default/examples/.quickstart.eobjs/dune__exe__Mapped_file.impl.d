examples/mapped_file.ml: Asvm_cluster Asvm_machvm Asvm_workloads List Printf
