examples/task_migration.ml: Asvm_cluster Asvm_machvm Asvm_workloads List Option Printf
