examples/quickstart.mli:
