examples/trace_demo.ml: Asvm_cluster Asvm_machvm Asvm_simcore Format Printf
