(* Tests for the disk model and the user-level store pager. *)

module Engine = Asvm_simcore.Engine
module Disk = Asvm_pager.Disk
module Store_pager = Asvm_pager.Store_pager
module Contents = Asvm_machvm.Contents
module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config

let wpp = 4

let make () =
  let engine = Engine.create () in
  let disk = Disk.create engine Disk.default_config in
  let pager = Store_pager.create engine ~node:0 ~disk Store_pager.default_config in
  (engine, disk, pager)

let test_disk_serializes () =
  let engine = Engine.create () in
  let disk = Disk.create engine { Disk.seek_ms = 10.; transfer_ms_per_page = 2. } in
  let t1 = ref 0. and t2 = ref 0. in
  Disk.write disk (fun () -> t1 := Engine.now engine);
  Disk.write disk (fun () -> t2 := Engine.now engine);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "first op" 12. !t1;
  Alcotest.(check (float 1e-9)) "second queues behind" 24. !t2;
  Alcotest.(check int) "write count" 2 (Disk.writes disk)

let test_pager_zero_fill_for_unknown () =
  let engine, _disk, pager = make () in
  let got = ref None in
  Store_pager.request pager ~obj:1 ~page:0 ~words:wpp (fun c -> got := Some c);
  Engine.run engine;
  match !got with
  | Some c -> Alcotest.(check bool) "zeros" true (Contents.is_zero c)
  | None -> Alcotest.fail "no supply"

let test_pager_file_read_once () =
  (* a preloaded (disk-resident) page pays the media read exactly once *)
  let engine, _disk, pager = make () in
  let c = Contents.zero ~words:wpp in
  Contents.set c 0 7;
  Store_pager.preload pager ~obj:1 ~page:0 c;
  let t1 = ref 0. and t2 = ref 0. in
  Store_pager.request pager ~obj:1 ~page:0 ~words:wpp (fun _ ->
      t1 := Engine.now engine;
      Store_pager.request pager ~obj:1 ~page:0 ~words:wpp (fun _ ->
          t2 := Engine.now engine));
  Engine.run engine;
  let cfg = Store_pager.default_config in
  Alcotest.(check (float 1e-6)) "cold supply pays media read"
    (cfg.Store_pager.supply_ms +. cfg.Store_pager.file_read_ms)
    !t1;
  Alcotest.(check (float 1e-6)) "warm supply is service only"
    (!t1 +. cfg.Store_pager.supply_ms)
    !t2

let test_pager_clean_hits_disk () =
  let engine, disk, pager = make () in
  let c = Contents.zero ~words:wpp in
  Contents.set c 1 9;
  let done_at = ref 0. in
  Store_pager.clean pager ~obj:2 ~page:3 ~contents:c (fun () ->
      done_at := Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "one disk write" 1 (Disk.writes disk);
  Alcotest.(check bool) "took disk time" true (!done_at > 20.);
  (* the cleaned copy is remembered and supplied from memory *)
  let got = ref None in
  Store_pager.request pager ~obj:2 ~page:3 ~words:wpp (fun v -> got := Some v);
  Engine.run engine;
  (match !got with
  | Some v -> Alcotest.(check int) "contents preserved" 9 (Contents.get v 1)
  | None -> Alcotest.fail "no supply");
  Alcotest.(check int) "no disk read for cached page" 0 (Disk.reads disk)

let test_backing_roundtrip () =
  let engine, _disk, pager = make () in
  let b = Store_pager.as_backing pager in
  let c = Contents.zero ~words:wpp in
  Contents.set c 2 42;
  let fetched = ref None in
  b.Asvm_machvm.Backing.store ~obj:5 ~page:1 ~contents:c ~k:(fun () ->
      b.Asvm_machvm.Backing.fetch ~obj:5 ~page:1 ~k:(fun r -> fetched := r));
  Engine.run engine;
  match !fetched with
  | Some v -> Alcotest.(check int) "roundtrip" 42 (Contents.get v 2)
  | None -> Alcotest.fail "backing lost the page"

let test_pager_station_is_the_ceiling () =
  (* concurrent requests serialize at the pager's station: the Table 2
     saturation mechanism *)
  let engine, _disk, pager = make () in
  let completions = ref [] in
  for i = 0 to 9 do
    Store_pager.request pager ~obj:1 ~page:i ~words:wpp (fun _ ->
        completions := Engine.now engine :: !completions)
  done;
  Engine.run engine;
  let times = List.rev !completions in
  let cfg = Store_pager.default_config in
  List.iteri
    (fun i t ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "supply %d" i)
        (float_of_int (i + 1) *. cfg.Store_pager.supply_ms)
        t)
    times

(* barrier semantics at the cluster level *)
let test_barrier () =
  let cl = Cluster.create (Config.default ~nodes:4) in
  let b = Cluster.Barrier.create cl ~parties:3 in
  let released = ref [] in
  let engine = Cluster.engine cl in
  Engine.schedule engine ~delay:1. (fun () ->
      Cluster.Barrier.arrive b (fun () -> released := (0, Engine.now engine) :: !released));
  Engine.schedule engine ~delay:5. (fun () ->
      Cluster.Barrier.arrive b (fun () -> released := (1, Engine.now engine) :: !released));
  Engine.schedule engine ~delay:2. (fun () ->
      Cluster.Barrier.arrive b (fun () -> released := (2, Engine.now engine) :: !released));
  Cluster.run cl;
  Alcotest.(check int) "all released" 3 (List.length !released);
  List.iter
    (fun (_, t) ->
      Alcotest.(check bool) "released after last arrival" true (t >= 5.))
    !released;
  (* the barrier resets for reuse *)
  let again = ref 0 in
  for _ = 1 to 3 do
    Cluster.Barrier.arrive b (fun () -> incr again)
  done;
  Cluster.run cl;
  Alcotest.(check int) "reusable" 3 !again

let () =
  Alcotest.run "pager"
    [
      ( "disk",
        [ Alcotest.test_case "serializes" `Quick test_disk_serializes ] );
      ( "store pager",
        [
          Alcotest.test_case "zero fill" `Quick test_pager_zero_fill_for_unknown;
          Alcotest.test_case "file read once" `Quick test_pager_file_read_once;
          Alcotest.test_case "clean hits disk" `Quick test_pager_clean_hits_disk;
          Alcotest.test_case "backing roundtrip" `Quick test_backing_roundtrip;
          Alcotest.test_case "station ceiling" `Quick
            test_pager_station_is_the_ceiling;
        ] );
      ("barrier", [ Alcotest.test_case "release and reuse" `Quick test_barrier ]);
    ]
