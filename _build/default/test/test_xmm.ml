(* Unit tests pinning the XMM baseline's characteristic behaviours:
   centralized serialization, clean-at-pager-once, and the protocol's
   message economy. *)

module Engine = Asvm_simcore.Engine
module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map
module Store_pager = Asvm_pager.Store_pager
module Disk = Asvm_pager.Disk

let wpp = Asvm_machvm.Vm_config.default.words_per_page

let make ?(nodes = 6) () =
  Cluster.create (Config.with_mm (Config.default ~nodes) Config.Mm_xmm)

let setup cl ~nodes ~pages =
  let sharers = List.init nodes Fun.id in
  let obj = Cluster.create_shared_object cl ~size_pages:pages ~sharers () in
  let tasks =
    Array.of_list
      (List.map
         (fun node ->
           let task = Cluster.create_task cl ~node in
           Cluster.map cl ~task ~obj ~start:0 ~npages:pages
             ~inherit_:Address_map.Inherit_share;
           task)
         sharers)
  in
  (obj, tasks)

let wr cl task addr value =
  Cluster.write_word cl ~task ~addr ~value (fun () -> ());
  Cluster.run cl

let rd cl task addr =
  let r = ref 0 in
  Cluster.read_word cl ~task ~addr (fun v -> r := v);
  Cluster.run cl;
  !r

let test_clean_at_pager_once () =
  (* the first remote request for a dirty page writes it to the paging
     space (a disk write); later requests are served without the disk *)
  let cl = make () in
  let _obj, tasks = setup cl ~nodes:6 ~pages:2 in
  let disk_writes () = Disk.writes (Store_pager.disk (Cluster.default_pager cl)) in
  wr cl tasks.(1) 0 7;
  let before = disk_writes () in
  ignore (rd cl tasks.(2) 0);
  let after_first = disk_writes () in
  Alcotest.(check bool) "first remote request writes paging space" true
    (after_first > before);
  ignore (rd cl tasks.(3) 0);
  ignore (rd cl tasks.(4) 0);
  Alcotest.(check int) "subsequent requests: no disk" after_first (disk_writes ())

let test_centralized_serialization () =
  (* concurrent faults from many nodes serialize at the one manager:
     total time grows roughly linearly with the number of requesters *)
  let run nodes =
    let cl = make ~nodes:(nodes + 1) () in
    let _obj, tasks = setup cl ~nodes:(nodes + 1) ~pages:1 in
    wr cl tasks.(0) 0 1;
    let t0 = Cluster.now cl in
    let remaining = ref nodes in
    for n = 1 to nodes do
      Cluster.touch cl ~task:tasks.(n) ~vpage:0 ~want:Prot.Read_only (fun () ->
          decr remaining)
    done;
    Cluster.run cl;
    assert (!remaining = 0);
    Cluster.now cl -. t0
  in
  let t4 = run 4 and t16 = run 16 in
  Alcotest.(check bool)
    (Printf.sprintf "16 readers serialize behind 4 readers (%.1f vs %.1f ms)" t16 t4)
    true
    (t16 > 2.2 *. t4)

let test_write_invalidates_all_readers () =
  let cl = make () in
  let _obj, tasks = setup cl ~nodes:6 ~pages:1 in
  wr cl tasks.(0) 0 5;
  for n = 1 to 4 do
    ignore (rd cl tasks.(n) 0)
  done;
  wr cl tasks.(5) 0 6;
  for n = 0 to 4 do
    Alcotest.(check int) (Printf.sprintf "node %d sees overwrite" n) 6
      (rd cl tasks.(n) 0)
  done

let test_message_economy () =
  (* the paper: an XMMI write-permission transfer takes five messages
     (two with page contents) where ASVM needs three (one with
     contents). Compare protocol traffic for the same scenario. *)
  let traffic mm =
    let cl = Cluster.create (Config.with_mm (Config.default ~nodes:4) mm) in
    let _obj, tasks = setup cl ~nodes:4 ~pages:1 in
    wr cl tasks.(1) 0 1;
    ignore (rd cl tasks.(2) 0);
    let before = Cluster.protocol_messages cl in
    wr cl tasks.(3) 0 2;
    Cluster.protocol_messages cl - before
  in
  let xmm = traffic Config.Mm_xmm in
  let asvm = traffic Config.Mm_asvm in
  Alcotest.(check bool)
    (Printf.sprintf "XMM needs more messages than ASVM (%d vs %d)" xmm asvm)
    true (xmm > asvm)

let test_state_grows_with_nodes () =
  (* the dense page-state matrix costs bytes per page per node *)
  let bytes nodes =
    let cl = make ~nodes () in
    let obj, _ = setup cl ~nodes ~pages:50 in
    let x = match Cluster.backend cl with `Xmm x -> x | `Asvm _ -> assert false in
    Asvm_xmm.Xmm.state_bytes x ~obj
  in
  Alcotest.(check int) "4 nodes" 200 (bytes 4);
  Alcotest.(check int) "16 nodes" 800 (bytes 16)

let test_xmm_dirty_eviction_goes_to_disk () =
  (* no internode paging: a dirty eviction lands in the paging space *)
  let config =
    Config.with_memory_pages
      (Config.with_mm (Config.default ~nodes:4) Config.Mm_xmm)
      4
  in
  let cl = Cluster.create config in
  let _obj, tasks = setup cl ~nodes:4 ~pages:12 in
  for p = 0 to 11 do
    wr cl tasks.(1) (p * wpp) (700 + p)
  done;
  Alcotest.(check bool) "paging space written" true
    (Disk.writes (Store_pager.disk (Cluster.default_pager cl)) > 0);
  (* data survives the round trip through the pager *)
  for p = 0 to 11 do
    Alcotest.(check int)
      (Printf.sprintf "page %d" p)
      (700 + p)
      (rd cl tasks.(2) (p * wpp))
  done

let () =
  Alcotest.run "xmm"
    [
      ( "protocol",
        [
          Alcotest.test_case "clean at pager once" `Quick test_clean_at_pager_once;
          Alcotest.test_case "centralized serialization" `Quick
            test_centralized_serialization;
          Alcotest.test_case "invalidates readers" `Quick
            test_write_invalidates_all_readers;
          Alcotest.test_case "message economy" `Quick test_message_economy;
        ] );
      ( "resources",
        [
          Alcotest.test_case "state matrix growth" `Quick test_state_grows_with_nodes;
          Alcotest.test_case "dirty eviction to disk" `Quick
            test_xmm_dirty_eviction_goes_to_disk;
        ] );
    ]
