(* Tests for the per-node Mach VM model: local faulting, shadow/copy
   chains, eviction and the kernel EMMI entry points. *)

module Engine = Asvm_simcore.Engine
module M = Asvm_machvm
module Vm = M.Vm
module Prot = M.Prot
module Contents = M.Contents
module Emmi = M.Emmi
module Address_map = M.Address_map

let wpp = 4

let make_vm ?(memory_pages = 10_000) () =
  let engine = Engine.create () in
  let config =
    { M.Vm_config.default with words_per_page = wpp; memory_pages }
  in
  let ids = M.Ids.Alloc.create () in
  let vm =
    Vm.create ~engine ~node:0 ~config ~backing:(M.Backing.in_memory ()) ~ids
  in
  (engine, ids, vm)

(* Synchronous helpers: run the engine to completion around async ops. *)
let run_write engine vm task addr value =
  let done_ = ref false in
  Vm.write_word vm ~task ~addr ~value (fun () -> done_ := true);
  Engine.run engine;
  if not !done_ then Alcotest.fail "write did not complete"

let run_read engine vm task addr =
  let result = ref None in
  Vm.read_word vm ~task ~addr (fun v -> result := Some v);
  Engine.run engine;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "read did not complete"

let map_fresh ?(npages = 8) vm ids task =
  let obj =
    Vm.create_object vm ~id:(M.Ids.Alloc.fresh ids) ~size_pages:npages
      ~temporary:true
  in
  ignore
    (Vm.map vm ~task ~obj:obj.M.Vm_object.id ~start:0 ~npages ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_copy);
  obj

let test_zero_fill_read () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  ignore (map_fresh vm ids task);
  Alcotest.(check int) "fresh memory reads zero" 0 (run_read engine vm task 5)

let test_write_then_read () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  ignore (map_fresh vm ids task);
  run_write engine vm task 9 42;
  Alcotest.(check int) "read back" 42 (run_read engine vm task 9);
  Alcotest.(check int) "other word still zero" 0 (run_read engine vm task 8)

let test_fault_accounting () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  ignore (map_fresh vm ids task);
  run_write engine vm task 0 1;
  let f1 = Vm.faults vm in
  (* same page, write access already installed: no new fault *)
  run_write engine vm task 1 2;
  Alcotest.(check int) "no second fault" f1 (Vm.faults vm);
  Alcotest.(check bool) "faults were local" true (Vm.local_faults vm > 0)

let test_read_then_write_upgrades () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  ignore (map_fresh vm ids task);
  Alcotest.(check int) "read first" 0 (run_read engine vm task 0);
  let f1 = Vm.faults vm in
  run_write engine vm task 0 7;
  Alcotest.(check int) "write after read faults again" (f1 + 1) (Vm.faults vm);
  Alcotest.(check int) "value" 7 (run_read engine vm task 0)

let test_unmapped_faults () =
  let engine, _ids, vm = make_vm () in
  let task = Vm.create_task vm in
  let failed = ref false in
  Vm.read_word vm ~task ~addr:0 (fun _ -> ());
  (try Engine.run engine with Failure _ -> failed := true);
  Alcotest.(check bool) "unmapped access fails" true !failed

(* --------------- symmetric copy --------------- *)

let test_symmetric_copy_isolation () =
  let engine, ids, vm = make_vm () in
  let parent = Vm.create_task vm in
  let obj = map_fresh vm ids parent in
  run_write engine vm parent 0 11;
  (* "fork": child maps the same object; both entries need_copy *)
  let child = Vm.create_task vm in
  ignore
    (Vm.map vm ~task:child ~obj:obj.M.Vm_object.id ~start:0 ~npages:8
       ~obj_offset:0 ~inherit_:M.Address_map.Inherit_copy);
  Vm.mark_needs_copy vm ~task:parent ~start:0;
  Vm.mark_needs_copy vm ~task:child ~start:0;
  (* child reads through the shared frozen object *)
  Alcotest.(check int) "child sees parent value" 11 (run_read engine vm child 0);
  (* child writes: gets its own shadow object *)
  run_write engine vm child 0 22;
  Alcotest.(check int) "child sees own write" 22 (run_read engine vm child 0);
  Alcotest.(check int) "parent unaffected" 11 (run_read engine vm parent 0);
  (* parent writes: gets its own shadow too *)
  run_write engine vm parent 1 33;
  Alcotest.(check int) "parent write visible to parent" 33
    (run_read engine vm parent 1);
  Alcotest.(check int) "child still sees frozen zero" 0 (run_read engine vm child 1)

(* --------------- asymmetric copy --------------- *)

let test_asymmetric_copy_pull () =
  let engine, ids, vm = make_vm () in
  let parent = Vm.create_task vm in
  let obj = map_fresh vm ids parent in
  run_write engine vm parent 0 7;
  let copy = Vm.make_asymmetric_copy vm ~src:obj.M.Vm_object.id in
  let child = Vm.create_task vm in
  ignore
    (Vm.map vm ~task:child ~obj:copy.M.Vm_object.id ~start:0 ~npages:8
       ~obj_offset:0 ~inherit_:M.Address_map.Inherit_copy);
  (* pull: the page is retrieved through the shadow link *)
  Alcotest.(check int) "copy sees snapshot" 7 (run_read engine vm child 0)

let test_asymmetric_copy_push () =
  let engine, ids, vm = make_vm () in
  let parent = Vm.create_task vm in
  let obj = map_fresh vm ids parent in
  run_write engine vm parent 0 7;
  let copy = Vm.make_asymmetric_copy vm ~src:obj.M.Vm_object.id in
  let child = Vm.create_task vm in
  ignore
    (Vm.map vm ~task:child ~obj:copy.M.Vm_object.id ~start:0 ~npages:8
       ~obj_offset:0 ~inherit_:M.Address_map.Inherit_copy);
  (* parent modifies after the copy: frozen contents are pushed first *)
  run_write engine vm parent 0 9;
  Alcotest.(check int) "parent sees new value" 9 (run_read engine vm parent 0);
  Alcotest.(check int) "copy still sees snapshot" 7 (run_read engine vm child 0);
  (* the push marked the page version current: a second write to the
     same page is silent *)
  let f = Vm.faults vm in
  run_write engine vm parent wpp 1;
  run_write engine vm parent (wpp + 1) 2;
  Alcotest.(check int) "second write to same page no fault" (f + 1) (Vm.faults vm)

let test_copy_chain_three_generations () =
  let engine, ids, vm = make_vm () in
  let t1 = Vm.create_task vm in
  let obj = map_fresh vm ids t1 in
  run_write engine vm t1 0 1;
  (* generation 2 *)
  let c1 = Vm.make_asymmetric_copy vm ~src:obj.M.Vm_object.id in
  let t2 = Vm.create_task vm in
  ignore
    (Vm.map vm ~task:t2 ~obj:c1.M.Vm_object.id ~start:0 ~npages:8 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_copy);
  run_write engine vm t1 0 2;
  (* generation 3: copy of the copy *)
  let c2 = Vm.make_asymmetric_copy vm ~src:c1.M.Vm_object.id in
  let t3 = Vm.create_task vm in
  ignore
    (Vm.map vm ~task:t3 ~obj:c2.M.Vm_object.id ~start:0 ~npages:8 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_copy);
  Alcotest.(check int) "t1 sees latest" 2 (run_read engine vm t1 0);
  Alcotest.(check int) "t2 sees snapshot at fork 1" 1 (run_read engine vm t2 0);
  Alcotest.(check int) "t3 sees snapshot at fork 2" 1 (run_read engine vm t3 0);
  run_write engine vm t2 0 5;
  Alcotest.(check int) "t2 write isolated from t3" 1 (run_read engine vm t3 0);
  Alcotest.(check int) "t2 write isolated from t1" 2 (run_read engine vm t1 0)

let test_multiple_copies_of_same_source () =
  let engine, ids, vm = make_vm () in
  let t1 = Vm.create_task vm in
  let obj = map_fresh vm ids t1 in
  run_write engine vm t1 0 10;
  let c1 = Vm.make_asymmetric_copy vm ~src:obj.M.Vm_object.id in
  let t2 = Vm.create_task vm in
  ignore
    (Vm.map vm ~task:t2 ~obj:c1.M.Vm_object.id ~start:0 ~npages:8 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_copy);
  run_write engine vm t1 0 20;
  (* second copy sees the value at ITS copy time *)
  let c2 = Vm.make_asymmetric_copy vm ~src:obj.M.Vm_object.id in
  let t3 = Vm.create_task vm in
  ignore
    (Vm.map vm ~task:t3 ~obj:c2.M.Vm_object.id ~start:0 ~npages:8 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_copy);
  run_write engine vm t1 0 30;
  Alcotest.(check int) "first copy snapshot" 10 (run_read engine vm t2 0);
  Alcotest.(check int) "second copy snapshot" 20 (run_read engine vm t3 0);
  Alcotest.(check int) "source current" 30 (run_read engine vm t1 0)

(* --------------- eviction / backing store --------------- *)

let test_eviction_preserves_data () =
  let engine, ids, vm = make_vm ~memory_pages:4 () in
  let task = Vm.create_task vm in
  ignore (map_fresh ~npages:16 vm ids task);
  for p = 0 to 15 do
    run_write engine vm task (p * wpp) (100 + p)
  done;
  Alcotest.(check bool) "capacity respected" true (Vm.resident_total vm <= 4);
  for p = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "page %d preserved" p)
      (100 + p)
      (run_read engine vm task (p * wpp))
  done

let test_eviction_skips_wired () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  let obj = map_fresh vm ids task in
  run_write engine vm task 0 1;
  Vm.wire vm ~obj:obj.M.Vm_object.id ~page:0;
  Alcotest.(check bool) "only frame wired: no eviction" false (Vm.evict_one vm);
  Vm.unwire vm ~obj:obj.M.Vm_object.id ~page:0;
  Alcotest.(check bool) "unwired: evicts" true (Vm.evict_one vm);
  ignore engine

(* --------------- managed objects / kernel EMMI --------------- *)

(* A toy manager that supplies pages with a recognisable pattern and
   records requests; stands in for XMM/ASVM in kernel-level tests. *)
let toy_manager vm oid ~grant =
  let requests = ref [] in
  let manager =
    {
      Emmi.m_data_request =
        (fun ~page ~desired ->
          requests := (`Request, page, desired) :: !requests;
          let c = Contents.zero ~words:wpp in
          Contents.set c 0 (1000 + page);
          Vm.data_supply vm ~obj:oid ~page ~contents:c ~lock:grant
            ~mode:Emmi.Supply_normal);
      m_data_unlock =
        (fun ~page ~desired ->
          requests := (`Unlock, page, desired) :: !requests;
          Vm.lock_request vm ~obj:oid ~page
            ~op:{ Emmi.max_access = Prot.Read_write; clean = false; mode = Emmi.Lock_plain }
            ~reply:(fun _ -> ()));
      m_data_return =
        (fun ~page ~contents:_ ~dirty:_ ->
          requests := (`Return, page, Prot.No_access) :: !requests);
    }
  in
  (manager, requests)

let test_managed_read_fault () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  let oid = M.Ids.Alloc.fresh ids in
  let _obj = Vm.create_object vm ~id:oid ~size_pages:8 ~temporary:false in
  let manager, requests = toy_manager vm oid ~grant:Prot.Read_only in
  Vm.set_manager vm oid (Some manager);
  ignore
    (Vm.map vm ~task ~obj:oid ~start:0 ~npages:8 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_share);
  Alcotest.(check int) "manager-supplied" 1003 (run_read engine vm task (3 * wpp));
  Alcotest.(check int) "one request" 1 (List.length !requests);
  Alcotest.(check bool) "resident now" true (Vm.is_resident vm ~obj:oid ~page:3)

let test_managed_upgrade () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  let oid = M.Ids.Alloc.fresh ids in
  ignore (Vm.create_object vm ~id:oid ~size_pages:8 ~temporary:false);
  let manager, requests = toy_manager vm oid ~grant:Prot.Read_only in
  Vm.set_manager vm oid (Some manager);
  ignore
    (Vm.map vm ~task ~obj:oid ~start:0 ~npages:8 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_share);
  Alcotest.(check int) "read in" 1000 (run_read engine vm task 0);
  run_write engine vm task 0 5;
  Alcotest.(check int) "write visible" 5 (run_read engine vm task 0);
  let kinds = List.map (fun (k, _, _) -> k) !requests in
  Alcotest.(check bool) "unlock was requested" true (List.mem `Unlock kinds)

let test_lock_request_flush_returns_dirty () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  let oid = M.Ids.Alloc.fresh ids in
  ignore (Vm.create_object vm ~id:oid ~size_pages:8 ~temporary:false);
  let manager, _ = toy_manager vm oid ~grant:Prot.Read_write in
  Vm.set_manager vm oid (Some manager);
  ignore
    (Vm.map vm ~task ~obj:oid ~start:0 ~npages:8 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_share);
  run_write engine vm task 0 77;
  let result = ref None in
  Vm.lock_request vm ~obj:oid ~page:0
    ~op:{ Emmi.max_access = Prot.No_access; clean = true; mode = Emmi.Lock_plain }
    ~reply:(fun r -> result := Some r);
  Engine.run engine;
  (match !result with
  | Some (Emmi.Lock_done { returned = Some c }) ->
    Alcotest.(check int) "dirty contents returned" 77 (Contents.get c 0)
  | _ -> Alcotest.fail "expected Lock_done with contents");
  Alcotest.(check bool) "page flushed" false (Vm.is_resident vm ~obj:oid ~page:0);
  (* a subsequent read faults to the manager again *)
  Alcotest.(check int) "refetched" 1000 (run_read engine vm task 0)

let test_lock_request_downgrade () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  let oid = M.Ids.Alloc.fresh ids in
  ignore (Vm.create_object vm ~id:oid ~size_pages:8 ~temporary:false);
  let manager, requests = toy_manager vm oid ~grant:Prot.Read_write in
  Vm.set_manager vm oid (Some manager);
  ignore
    (Vm.map vm ~task ~obj:oid ~start:0 ~npages:8 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_share);
  run_write engine vm task 0 5;
  let result = ref None in
  Vm.lock_request vm ~obj:oid ~page:0
    ~op:{ Emmi.max_access = Prot.Read_only; clean = true; mode = Emmi.Lock_plain }
    ~reply:(fun r -> result := Some r);
  Engine.run engine;
  Alcotest.(check (option Alcotest.reject)) "ignore" None None;
  (match Vm.frame_access vm ~obj:oid ~page:0 with
  | Some Prot.Read_only -> ()
  | _ -> Alcotest.fail "expected read-only after downgrade");
  (* reads still work without manager *)
  let f = Vm.faults vm in
  Alcotest.(check int) "read ok" 5 (run_read engine vm task 0);
  Alcotest.(check int) "no new fault for read" f (Vm.faults vm);
  (* write needs the manager again *)
  run_write engine vm task 0 6;
  let kinds = List.map (fun (k, _, _) -> k) !requests in
  Alcotest.(check bool) "unlock requested after downgrade" true
    (List.mem `Unlock kinds)

let test_lock_not_present () =
  let engine, ids, vm = make_vm () in
  let oid = M.Ids.Alloc.fresh ids in
  let obj = Vm.create_object vm ~id:oid ~size_pages:8 ~temporary:false in
  Vm.set_manager vm oid (Some Emmi.null_manager);
  (* give the object a local copy so a push is actually needed *)
  obj.M.Vm_object.manager <- None;
  ignore (Vm.make_asymmetric_copy vm ~src:oid);
  Vm.set_manager vm oid (Some Emmi.null_manager);
  let result = ref None in
  Vm.lock_request vm ~obj:oid ~page:0
    ~op:
      { Emmi.max_access = Prot.Read_only; clean = false; mode = Emmi.Lock_push_first }
    ~reply:(fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some Emmi.Lock_not_present -> ()
  | _ -> Alcotest.fail "expected Lock_not_present for absent page with local copy"

let test_pull_request_chain () =
  let engine, ids, vm = make_vm () in
  let t1 = Vm.create_task vm in
  let obj = map_fresh vm ids t1 in
  run_write engine vm t1 0 42;
  let c1 = Vm.make_asymmetric_copy vm ~src:obj.M.Vm_object.id in
  let result = ref None in
  Vm.pull_request vm ~obj:c1.M.Vm_object.id ~page:0 ~reply:(fun r ->
      result := Some r);
  Engine.run engine;
  (match !result with
  | Some (Emmi.Pull_contents c) ->
    Alcotest.(check int) "pulled through shadow" 42 (Contents.get c 0)
  | _ -> Alcotest.fail "expected contents");
  (* page never written anywhere: zero-fill *)
  let result2 = ref None in
  Vm.pull_request vm ~obj:c1.M.Vm_object.id ~page:5 ~reply:(fun r ->
      result2 := Some r);
  Engine.run engine;
  match !result2 with
  | Some Emmi.Pull_zero_fill -> ()
  | _ -> Alcotest.fail "expected zero fill"

let test_pull_request_ask_shadow () =
  let engine, ids, vm = make_vm () in
  (* managed source, local copy of it: pull on the copy must hand back
     the managed shadow id *)
  let oid = M.Ids.Alloc.fresh ids in
  ignore (Vm.create_object vm ~id:oid ~size_pages:8 ~temporary:false);
  Vm.set_manager vm oid (Some Emmi.null_manager);
  let c = Vm.make_asymmetric_copy vm ~src:oid in
  let result = ref None in
  Vm.pull_request vm ~obj:c.M.Vm_object.id ~page:0 ~reply:(fun r ->
      result := Some r);
  Engine.run engine;
  match !result with
  | Some (Emmi.Pull_ask_shadow id) -> Alcotest.(check int) "shadow id" oid id
  | _ -> Alcotest.fail "expected ask-shadow"

let test_try_accept_page_respects_memory () =
  let engine, ids, vm = make_vm ~memory_pages:2 () in
  let task = Vm.create_task vm in
  let obj = map_fresh ~npages:4 vm ids task in
  run_write engine vm task 0 1;
  run_write engine vm task wpp 2;
  let c = Contents.zero ~words:wpp in
  Alcotest.(check bool) "full node refuses transfer" false
    (Vm.try_accept_page vm ~obj:obj.M.Vm_object.id ~page:3 ~contents:c
       ~dirty:false ~access:Prot.Read_only)

let test_contents_is_copied_on_supply () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  let oid = M.Ids.Alloc.fresh ids in
  ignore (Vm.create_object vm ~id:oid ~size_pages:4 ~temporary:false);
  let c = Contents.zero ~words:wpp in
  Contents.set c 0 9;
  let manager =
    {
      Emmi.m_data_request =
        (fun ~page ~desired:_ ->
          Vm.data_supply vm ~obj:oid ~page ~contents:c ~lock:Prot.Read_write
            ~mode:Emmi.Supply_normal);
      m_data_unlock = (fun ~page:_ ~desired:_ -> ());
      m_data_return = (fun ~page:_ ~contents:_ ~dirty:_ -> ());
    }
  in
  Vm.set_manager vm oid (Some manager);
  ignore
    (Vm.map vm ~task ~obj:oid ~start:0 ~npages:4 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_share);
  run_write engine vm task 0 100;
  Alcotest.(check int) "supplied buffer not aliased" 9 (Contents.get c 0)

(* --------------- unmap / protect / terminate --------------- *)

let test_unmap () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  ignore (map_fresh vm ids task);
  run_write engine vm task 0 5;
  Vm.unmap vm ~task ~start:0;
  let failed = ref false in
  Vm.read_word vm ~task ~addr:0 (fun _ -> ());
  (try Engine.run engine with Failure _ -> failed := true);
  Alcotest.(check bool) "unmapped range faults" true !failed

let test_unmap_keeps_other_entries () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  let obj_a = map_fresh ~npages:4 vm ids task in
  let obj_b =
    Vm.create_object vm ~id:(M.Ids.Alloc.fresh ids) ~size_pages:4
      ~temporary:true
  in
  ignore
    (Vm.map vm ~task ~obj:obj_b.M.Vm_object.id ~start:8 ~npages:4 ~obj_offset:0
       ~inherit_:M.Address_map.Inherit_copy);
  run_write engine vm task 0 1;
  run_write engine vm task (8 * wpp) 2;
  Vm.unmap vm ~task ~start:0;
  Alcotest.(check int) "other entry intact" 2 (run_read engine vm task (8 * wpp));
  ignore obj_a

let test_protect () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  ignore (map_fresh vm ids task);
  run_write engine vm task 0 5;
  Vm.protect vm ~task ~start:0 ~max_prot:Prot.Read_only;
  Alcotest.(check int) "reads still allowed" 5 (run_read engine vm task 0);
  let failed = ref false in
  Vm.write_word vm ~task ~addr:0 ~value:6 (fun () -> ());
  (try Engine.run engine with Failure _ -> failed := true);
  Alcotest.(check bool) "write is a protection violation" true !failed

let test_protect_none_blocks_reads () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  ignore (map_fresh vm ids task);
  run_write engine vm task 0 5;
  Vm.protect vm ~task ~start:0 ~max_prot:Prot.No_access;
  let failed = ref false in
  Vm.read_word vm ~task ~addr:0 (fun _ -> ());
  (try Engine.run engine with Failure _ -> failed := true);
  Alcotest.(check bool) "read blocked" true !failed

let test_terminate_object () =
  let engine, ids, vm = make_vm () in
  let task = Vm.create_task vm in
  let obj = map_fresh ~npages:4 vm ids task in
  run_write engine vm task 0 1;
  run_write engine vm task wpp 2;
  let before = Vm.resident_total vm in
  Vm.unmap vm ~task ~start:0;
  Vm.terminate_object vm obj.M.Vm_object.id;
  Alcotest.(check int) "frames released" (before - 2) (Vm.resident_total vm);
  Alcotest.(check bool) "object gone" true
    (Vm.find_object vm obj.M.Vm_object.id = None)

let test_terminate_managed_rejected () =
  let _engine, ids, vm = make_vm () in
  let oid = M.Ids.Alloc.fresh ids in
  ignore (Vm.create_object vm ~id:oid ~size_pages:4 ~temporary:false);
  Vm.set_manager vm oid (Some Emmi.null_manager);
  Alcotest.check_raises "managed object"
    (Invalid_argument "Vm.terminate_object: object is managed") (fun () ->
      Vm.terminate_object vm oid)

let () =
  Alcotest.run "machvm"
    [
      ( "local faults",
        [
          Alcotest.test_case "zero fill" `Quick test_zero_fill_read;
          Alcotest.test_case "write/read" `Quick test_write_then_read;
          Alcotest.test_case "fault accounting" `Quick test_fault_accounting;
          Alcotest.test_case "upgrade" `Quick test_read_then_write_upgrades;
          Alcotest.test_case "unmapped" `Quick test_unmapped_faults;
        ] );
      ( "symmetric copy",
        [ Alcotest.test_case "isolation" `Quick test_symmetric_copy_isolation ] );
      ( "asymmetric copy",
        [
          Alcotest.test_case "pull" `Quick test_asymmetric_copy_pull;
          Alcotest.test_case "push" `Quick test_asymmetric_copy_push;
          Alcotest.test_case "three generations" `Quick
            test_copy_chain_three_generations;
          Alcotest.test_case "multiple copies" `Quick
            test_multiple_copies_of_same_source;
        ] );
      ( "paging",
        [
          Alcotest.test_case "eviction preserves data" `Quick
            test_eviction_preserves_data;
          Alcotest.test_case "wired pages stay" `Quick test_eviction_skips_wired;
          Alcotest.test_case "accept respects memory" `Quick
            test_try_accept_page_respects_memory;
        ] );
      ( "vm calls",
        [
          Alcotest.test_case "unmap" `Quick test_unmap;
          Alcotest.test_case "unmap keeps others" `Quick
            test_unmap_keeps_other_entries;
          Alcotest.test_case "protect read-only" `Quick test_protect;
          Alcotest.test_case "protect none" `Quick test_protect_none_blocks_reads;
          Alcotest.test_case "terminate" `Quick test_terminate_object;
          Alcotest.test_case "terminate managed" `Quick
            test_terminate_managed_rejected;
        ] );
      ( "emmi",
        [
          Alcotest.test_case "managed read fault" `Quick test_managed_read_fault;
          Alcotest.test_case "managed upgrade" `Quick test_managed_upgrade;
          Alcotest.test_case "flush returns dirty" `Quick
            test_lock_request_flush_returns_dirty;
          Alcotest.test_case "downgrade" `Quick test_lock_request_downgrade;
          Alcotest.test_case "push not present" `Quick test_lock_not_present;
          Alcotest.test_case "pull chain" `Quick test_pull_request_chain;
          Alcotest.test_case "pull ask shadow" `Quick test_pull_request_ask_shadow;
          Alcotest.test_case "supply copies" `Quick
            test_contents_is_copied_on_supply;
        ] );
    ]
