(* Tests for the experiment workloads: EM3D validation, copy-chain
   correctness, file I/O sanity and fault microbenchmark monotonicity. *)

module Config = Asvm_cluster.Config
module Em3d = Asvm_workloads.Em3d
module Copy_chain = Asvm_workloads.Copy_chain
module File_io = Asvm_workloads.File_io
module Fault_micro = Asvm_workloads.Fault_micro

let test_em3d_validate_asvm () =
  Alcotest.(check bool)
    "distributed EM3D equals sequential reference (ASVM)" true
    (Em3d.validate ~mm:Config.Mm_asvm ~cells:64 ~nodes:4 ~iterations:3 ~seed:11)

let test_em3d_leaves_invariants_intact () =
  (* after a full benchmark run, the distributed state must audit clean *)
  let r =
    Asvm_workloads.Em3d.run ~mm:Config.Mm_asvm
      ~audit:(fun a ->
        match Asvm_core.Asvm.check_invariants a with
        | [] -> ()
        | v -> Alcotest.fail (String.concat "\n" v))
      { cells = 16_000; nodes = 8; iterations = 3; seed = 5 }
  in
  Alcotest.(check bool) "ran" true (r.Em3d.seconds > 0.)

let test_em3d_validate_xmm () =
  Alcotest.(check bool)
    "distributed EM3D equals sequential reference (XMM)" true
    (Em3d.validate ~mm:Config.Mm_xmm ~cells:64 ~nodes:4 ~iterations:3 ~seed:11)

let test_em3d_validate_single_node () =
  Alcotest.(check bool)
    "single node EM3D" true
    (Em3d.validate ~mm:Config.Mm_asvm ~cells:32 ~nodes:1 ~iterations:2 ~seed:3)

let test_em3d_speedup_shape () =
  (* ASVM: more nodes must reduce the execution time of a fixed problem;
     XMM must be slower than ASVM in parallel runs. The sequential
     baseline runs on a large-memory node, as in the paper. *)
  let cells = 64_000 in
  let run ?memory_pages mm nodes =
    (Em3d.run ~mm ?memory_pages { cells; nodes; iterations = 4; seed = 5 })
      .seconds
  in
  let a1 =
    run ~memory_pages:(Em3d.data_pages ~cells + 64) Config.Mm_asvm 1
  in
  let a4 = run Config.Mm_asvm 4 in
  let a16 = run Config.Mm_asvm 16 in
  Alcotest.(check bool)
    (Printf.sprintf "ASVM speeds up (1:%.2f 4:%.2f 16:%.2f)" a1 a4 a16)
    true
    (a4 < a1 && a16 < a4);
  let x16 = run Config.Mm_xmm 16 in
  Alcotest.(check bool)
    (Printf.sprintf "XMM slower than ASVM at 16 nodes (%.2f vs %.2f)" x16 a16)
    true (x16 > 2. *. a16);
  let x4 = run Config.Mm_xmm 4 in
  Alcotest.(check bool)
    (Printf.sprintf "XMM slows down with nodes (4:%.2f 16:%.2f)" x4 x16)
    true (x16 > x4)

let test_em3d_fits () =
  (* the paper's own feasibility pattern *)
  let mem = Asvm_machvm.Vm_config.default.memory_pages in
  let fits cells nodes = Em3d.fits ~cells ~nodes ~memory_pages_per_node:mem in
  Alcotest.(check bool) "64k/2 fits" true (fits 64_000 2);
  Alcotest.(check bool) "256k/4 does not fit" false (fits 256_000 4);
  Alcotest.(check bool) "256k/8 fits" true (fits 256_000 8);
  Alcotest.(check bool) "1M/16 does not fit" false (fits 1_024_000 16);
  Alcotest.(check bool) "1M/32 fits" true (fits 1_024_000 32)

let test_copy_chain_values () =
  (* measure already asserts every faulted value matches the snapshot *)
  let r = Copy_chain.measure ~mm:Config.Mm_asvm ~chain:4 ~pages:8 () in
  Alcotest.(check int) "all pages faulted" 8 r.Copy_chain.faults;
  let r = Copy_chain.measure ~mm:Config.Mm_xmm ~chain:4 ~pages:8 () in
  Alcotest.(check int) "all pages faulted (xmm)" 8 r.Copy_chain.faults

let test_copy_chain_monotone () =
  let mean mm chain =
    (Copy_chain.measure ~mm ~chain ~pages:8 ()).Copy_chain.mean_fault_ms
  in
  let a2 = mean Config.Mm_asvm 2 and a6 = mean Config.Mm_asvm 6 in
  Alcotest.(check bool) "ASVM grows with chain" true (a6 > a2);
  let x2 = mean Config.Mm_xmm 2 and x6 = mean Config.Mm_xmm 6 in
  Alcotest.(check bool) "XMM grows with chain" true (x6 > x2);
  Alcotest.(check bool)
    (Printf.sprintf "XMM slope much steeper (%.2f vs %.2f per stage)"
       ((x6 -. x2) /. 4.)
       ((a6 -. a2) /. 4.))
    true
    ((x6 -. x2) /. 4. > 3. *. ((a6 -. a2) /. 4.))

let test_file_read_scales () =
  let rate mm nodes =
    (File_io.read_test ~mm ~nodes ~file_mb:1 ()).File_io.per_node_mb_s
  in
  (* ASVM per-node read rate must stay within a small factor as nodes
     grow (distributed owners); XMM must collapse roughly like 1/N *)
  let a4 = rate Config.Mm_asvm 4 and a16 = rate Config.Mm_asvm 16 in
  let x4 = rate Config.Mm_xmm 4 and x16 = rate Config.Mm_xmm 16 in
  Alcotest.(check bool)
    (Printf.sprintf "ASVM read sustains (4:%.2f 16:%.2f)" a4 a16)
    true
    (a16 > a4 /. 2.5);
  Alcotest.(check bool)
    (Printf.sprintf "XMM read collapses (4:%.2f 16:%.2f)" x4 x16)
    true
    (x16 < x4 /. 2.5)

let test_file_write_pager_bound () =
  let r = File_io.write_test ~mm:Config.Mm_asvm ~nodes:4 ~file_mb:1 () in
  (* every page is supplied exactly once by the file pager *)
  Alcotest.(check int) "pager supplied all pages" 128 r.File_io.pager_supplies

(* -------------------- SOR -------------------- *)

let test_sor_validate () =
  Alcotest.(check bool)
    "distributed SOR equals sequential stencil (ASVM)" true
    (Asvm_workloads.Sor.validate ~mm:Config.Mm_asvm ~grid:8 ~nodes:3
       ~iterations:3);
  Alcotest.(check bool)
    "distributed SOR equals sequential stencil (XMM)" true
    (Asvm_workloads.Sor.validate ~mm:Config.Mm_xmm ~grid:8 ~nodes:3
       ~iterations:3)

let test_sor_neighbour_traffic_only () =
  (* nearest-neighbour sharing: the fault count grows linearly with
     nodes (two boundary pages each), not quadratically *)
  let module Sor = Asvm_workloads.Sor in
  let faults nodes =
    (Sor.run ~mm:Config.Mm_asvm
       { Sor.grid = 512; nodes; iterations = 4 })
      .Sor.faults
  in
  let f4 = faults 4 and f8 = faults 8 in
  Alcotest.(check bool)
    (Printf.sprintf "linear boundary traffic (4:%d 8:%d)" f4 f8)
    true
    (f8 < 3 * f4)

let test_sor_scales () =
  let module Sor = Asvm_workloads.Sor in
  let t nodes =
    (Sor.run ~mm:Config.Mm_asvm { Sor.grid = 1024; nodes; iterations = 5 })
      .Sor.seconds
  in
  let t1 = t 1 and t8 = t 8 in
  Alcotest.(check bool)
    (Printf.sprintf "SOR speeds up (1:%.3f 8:%.3f)" t1 t8)
    true (t8 < t1 /. 2.)

let test_fault_micro_monotone () =
  let m readers =
    Fault_micro.measure ~nodes:20 ~mm:Config.Mm_asvm
      (Fault_micro.Write_fault { read_copies = readers })
  in
  let l1 = m 1 and l8 = m 8 and l16 = m 16 in
  Alcotest.(check bool)
    (Printf.sprintf "latency grows with readers (%.2f %.2f %.2f)" l1 l8 l16)
    true
    (l1 < l8 && l8 < l16)

let test_fault_micro_read_constant () =
  (* paper: ASVM read faults cost the same for the first and second
     reader (2.35 both) — both are owner-supplied *)
  let r1 =
    Fault_micro.measure ~nodes:8 ~mm:Config.Mm_asvm
      (Fault_micro.Read_fault { nth_reader = 1 })
  in
  let r2 =
    Fault_micro.measure ~nodes:8 ~mm:Config.Mm_asvm
      (Fault_micro.Read_fault { nth_reader = 2 })
  in
  Alcotest.(check (float 0.3)) "read fault latency constant" r1 r2

let () =
  Alcotest.run "workloads"
    [
      ( "em3d",
        [
          Alcotest.test_case "validate asvm" `Quick test_em3d_validate_asvm;
          Alcotest.test_case "invariants after run" `Quick
            test_em3d_leaves_invariants_intact;
          Alcotest.test_case "validate xmm" `Quick test_em3d_validate_xmm;
          Alcotest.test_case "validate 1 node" `Quick test_em3d_validate_single_node;
          Alcotest.test_case "speedup shape" `Slow test_em3d_speedup_shape;
          Alcotest.test_case "memory feasibility" `Quick test_em3d_fits;
        ] );
      ( "copy chain",
        [
          Alcotest.test_case "values" `Quick test_copy_chain_values;
          Alcotest.test_case "monotone" `Quick test_copy_chain_monotone;
        ] );
      ( "file io",
        [
          Alcotest.test_case "read scales" `Slow test_file_read_scales;
          Alcotest.test_case "write pager bound" `Quick test_file_write_pager_bound;
        ] );
      ( "sor",
        [
          Alcotest.test_case "validate" `Quick test_sor_validate;
          Alcotest.test_case "neighbour traffic" `Quick
            test_sor_neighbour_traffic_only;
          Alcotest.test_case "speedup" `Quick test_sor_scales;
        ] );
      ( "fault micro",
        [
          Alcotest.test_case "monotone in readers" `Quick test_fault_micro_monotone;
          Alcotest.test_case "read constant" `Quick test_fault_micro_read_constant;
        ] );
    ]
