(* Integration tests: ASVM and XMM running on a simulated cluster.
   These exercise the full stack: kernel VM -> EMMI -> manager ->
   transport -> mesh. *)

module Engine = Asvm_simcore.Engine
module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map
module Asvm = Asvm_core.Asvm

let wpp = Asvm_machvm.Vm_config.default.words_per_page

let make ?(nodes = 4) ?(mm = Config.Mm_asvm) ?(memory_pages = 100_000) () =
  let config = Config.with_memory_pages (Config.default ~nodes) memory_pages in
  Cluster.create (Config.with_mm config mm)

(* Synchronous wrappers: each op runs the engine to completion, so ops
   are sequentially consistent by construction and we can check values
   against a simple reference. *)
let wr cl task addr value =
  let ok = ref false in
  Cluster.write_word cl ~task ~addr ~value (fun () -> ok := true);
  Cluster.run cl;
  if not !ok then Alcotest.failf "write to %d did not complete" addr

let rd cl task addr =
  let result = ref None in
  Cluster.read_word cl ~task ~addr (fun v -> result := Some v);
  Cluster.run cl;
  match !result with
  | Some v -> v
  | None -> Alcotest.failf "read of %d did not complete" addr

let setup_shared cl ~nodes ~pages =
  let sharers = List.init nodes Fun.id in
  let obj = Cluster.create_shared_object cl ~size_pages:pages ~sharers () in
  let tasks =
    List.map
      (fun node ->
        let task = Cluster.create_task cl ~node in
        Cluster.map cl ~task ~obj ~start:0 ~npages:pages
          ~inherit_:Address_map.Inherit_share;
        task)
      sharers
  in
  (obj, Array.of_list tasks)

let coherence_scenario mm () =
  let cl = make ~mm () in
  let _obj, tasks = setup_shared cl ~nodes:4 ~pages:8 in
  (* fresh memory is zero everywhere *)
  Alcotest.(check int) "fresh zero on node 2" 0 (rd cl tasks.(2) 5);
  (* node 0 writes, everyone reads it *)
  wr cl tasks.(0) 5 111;
  Alcotest.(check int) "node 1 sees write" 111 (rd cl tasks.(1) 5);
  Alcotest.(check int) "node 2 sees write" 111 (rd cl tasks.(2) 5);
  Alcotest.(check int) "node 3 sees write" 111 (rd cl tasks.(3) 5);
  (* node 3 overwrites: read copies must be invalidated *)
  wr cl tasks.(3) 5 222;
  Alcotest.(check int) "node 0 sees overwrite" 222 (rd cl tasks.(0) 5);
  Alcotest.(check int) "node 1 sees overwrite" 222 (rd cl tasks.(1) 5);
  (* ping-pong writes *)
  wr cl tasks.(1) 5 333;
  wr cl tasks.(2) 5 444;
  Alcotest.(check int) "after ping-pong" 444 (rd cl tasks.(0) 5)

let upgrade_scenario mm () =
  let cl = make ~mm () in
  let _obj, tasks = setup_shared cl ~nodes:3 ~pages:4 in
  wr cl tasks.(0) 0 1;
  (* node 1 reads then upgrades to write on the same page *)
  Alcotest.(check int) "read before upgrade" 1 (rd cl tasks.(1) 0);
  wr cl tasks.(1) 1 2;
  Alcotest.(check int) "own write" 2 (rd cl tasks.(1) 1);
  Alcotest.(check int) "old word intact" 1 (rd cl tasks.(1) 0);
  Alcotest.(check int) "node 2 sees both" 2 (rd cl tasks.(2) 1);
  Alcotest.(check int) "node 2 sees both (2)" 1 (rd cl tasks.(2) 0)

let test_asvm_single_owner () =
  let cl = make ~mm:Config.Mm_asvm () in
  let obj, tasks = setup_shared cl ~nodes:4 ~pages:4 in
  wr cl tasks.(0) 0 1;
  wr cl tasks.(1) 0 2;
  wr cl tasks.(2) 0 3;
  ignore (rd cl tasks.(3) 0);
  let a = match Cluster.backend cl with `Asvm a -> a | `Xmm _ -> assert false in
  let owners =
    List.filter (fun n -> Asvm.is_owner a ~node:n ~obj ~page:0) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "exactly one owner" 1 (List.length owners);
  Alcotest.(check (list int)) "owner is last writer" [ 2 ] owners

let test_asvm_reader_list () =
  let cl = make ~mm:Config.Mm_asvm () in
  let obj, tasks = setup_shared cl ~nodes:4 ~pages:2 in
  wr cl tasks.(0) 0 9;
  ignore (rd cl tasks.(1) 0);
  ignore (rd cl tasks.(2) 0);
  ignore (rd cl tasks.(3) 0);
  let a = match Cluster.backend cl with `Asvm a -> a | `Xmm _ -> assert false in
  (match Asvm.readers a ~obj ~page:0 with
  | Some readers ->
    Alcotest.(check (list int))
      "owner tracks all readers" [ 1; 2; 3 ]
      (List.sort compare readers)
  | None -> Alcotest.fail "no owner found");
  (* a write flushes the reader list *)
  wr cl tasks.(1) 0 10;
  match Asvm.readers a ~obj ~page:0 with
  | Some readers -> Alcotest.(check (list int)) "readers flushed" [] readers
  | None -> Alcotest.fail "no owner after write"

let test_asvm_owner_state_is_bounded () =
  (* design rule: state only for resident/owned pages *)
  let cl = make ~mm:Config.Mm_asvm () in
  let obj, tasks = setup_shared cl ~nodes:4 ~pages:64 in
  for p = 0 to 9 do
    wr cl tasks.(1) (p * wpp) p
  done;
  let a = match Cluster.backend cl with `Asvm a -> a | `Xmm _ -> assert false in
  Alcotest.(check int) "owner entries = pages written" 10
    (Asvm.owner_entries a ~node:1 ~obj);
  Alcotest.(check int) "non-owner holds no state" 0
    (Asvm.owner_entries a ~node:2 ~obj)

let test_xmm_state_matrix () =
  let cl = make ~mm:Config.Mm_xmm ~nodes:8 () in
  let obj, _tasks = setup_shared cl ~nodes:8 ~pages:100 in
  let x = match Cluster.backend cl with `Xmm x -> x | `Asvm _ -> assert false in
  (* 1 byte per page per node, the footprint the paper criticizes *)
  Alcotest.(check int) "dense state matrix" 800 (Asvm_xmm.Xmm.state_bytes x ~obj)

let fork_snapshot mm () =
  let cl = make ~mm () in
  let parent = Cluster.create_task cl ~node:0 in
  let obj = Cluster.create_private_object cl ~node:0 ~size_pages:8 in
  Cluster.map cl ~task:parent ~obj ~start:0 ~npages:8
    ~inherit_:Address_map.Inherit_copy;
  wr cl parent 0 77;
  wr cl parent wpp 88;
  let child = ref None in
  Cluster.fork cl ~task:parent ~dst_node:2 (fun c -> child := Some c);
  Cluster.run cl;
  let child = Option.get !child in
  Alcotest.(check int) "child on destination node" 2 child.Cluster.tk_node;
  (* child sees the snapshot *)
  Alcotest.(check int) "inherited word" 77 (rd cl child 0);
  Alcotest.(check int) "inherited word 2" 88 (rd cl child wpp);
  Alcotest.(check int) "uninitialized zero" 0 (rd cl child (2 * wpp));
  (* parent writes after fork are invisible to the child *)
  wr cl parent 0 99;
  Alcotest.(check int) "snapshot isolation" 77 (rd cl child 0);
  Alcotest.(check int) "parent sees own write" 99 (rd cl parent 0);
  (* child writes are invisible to the parent *)
  wr cl child wpp 111;
  Alcotest.(check int) "parent unaffected by child" 88 (rd cl parent wpp);
  Alcotest.(check int) "child sees own write" 111 (rd cl child wpp)

let fork_chain mm () =
  (* the figure 9 scenario: fork node0 -> node1 -> node2; fault on the
     last node pulls through the whole copy chain *)
  let cl = make ~mm () in
  let t0 = Cluster.create_task cl ~node:0 in
  let obj = Cluster.create_private_object cl ~node:0 ~size_pages:8 in
  Cluster.map cl ~task:t0 ~obj ~start:0 ~npages:8
    ~inherit_:Address_map.Inherit_copy;
  wr cl t0 0 10;
  let t1 = ref None in
  Cluster.fork cl ~task:t0 ~dst_node:1 (fun c -> t1 := Some c);
  Cluster.run cl;
  let t1 = Option.get !t1 in
  wr cl t1 wpp 20;
  let t2 = ref None in
  Cluster.fork cl ~task:t1 ~dst_node:2 (fun c -> t2 := Some c);
  Cluster.run cl;
  let t2 = Option.get !t2 in
  (* page 0 lives on node 0, reached across two copy-chain stages *)
  Alcotest.(check int) "pull across two nodes" 10 (rd cl t2 0);
  (* page 1 lives on node 1 (one stage) *)
  Alcotest.(check int) "pull across one node" 20 (rd cl t2 wpp);
  (* never-written page zero-fills at the end of the chain *)
  Alcotest.(check int) "zero fill through chain" 0 (rd cl t2 (3 * wpp));
  (* writes at each generation remain isolated *)
  wr cl t0 0 11;
  wr cl t1 0 12;
  Alcotest.(check int) "t2 keeps snapshot" 10 (rd cl t2 0);
  Alcotest.(check int) "t1 keeps its own" 12 (rd cl t1 0);
  Alcotest.(check int) "t0 current" 11 (rd cl t0 0)

let fork_chain_push_scan mm () =
  (* like fork_chain, but the middle generation writes pages the last
     generation has NOT yet materialized: the frozen value must reach
     the shared copy object through the push machinery (push scan +
     push-to-peer under ASVM) before the write is granted. *)
  let cl = make ~mm () in
  let t0 = Cluster.create_task cl ~node:0 in
  let obj = Cluster.create_private_object cl ~node:0 ~size_pages:8 in
  Cluster.map cl ~task:t0 ~obj ~start:0 ~npages:8
    ~inherit_:Address_map.Inherit_copy;
  wr cl t0 0 10;
  wr cl t0 wpp 11;
  let t1 = ref None in
  Cluster.fork cl ~task:t0 ~dst_node:1 (fun c -> t1 := Some c);
  Cluster.run cl;
  let t1 = Option.get !t1 in
  let t2 = ref None in
  Cluster.fork cl ~task:t1 ~dst_node:2 (fun c -> t2 := Some c);
  Cluster.run cl;
  let t2 = Option.get !t2 in
  (* t1 writes BEFORE t2 ever touches these pages *)
  wr cl t1 0 99;
  wr cl t1 wpp 98;
  Alcotest.(check int) "t2 sees pre-write snapshot" 10 (rd cl t2 0);
  Alcotest.(check int) "t2 sees pre-write snapshot (2)" 11 (rd cl t2 wpp);
  Alcotest.(check int) "t1 keeps its writes" 99 (rd cl t1 0);
  (* and the root writing is pushed to t1's and t2's chains as needed *)
  wr cl t0 (2 * wpp) 55;
  Alcotest.(check int) "t2 zero for unwritten" 0 (rd cl t2 (2 * wpp));
  Alcotest.(check int) "t1 zero for unwritten" 0 (rd cl t1 (2 * wpp));
  Alcotest.(check int) "t0 sees own" 55 (rd cl t0 (2 * wpp))

let test_xmm_copy_chain_deadlock () =
  (* paper section 3.1: an internode copy chain crossing the same node
     twice deadlocks XMM when the copy-pager thread pool is exhausted;
     the fault never completes and requests stall in the pool queue. *)
  let config =
    { (Config.default ~nodes:2) with mm = Config.Mm_xmm; fork_threads = 1 }
  in
  let cl = Cluster.create config in
  let t0 = Cluster.create_task cl ~node:0 in
  let obj = Cluster.create_private_object cl ~node:0 ~size_pages:2 in
  Cluster.map cl ~task:t0 ~obj ~start:0 ~npages:2
    ~inherit_:Address_map.Inherit_copy;
  wr cl t0 0 7;
  (* chain 0 -> 1 -> 0 -> 1 crosses each node twice *)
  let fork task dst =
    let r = ref None in
    Cluster.fork cl ~task ~dst_node:dst (fun c -> r := Some c);
    Cluster.run cl;
    Option.get !r
  in
  let t1 = fork t0 1 in
  let t2 = fork t1 0 in
  let t3 = fork t2 1 in
  let completed = ref false in
  Cluster.read_word cl ~task:t3 ~addr:0 (fun _ -> completed := true);
  Cluster.run cl;
  let x = match Cluster.backend cl with `Xmm x -> x | `Asvm _ -> assert false in
  Alcotest.(check bool) "fault never completes" false !completed;
  Alcotest.(check bool) "requests stalled in the thread pool" true
    (Asvm_xmm.Xmm.stalled_fork_requests x > 0)

let test_xmm_no_deadlock_with_threads () =
  (* the same chain completes when the pool is big enough *)
  let config =
    { (Config.default ~nodes:2) with mm = Config.Mm_xmm; fork_threads = 8 }
  in
  let cl = Cluster.create config in
  let t0 = Cluster.create_task cl ~node:0 in
  let obj = Cluster.create_private_object cl ~node:0 ~size_pages:2 in
  Cluster.map cl ~task:t0 ~obj ~start:0 ~npages:2
    ~inherit_:Address_map.Inherit_copy;
  wr cl t0 0 7;
  let fork task dst =
    let r = ref None in
    Cluster.fork cl ~task ~dst_node:dst (fun c -> r := Some c);
    Cluster.run cl;
    Option.get !r
  in
  let t3 = fork (fork (fork t0 1) 0) 1 in
  Alcotest.(check int) "chain resolves" 7 (rd cl t3 0)

let test_asvm_chain_never_deadlocks () =
  (* ASVM's asynchronous state transitions hold no thread across a
     remote operation: the same double-crossing chain always resolves *)
  let cl = make ~nodes:2 ~mm:Config.Mm_asvm () in
  let t0 = Cluster.create_task cl ~node:0 in
  let obj = Cluster.create_private_object cl ~node:0 ~size_pages:2 in
  Cluster.map cl ~task:t0 ~obj ~start:0 ~npages:2
    ~inherit_:Address_map.Inherit_copy;
  wr cl t0 0 7;
  let fork task dst =
    let r = ref None in
    Cluster.fork cl ~task ~dst_node:dst (fun c -> r := Some c);
    Cluster.run cl;
    Option.get !r
  in
  let t3 = fork (fork (fork t0 1) 0) 1 in
  Alcotest.(check int) "chain resolves" 7 (rd cl t3 0)

(* Concurrent (not sequentialized) random accesses: after the engine
   drains, the protocol invariants must hold and all nodes must agree. *)
let concurrent_invariants_property =
  QCheck.Test.make ~name:"ASVM: invariants hold under concurrent load"
    ~count:20
    QCheck.(small_list (triple (int_bound 3) (int_bound 7) (int_bound 99)))
    (fun ops ->
      let cl = make ~mm:Config.Mm_asvm () in
      let pages = 8 in
      let obj, tasks = setup_shared cl ~nodes:4 ~pages in
      (* issue everything concurrently *)
      List.iteri
        (fun idx (node, page, value) ->
          if value mod 3 = 0 then
            Cluster.touch cl ~task:tasks.(node) ~vpage:page ~want:Prot.Read_only
              ignore
          else
            Cluster.write_word cl ~task:tasks.(node) ~addr:(page * wpp)
              ~value:(idx + 1) ignore)
        ops;
      Cluster.run cl;
      let a =
        match Cluster.backend cl with `Asvm a -> a | `Xmm _ -> assert false
      in
      (match Asvm.check_invariants a with
      | [] -> ()
      | violations -> QCheck.Test.fail_report (String.concat "\n" violations));
      let nodes = [ 0; 1; 2; 3 ] in
      List.for_all
        (fun page ->
          let owners =
            List.filter (fun n -> Asvm.is_owner a ~node:n ~obj ~page) nodes
          in
          (* at most one owner, and the owner holds the page *)
          List.length owners <= 1
          && List.for_all
               (fun n ->
                 Asvm_machvm.Vm.is_resident (Cluster.node_vm cl n) ~obj ~page)
               owners
          &&
          (* all nodes converge on a single value *)
          let values =
            List.map (fun n -> rd cl tasks.(n) (page * wpp)) nodes
          in
          List.for_all (fun v -> v = List.hd values) values)
        (List.init pages Fun.id))

let test_concurrent_soak () =
  (* hundreds of concurrent operations from every node over a larger
     page set, then a full invariant audit and convergence check *)
  let cl = make ~nodes:8 () in
  let pages = 32 in
  let _obj, tasks = setup_shared cl ~nodes:8 ~pages in
  let rng = Asvm_simcore.Rng.create 20260705 in
  for i = 0 to 799 do
    let node = Asvm_simcore.Rng.int rng 8 in
    let page = Asvm_simcore.Rng.int rng pages in
    if Asvm_simcore.Rng.bool rng then
      Cluster.touch cl ~task:tasks.(node) ~vpage:page ~want:Prot.Read_only
        ignore
    else
      Cluster.write_word cl ~task:tasks.(node) ~addr:(page * wpp) ~value:i
        ignore
  done;
  Cluster.run cl;
  let a = match Cluster.backend cl with `Asvm a -> a | `Xmm _ -> assert false in
  (match Asvm.check_invariants a with
  | [] -> ()
  | v -> Alcotest.fail (String.concat "\n" v));
  (* convergence: every node reads the same value on every page *)
  for page = 0 to pages - 1 do
    let v0 = rd cl tasks.(0) (page * wpp) in
    for n = 1 to 7 do
      Alcotest.(check int)
        (Printf.sprintf "page %d node %d" page n)
        v0
        (rd cl tasks.(n) (page * wpp))
    done
  done

let test_asvm_internode_paging () =
  (* a node under memory pressure hands owned pages to other nodes
     instead of the disk (eviction steps 2-3) *)
  let nodes = 4 in
  let pages = 24 in
  let config =
    Config.with_memory_pages (Config.default ~nodes) 8 (* tiny nodes *)
  in
  let cl = Cluster.create config in
  let _obj, tasks = setup_shared cl ~nodes ~pages in
  (* node 1 writes more pages than fit in its memory *)
  for p = 0 to pages - 1 do
    wr cl tasks.(1) (p * wpp) (500 + p)
  done;
  (* every page is still retrievable with its value *)
  for p = 0 to pages - 1 do
    Alcotest.(check int)
      (Printf.sprintf "page %d value" p)
      (500 + p)
      (rd cl tasks.(2) (p * wpp))
  done;
  let a = match Cluster.backend cl with `Asvm a -> a | `Xmm _ -> assert false in
  let c = Asvm.counters a in
  Alcotest.(check bool) "internode transfers happened" true
    (Asvm_simcore.Stats.Counters.get c "pageout.internode" > 0
    || Asvm_simcore.Stats.Counters.get c "pageout.reader_handoffs" > 0)

let test_file_object mm () =
  let cl = make ~mm () in
  let sharers = [ 0; 1; 2; 3 ] in
  let obj =
    Cluster.create_file_object cl ~size_pages:8 ~sharers
      ~data:(fun addr -> 7000 + addr)
      ()
  in
  let tasks =
    List.map
      (fun node ->
        let task = Cluster.create_task cl ~node in
        Cluster.map cl ~task ~obj ~start:0 ~npages:8
          ~inherit_:Address_map.Inherit_share;
        task)
      sharers
    |> Array.of_list
  in
  Alcotest.(check int) "file contents" 7000 (rd cl tasks.(1) 0);
  Alcotest.(check int) "file contents 2" (7000 + 17) (rd cl tasks.(2) 17);
  (* a write is seen by other nodes *)
  wr cl tasks.(3) 17 42;
  Alcotest.(check int) "write-through to sharer" 42 (rd cl tasks.(0) 17)

let test_forwarding_modes () =
  (* disabling dynamic (or both) forwarding must not change results,
     only the message pattern (paper 3.4) *)
  let run_with fwd =
    let config = Config.default ~nodes:4 in
    let cl = Cluster.create config in
    let sharers = [ 0; 1; 2; 3 ] in
    let obj =
      Cluster.create_shared_object cl ~size_pages:8 ~sharers ~forwarding:fwd ()
    in
    let tasks =
      List.map
        (fun node ->
          let task = Cluster.create_task cl ~node in
          Cluster.map cl ~task ~obj ~start:0 ~npages:8
            ~inherit_:Address_map.Inherit_share;
          task)
        sharers
      |> Array.of_list
    in
    wr cl tasks.(0) 0 5;
    wr cl tasks.(1) 0 6;
    let v1 = rd cl tasks.(2) 0 in
    wr cl tasks.(3) 0 7;
    let v2 = rd cl tasks.(0) 0 in
    (v1, v2)
  in
  let expected = (6, 7) in
  Alcotest.(check (pair int int))
    "dynamic+static" expected
    (run_with { Asvm.dynamic = true; static = true });
  Alcotest.(check (pair int int))
    "static only" expected
    (run_with { Asvm.dynamic = false; static = true });
  Alcotest.(check (pair int int))
    "global only" expected
    (run_with { Asvm.dynamic = false; static = false });
  Alcotest.(check (pair int int))
    "dynamic only" expected
    (run_with { Asvm.dynamic = true; static = false })

let test_forwarding_counters () =
  (* the redirector's layering is observable in its statistics *)
  let run fwd =
    let config = Config.default ~nodes:4 in
    let config = { config with asvm = { config.asvm with forwarding = fwd } } in
    let cl = Cluster.create config in
    let sharers = [ 0; 1; 2; 3 ] in
    let obj =
      Cluster.create_shared_object cl ~size_pages:4 ~sharers ~forwarding:fwd ()
    in
    let tasks =
      Array.of_list
        (List.map
           (fun node ->
             let t = Cluster.create_task cl ~node in
             Cluster.map cl ~task:t ~obj ~start:0 ~npages:4
               ~inherit_:Address_map.Inherit_share;
             t)
           sharers)
    in
    (* migrate ownership around, then fault from a node with a hint *)
    wr cl tasks.(0) 0 1;
    ignore (rd cl tasks.(1) 0);
    wr cl tasks.(2) 0 2;
    (* node 1 was invalidated: its dynamic hint points at node 2 *)
    ignore (rd cl tasks.(1) 0);
    let a = match Cluster.backend cl with `Asvm a -> a | `Xmm _ -> assert false in
    Asvm.counters a
  in
  let c = run { Asvm.dynamic = true; static = true } in
  Alcotest.(check bool) "dynamic hints used" true
    (Asvm_simcore.Stats.Counters.get c "forward.dynamic" > 0);
  Alcotest.(check int) "no sweeps needed" 0
    (Asvm_simcore.Stats.Counters.get c "forward.global_sweeps");
  let c = run { Asvm.dynamic = false; static = false } in
  Alcotest.(check int) "no dynamic when disabled" 0
    (Asvm_simcore.Stats.Counters.get c "forward.dynamic");
  Alcotest.(check bool) "global sweeps as fallback" true
    (Asvm_simcore.Stats.Counters.get c "forward.global_sweeps" > 0)

(* Property: a random sequential schedule of reads/writes from random
   nodes sees exactly the values of a trivial reference memory, under
   both managers. *)
let coherence_property mm =
  let name =
    Printf.sprintf "%s: random schedule matches reference memory"
      (Config.mm_name mm)
  in
  QCheck.Test.make ~name ~count:25
    QCheck.(
      pair (int_bound 1000)
        (small_list (triple (int_bound 3) (int_bound 15) (int_bound 3))))
    (fun (seed, ops) ->
      ignore seed;
      let cl = make ~mm () in
      let pages = 4 in
      let _obj, tasks = setup_shared cl ~nodes:4 ~pages in
      let reference = Array.make (pages * wpp) 0 in
      let counter = ref 0 in
      List.for_all
        (fun (node, word, kind) ->
          let addr = word mod (pages * wpp) in
          if kind = 0 then begin
            incr counter;
            reference.(addr) <- !counter;
            wr cl tasks.(node) addr !counter;
            true
          end
          else rd cl tasks.(node) addr = reference.(addr))
        ops)

let test_deterministic_runs () =
  let run () =
    let cl = make ~mm:Config.Mm_asvm () in
    let _obj, tasks = setup_shared cl ~nodes:4 ~pages:8 in
    for i = 0 to 20 do
      wr cl tasks.(i mod 4) ((i mod 8) * wpp) i
    done;
    (Cluster.now cl, Cluster.protocol_messages cl)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_asvm_beats_xmm_on_fault_latency () =
  (* shape check: the same remote write fault must be much cheaper under
     ASVM than under XMM *)
  let fault_time mm =
    let cl = make ~mm () in
    let _obj, tasks = setup_shared cl ~nodes:4 ~pages:2 in
    wr cl tasks.(0) 0 1;
    ignore (rd cl tasks.(1) 0);
    let t0 = Cluster.now cl in
    wr cl tasks.(2) 0 2;
    Cluster.now cl -. t0
  in
  let asvm = fault_time Config.Mm_asvm in
  let xmm = fault_time Config.Mm_xmm in
  Alcotest.(check bool)
    (Printf.sprintf "ASVM (%.2f ms) at least 3x faster than XMM (%.2f ms)" asvm
       xmm)
    true
    (asvm *. 3. < xmm)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cluster"
    [
      ( "coherence",
        [
          Alcotest.test_case "asvm basic" `Quick (coherence_scenario Config.Mm_asvm);
          Alcotest.test_case "xmm basic" `Quick (coherence_scenario Config.Mm_xmm);
          Alcotest.test_case "asvm upgrade" `Quick (upgrade_scenario Config.Mm_asvm);
          Alcotest.test_case "xmm upgrade" `Quick (upgrade_scenario Config.Mm_xmm);
          qtest (coherence_property Config.Mm_asvm);
          qtest (coherence_property Config.Mm_xmm);
        ] );
      ( "asvm state",
        [
          Alcotest.test_case "single owner" `Quick test_asvm_single_owner;
          Alcotest.test_case "reader list" `Quick test_asvm_reader_list;
          Alcotest.test_case "bounded owner state" `Quick
            test_asvm_owner_state_is_bounded;
          Alcotest.test_case "xmm dense matrix" `Quick test_xmm_state_matrix;
        ] );
      ( "fork",
        [
          Alcotest.test_case "asvm snapshot" `Quick (fork_snapshot Config.Mm_asvm);
          Alcotest.test_case "xmm snapshot" `Quick (fork_snapshot Config.Mm_xmm);
          Alcotest.test_case "asvm chain" `Quick (fork_chain Config.Mm_asvm);
          Alcotest.test_case "xmm chain" `Quick (fork_chain Config.Mm_xmm);
          Alcotest.test_case "asvm push scan" `Quick
            (fork_chain_push_scan Config.Mm_asvm);
          Alcotest.test_case "xmm late writes" `Quick
            (fork_chain_push_scan Config.Mm_xmm);
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "xmm thread exhaustion" `Quick
            test_xmm_copy_chain_deadlock;
          Alcotest.test_case "xmm enough threads" `Quick
            test_xmm_no_deadlock_with_threads;
          Alcotest.test_case "asvm asynchronous" `Quick
            test_asvm_chain_never_deadlocks;
        ] );
      ( "concurrency",
        [
          qtest concurrent_invariants_property;
          Alcotest.test_case "soak" `Quick test_concurrent_soak;
        ] );
      ( "paging",
        [ Alcotest.test_case "internode paging" `Quick test_asvm_internode_paging ] );
      ( "files",
        [
          Alcotest.test_case "asvm mapped file" `Quick (test_file_object Config.Mm_asvm);
          Alcotest.test_case "xmm mapped file" `Quick (test_file_object Config.Mm_xmm);
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "modes equivalent" `Quick test_forwarding_modes;
          Alcotest.test_case "counters" `Quick test_forwarding_counters;
        ] );
      ( "meta",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic_runs;
          Alcotest.test_case "asvm faster" `Quick test_asvm_beats_xmm_on_fault_latency;
        ] );
    ]
