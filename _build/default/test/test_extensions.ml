(* Tests for the paper's section 6 proposals, implemented as extensions:
   range locking and striped files with round-robin pagers. *)

module Cluster = Asvm_cluster.Cluster
module Config = Asvm_cluster.Config
module Prot = Asvm_machvm.Prot
module Address_map = Asvm_machvm.Address_map
module File_io = Asvm_workloads.File_io

let wpp = Asvm_machvm.Vm_config.default.words_per_page

let make ?(nodes = 4) () = Cluster.create (Config.default ~nodes)

let setup_shared cl ~nodes ~pages =
  let sharers = List.init nodes Fun.id in
  let obj = Cluster.create_shared_object cl ~size_pages:pages ~sharers () in
  let tasks =
    Array.of_list
      (List.map
         (fun node ->
           let task = Cluster.create_task cl ~node in
           Cluster.map cl ~task ~obj ~start:0 ~npages:pages
             ~inherit_:Address_map.Inherit_share;
           task)
         sharers)
  in
  (obj, tasks)

let wr cl task addr value =
  Cluster.write_word cl ~task ~addr ~value (fun () -> ());
  Cluster.run cl

let rd cl task addr =
  let r = ref 0 in
  Cluster.read_word cl ~task ~addr (fun v -> r := v);
  Cluster.run cl;
  !r

(* -------------------- range locking -------------------- *)

let test_lock_blocks_remote_access () =
  let cl = make () in
  let _obj, tasks = setup_shared cl ~nodes:4 ~pages:4 in
  (* node 0 locks pages 0-1 *)
  let locked = ref false in
  Cluster.lock_range cl ~task:tasks.(0) ~start:0 ~npages:2 (fun () ->
      locked := true);
  Cluster.run cl;
  Alcotest.(check bool) "lock acquired" true !locked;
  (* node 1's write against the locked range parks at the owner *)
  let remote_done = ref false in
  Cluster.write_word cl ~task:tasks.(1) ~addr:0 ~value:5 (fun () ->
      remote_done := true);
  Cluster.run cl;
  Alcotest.(check bool) "remote write held while locked" false !remote_done;
  (* node 0 performs its atomic update, then unlocks *)
  wr cl tasks.(0) 1 100;
  Cluster.unlock_range cl ~task:tasks.(0) ~start:0 ~npages:2;
  Cluster.run cl;
  Alcotest.(check bool) "remote write proceeds after unlock" true !remote_done;
  Alcotest.(check int) "remote value landed" 5 (rd cl tasks.(2) 0);
  Alcotest.(check int) "atomic update visible" 100 (rd cl tasks.(2) 1)

let test_lock_excludes_readers_too () =
  let cl = make () in
  let _obj, tasks = setup_shared cl ~nodes:3 ~pages:2 in
  wr cl tasks.(0) 0 1;
  let locked = ref false in
  Cluster.lock_range cl ~task:tasks.(0) ~start:0 ~npages:1 (fun () ->
      locked := true);
  Cluster.run cl;
  Alcotest.(check bool) "locked" true !locked;
  let read_done = ref None in
  Cluster.read_word cl ~task:tasks.(1) ~addr:0 (fun v -> read_done := Some v);
  Cluster.run cl;
  Alcotest.(check bool) "reader held while locked" true (!read_done = None);
  wr cl tasks.(0) 0 2;
  Cluster.unlock_range cl ~task:tasks.(0) ~start:0 ~npages:1;
  Cluster.run cl;
  Alcotest.(check (option int)) "reader sees post-lock value" (Some 2) !read_done

let test_lock_reacquire_after_migration () =
  (* the lock can be taken by different nodes in turn *)
  let cl = make () in
  let _obj, tasks = setup_shared cl ~nodes:3 ~pages:2 in
  let with_lock node k =
    Cluster.lock_range cl ~task:tasks.(node) ~start:0 ~npages:2 (fun () ->
        k ();
        Cluster.unlock_range cl ~task:tasks.(node) ~start:0 ~npages:2);
    Cluster.run cl
  in
  with_lock 0 (fun () -> ());
  with_lock 1 (fun () -> ());
  with_lock 2 (fun () -> ());
  wr cl tasks.(1) 0 9;
  Alcotest.(check int) "still coherent" 9 (rd cl tasks.(0) 0)

(* -------------------- striped files -------------------- *)

let test_striped_file_contents () =
  let cl = make () in
  let obj =
    Cluster.create_file_object cl ~size_pages:8 ~sharers:[ 0; 1; 2; 3 ]
      ~data:(fun addr -> 5000 + addr)
      ~stripes:4 ()
  in
  Alcotest.(check int) "four pagers" 4 (List.length (Cluster.object_pagers cl obj));
  let task = Cluster.create_task cl ~node:3 in
  Cluster.map cl ~task ~obj ~start:0 ~npages:8
    ~inherit_:Address_map.Inherit_share;
  (* every page comes back correct regardless of which stripe holds it *)
  for p = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "page %d word" p)
      (5000 + (p * wpp))
      (rd cl task (p * wpp))
  done;
  (* writes are preserved too *)
  wr cl task (5 * wpp) 42;
  Alcotest.(check int) "write visible" 42 (rd cl task (5 * wpp))

let test_striping_scales_write_bandwidth () =
  (* the paper's motivation: one pager is the write ceiling; striping
     over several I/O nodes raises the aggregate rate *)
  let rate stripes =
    (File_io.write_test ~mm:Config.Mm_asvm ~nodes:8 ~file_mb:2 ~stripes ())
      .File_io.per_node_mb_s
  in
  let r1 = rate 1 and r4 = rate 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 stripes beat 1 (%.2f vs %.2f MB/s)" r4 r1)
    true
    (r4 > 1.5 *. r1)

let test_striping_xmm_unsupported () =
  let cl = Cluster.create (Config.with_mm (Config.default ~nodes:2) Config.Mm_xmm) in
  Alcotest.check_raises "XMM rejects striping"
    (Failure "Cluster: XMM supports a single pager per object") (fun () ->
      ignore
        (Cluster.create_file_object cl ~size_pages:4 ~sharers:[ 0; 1 ]
           ~stripes:2 ()))

let () =
  Alcotest.run "extensions"
    [
      ( "range locking",
        [
          Alcotest.test_case "blocks remote writers" `Quick
            test_lock_blocks_remote_access;
          Alcotest.test_case "blocks remote readers" `Quick
            test_lock_excludes_readers_too;
          Alcotest.test_case "reacquire in turn" `Quick
            test_lock_reacquire_after_migration;
        ] );
      ( "striped files",
        [
          Alcotest.test_case "contents round-robin" `Quick
            test_striped_file_contents;
          Alcotest.test_case "write bandwidth scales" `Quick
            test_striping_scales_write_bandwidth;
          Alcotest.test_case "xmm unsupported" `Quick test_striping_xmm_unsupported;
        ] );
    ]
