test/test_machvm.mli:
