test/test_pager.ml: Alcotest Asvm_cluster Asvm_machvm Asvm_pager Asvm_simcore List Printf
