test/test_simcore.ml: Alcotest Array Asvm_simcore Gen List QCheck QCheck_alcotest
