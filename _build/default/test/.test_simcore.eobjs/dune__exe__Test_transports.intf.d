test/test_transports.mli:
