test/test_xmm.mli:
