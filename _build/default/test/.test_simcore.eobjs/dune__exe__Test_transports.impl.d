test/test_transports.ml: Alcotest Asvm_mesh Asvm_norma Asvm_simcore Asvm_sts List
