test/test_workloads.ml: Alcotest Asvm_cluster Asvm_core Asvm_machvm Asvm_workloads Printf String
