test/test_cluster.ml: Alcotest Array Asvm_cluster Asvm_core Asvm_machvm Asvm_simcore Asvm_xmm Fun List Option Printf QCheck QCheck_alcotest String
