test/test_mesh.ml: Alcotest Asvm_mesh Asvm_simcore QCheck QCheck_alcotest
