test/test_properties.ml: Alcotest Array Asvm_cluster Asvm_core Asvm_machvm Asvm_simcore Asvm_sts Asvm_workloads Fun List Printf QCheck QCheck_alcotest
