test/test_xmm.ml: Alcotest Array Asvm_cluster Asvm_machvm Asvm_pager Asvm_simcore Asvm_xmm Fun List Printf
