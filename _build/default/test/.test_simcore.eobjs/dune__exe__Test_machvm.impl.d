test/test_machvm.ml: Alcotest Asvm_machvm Asvm_simcore List Printf
