test/test_extensions.ml: Alcotest Array Asvm_cluster Asvm_machvm Asvm_workloads Fun List Printf
